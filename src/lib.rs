#![warn(missing_docs)]

//! # aimq-suite
//!
//! Facade crate for the AIMQ reproduction — *Answering Imprecise Queries
//! over Autonomous Web Databases* (Nambiar & Kambhampati, ICDE 2006).
//!
//! Re-exports the whole public API so examples, integration tests and
//! downstream users need a single dependency:
//!
//! * [`catalog`] — values, schemas, tuples, precise & imprecise queries;
//! * [`storage`] — columnar relations, the boolean Web-database facade,
//!   sampling;
//! * [`afd`] — TANE mining of approximate functional dependencies/keys
//!   and the Algorithm-2 attribute ordering;
//! * [`sim`] — supertuples, bag-semantics Jaccard, the `VSim`/`Sim`
//!   similarity model;
//! * [`rock`] — the ROCK clustering baseline;
//! * [`engine`] — Algorithm 1: guided/random relaxation and top-k
//!   ranking ([`engine::AimqSystem`] is the main entry point);
//! * [`serve`] — concurrent query-serving runtime: worker pool,
//!   bounded admission queue, per-query deadlines over virtual time;
//! * [`http`] — the network front door: an HTTP/1.1 server over
//!   [`serve`], plus a minimal client and an open-loop load generator;
//! * [`data`] — seeded synthetic CarDB / CensusDB generators;
//! * [`eval`] — runners reproducing every table and figure of the
//!   paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use aimq_suite::engine::{AimqSystem, EngineConfig, TrainConfig};
//! use aimq_suite::catalog::{ImpreciseQuery, Value};
//! use aimq_suite::data::CarDb;
//! use aimq_suite::storage::{InMemoryWebDb, WebDatabase};
//!
//! // An autonomous used-car database (boolean queries only).
//! let db = InMemoryWebDb::new(CarDb::generate(2_000, 42));
//!
//! // Offline: probe a sample, mine AFDs + value similarities.
//! let sample = db.relation().random_sample(500, 1);
//! let system = AimqSystem::train(&sample, &TrainConfig::default()).unwrap();
//!
//! // Online: answer an imprecise query with ranked, similar tuples.
//! let query = ImpreciseQuery::builder(db.schema())
//!     .like("Model", Value::cat("Camry")).unwrap()
//!     .like("Price", Value::num(9_000.0)).unwrap()
//!     .build().unwrap();
//! let answers = system.answer(&db, &query, &EngineConfig::default());
//! assert!(!answers.answers.is_empty());
//! ```

/// Data model: values, schemas, tuples and query ASTs.
pub mod catalog {
    pub use aimq_catalog::*;
}

/// Column store, boolean executor, Web-database facade and sampling.
pub mod storage {
    pub use aimq_storage::*;
}

/// TANE dependency mining and the Algorithm-2 attribute ordering.
pub mod afd {
    pub use aimq_afd::*;
}

/// The Similarity Miner: supertuples, Jaccard bags, `VSim` and `Sim`.
pub mod sim {
    pub use aimq_sim::*;
}

/// The ROCK clustering baseline (Guha, Rastogi & Shim, ICDE 1999).
pub mod rock {
    pub use aimq_rock::*;
}

/// The AIMQ query engine (Algorithm 1) and end-to-end system.
pub mod engine {
    pub use aimq::*;
}

/// Concurrent query-serving runtime: worker pool, admission control,
/// per-query deadlines over virtual time, serving stats.
pub mod serve {
    pub use aimq_serve::*;
}

/// HTTP/1.1 front door over [`serve`]: MeiliDB-shaped routes, typed
/// error mapping, graceful drain, client and open-loop load generator.
pub mod http {
    pub use aimq_http::*;
}

/// Synthetic CarDB / CensusDB generators and the latent oracle.
pub mod data {
    pub use aimq_data::*;
}

/// Experiment runners for every table and figure of the paper.
pub mod eval {
    pub use aimq_eval::*;
}
