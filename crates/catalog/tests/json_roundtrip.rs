//! Property tests for the hand-rolled JSON codec: `parse ∘ serialize`
//! is the identity on every value the workspace can construct, the
//! compact rendering is a fixed point (canonical form), and the two
//! documented edges hold exactly — surrogate-pair escapes decode on
//! the way in but never re-serialize as escapes, and the `MAX_DEPTH`
//! nesting cap accepts depth 64 while positioning the error for
//! depth 65 at the byte that exceeded it.
//!
//! The identity is on *values*, not bytes: `"\u{1F600}"` and
//! `"😀"` are two spellings of the same string, and the serializer
//! always picks the canonical one (raw UTF-8, escapes only for the
//! mandatory set). Byte identity therefore holds from the second
//! serialization on, which is what `canonical_form_is_a_fixed_point`
//! pins.
//!
//! The vendored proptest stub has no recursive or filtered
//! strategies, so arbitrary trees are grown from a single `u64` seed
//! through a splitmix64 stream: the strategy layer explores seeds,
//! plain code expands each seed into a bounded-depth [`Json`] value.

use aimq_catalog::Json;
use proptest::prelude::*;

/// splitmix64 step — a full-period mixer, so one drawn seed yields an
/// independent stream of choices for the whole tree.
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Finite floats only: NaN/∞ deliberately serialize as `null` (JSON
/// has no spelling for them), so they cannot roundtrip as numbers.
fn num_from(seed: &mut u64) -> f64 {
    // The integer-formatting boundary: `write_num` renders integral
    // values below 2^53 through i64, everything else through Display.
    const EDGES: [f64; 8] = [
        0.0,
        -0.0,
        9_007_199_254_740_991.0,
        9_007_199_254_740_992.0,
        -9_007_199_254_740_993.0,
        0.1,
        1e-300,
        2.5e17,
    ];
    match next(seed) % 3 {
        0 => EDGES[(next(seed) % EDGES.len() as u64) as usize],
        // Integral values across the full i64-formatted range.
        1 => (next(seed) as i64 >> 11) as f64,
        // Arbitrary bit patterns; the rare non-finite draws fall back
        // to a finite fraction instead of being filtered out.
        _ => {
            let bits = next(seed);
            let f = f64::from_bits(bits);
            if f.is_finite() {
                f
            } else {
                (bits >> 12) as f64 * 1e-9
            }
        }
    }
}

/// Strings mixing ASCII, mandatory escapes, raw control bytes, and
/// non-BMP characters (the UTF-8 path the surrogate-pair escape
/// syntax aliases).
fn str_from(seed: &mut u64) -> String {
    const ALPHABET: [char; 14] = [
        'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\t', '\u{1}', '\u{1f}', 'é', '中', '😀',
    ];
    let len = (next(seed) % 10) as usize;
    (0..len)
        .map(|_| ALPHABET[(next(seed) % ALPHABET.len() as u64) as usize])
        .collect()
}

/// Expand one seed into a tree at most 4 levels deep — far inside the
/// parser's `MAX_DEPTH`, which gets its own boundary test below.
fn json_from(seed: &mut u64, depth: u32) -> Json {
    let arms = if depth >= 4 { 4 } else { 6 };
    match next(seed) % arms {
        0 => Json::Null,
        1 => Json::Bool(next(seed) % 2 == 0),
        2 => Json::Num(num_from(seed)),
        3 => Json::Str(str_from(seed)),
        4 => {
            let n = next(seed) % 4;
            Json::Arr((0..n).map(|_| json_from(seed, depth + 1)).collect())
        }
        // Duplicate keys are representable and preserved in order, so
        // colliding `str_from` draws are fair game, not a hazard.
        _ => {
            let n = next(seed) % 4;
            Json::Obj(
                (0..n)
                    .map(|_| (str_from(seed), json_from(seed, depth + 1)))
                    .collect(),
            )
        }
    }
}

fn arb_json() -> impl Strategy<Value = Json> {
    (0u64..u64::MAX).prop_map(|s| {
        let mut seed = s;
        json_from(&mut seed, 0)
    })
}

proptest! {
    #[test]
    fn serialize_then_parse_is_identity(v in arb_json()) {
        let text = v.to_string_compact();
        prop_assert_eq!(Json::parse(&text), Ok(v));
    }

    #[test]
    fn canonical_form_is_a_fixed_point(v in arb_json()) {
        let text = v.to_string_compact();
        let reparsed = Json::parse(&text);
        prop_assert!(reparsed.is_ok(), "canonical form failed to parse: {}", text);
        if let Ok(back) = reparsed {
            prop_assert_eq!(back.to_string_compact(), text);
        }
    }

    #[test]
    fn wrapping_below_the_depth_cap_roundtrips(depth in 0usize..=63, flag in 0u32..2) {
        // A leaf under `depth` array wrappers parses at recursion
        // depth `depth` — legal all the way up to MAX_DEPTH - 1.
        let mut v = Json::Bool(flag == 1);
        for _ in 0..depth {
            v = Json::Arr(vec![v]);
        }
        let text = v.to_string_compact();
        prop_assert_eq!(Json::parse(&text), Ok(v));
    }
}

#[test]
fn surrogate_pair_escapes_decode_but_never_reserialize() {
    let parsed = Json::parse("\"\\ud83d\\ude00\"").expect("surrogate pair decodes");
    assert_eq!(parsed, Json::Str("😀".to_string()));
    // Canonical form is raw UTF-8 — the escape spelling is accepted
    // on input only.
    assert_eq!(parsed.to_string_compact(), "\"😀\"");
    assert_eq!(Json::parse(&parsed.to_string_compact()), Ok(parsed));
    // Unpaired halves are errors, not replacement characters.
    assert!(Json::parse(r#""\ud83d""#).is_err());
    assert!(Json::parse(r#""\udc00""#).is_err());
    assert!(Json::parse(r#""\ud83dA""#).is_err());
}

#[test]
fn depth_cap_accepts_max_depth_and_positions_the_error_one_past() {
    // 64 nested empty arrays: the innermost array is parsed by the
    // call at depth 63 and recurses no further — exactly at the cap.
    let at_cap = format!("{}{}", "[".repeat(64), "]".repeat(64));
    let parsed = Json::parse(&at_cap).expect("depth 64 is legal");
    assert_eq!(parsed.to_string_compact(), at_cap);

    // One more bracket pushes a value() call to depth 64: rejected,
    // and the offset names the 65th `[` (byte 64) that exceeded it.
    let past_cap = format!("{}{}", "[".repeat(65), "]".repeat(65));
    let err = Json::parse(&past_cap).expect_err("depth 65 is rejected");
    assert_eq!(err.offset, 64);
    assert!(err.message.contains("nesting too deep"), "{}", err.message);

    // A leaf at the bottom occupies one more level than an empty
    // array: 64 wrappers around a scalar is already too deep.
    let leaf_past_cap = format!("{}1{}", "[".repeat(64), "]".repeat(64));
    assert!(Json::parse(&leaf_past_cap).is_err());
}
