use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AttrId, CatalogError, Result, Schema, Value};

/// A tuple of a relation: one [`Value`] per schema attribute, in schema
/// order.
///
/// Tuples are the currency of the whole system: probed samples, base-set
/// answers, relaxation results and ranked answers are all `Tuple`s. The
/// paper additionally treats each base-set tuple as a *fully bound selection
/// query* (Algorithm 1, step 3); see
/// [`SelectionQuery::from_tuple`](crate::SelectionQuery::from_tuple).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple, validating arity and per-attribute domains against the
    /// schema. `Null` is allowed in any position.
    pub fn new(schema: &Schema, values: Vec<Value>) -> Result<Self> {
        if values.len() != schema.arity() {
            return Err(CatalogError::ArityMismatch {
                expected: schema.arity(),
                actual: values.len(),
            });
        }
        for (i, v) in values.iter().enumerate() {
            let attr = &schema.attributes()[i]; // aimq-lint: allow(indexing) -- i < arity: values.len() == arity was just checked
            let ok = matches!(
                (attr.domain(), v),
                (_, Value::Null)
                    | (crate::Domain::Categorical, Value::Cat(_))
                    | (crate::Domain::Numeric, Value::Num(_))
            );
            if !ok {
                return Err(CatalogError::DomainMismatch {
                    attribute: attr.name().to_owned(),
                    expected: attr.domain().name(),
                    actual: v.type_name(),
                });
            }
        }
        Ok(Tuple { values })
    }

    /// Build a tuple without validation. Intended for storage layers that
    /// have already guaranteed well-formedness (e.g. decoding from a typed
    /// column store).
    pub fn from_values_unchecked(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The value bound to attribute `attr`.
    pub fn value(&self, attr: AttrId) -> &Value {
        &self.values[attr.index()] // aimq-lint: allow(indexing) -- values is arity-sized; AttrId is schema-minted
    }

    /// All values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of values (equals the schema arity).
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Ids of the attributes bound to non-null values.
    pub fn bound_attrs(&self) -> Vec<AttrId> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_null())
            .map(|(i, _)| AttrId(i))
            .collect()
    }

    /// The tuple as a [`crate::Json`] object keyed by attribute name, in
    /// schema order with nulls included — the deterministic wire form
    /// used by the HTTP search route.
    pub fn to_json(&self, schema: &Schema) -> crate::Json {
        crate::Json::Obj(
            self.values
                .iter()
                .enumerate()
                .map(|(i, v)| (schema.attr_name(AttrId(i)).to_string(), v.to_json()))
                .collect(),
        )
    }

    /// Render with attribute names, e.g.
    /// `{Make=Ford, Model=Focus, Price=15000}` — nulls omitted.
    pub fn display_with<'a>(&'a self, schema: &'a Schema) -> TupleDisplay<'a> {
        TupleDisplay {
            tuple: self,
            schema,
        }
    }
}

/// Helper returned by [`Tuple::display_with`].
pub struct TupleDisplay<'a> {
    tuple: &'a Tuple,
    schema: &'a Schema,
}

impl fmt::Display for TupleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (i, v) in self.tuple.values().iter().enumerate() {
            if v.is_null() {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}={}", self.schema.attr_name(AttrId(i)), v)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::builder("CarDB")
            .categorical("Make")
            .categorical("Model")
            .numeric("Price")
            .build()
            .unwrap()
    }

    #[test]
    fn valid_tuple_builds() {
        let s = schema();
        let t = Tuple::new(
            &s,
            vec![
                Value::cat("Toyota"),
                Value::cat("Camry"),
                Value::num(10000.0),
            ],
        )
        .unwrap();
        assert_eq!(t.value(AttrId(0)), &Value::cat("Toyota"));
        assert_eq!(t.arity(), 3);
        assert_eq!(t.bound_attrs(), vec![AttrId(0), AttrId(1), AttrId(2)]);
    }

    #[test]
    fn nulls_are_permitted_and_skipped_in_bound_attrs() {
        let s = schema();
        let t = Tuple::new(&s, vec![Value::Null, Value::cat("Camry"), Value::Null]).unwrap();
        assert_eq!(t.bound_attrs(), vec![AttrId(1)]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let s = schema();
        let err = Tuple::new(&s, vec![Value::cat("Toyota")]).unwrap_err();
        assert_eq!(
            err,
            CatalogError::ArityMismatch {
                expected: 3,
                actual: 1
            }
        );
    }

    #[test]
    fn domain_mismatch_rejected() {
        let s = schema();
        let err = Tuple::new(
            &s,
            vec![Value::num(1.0), Value::cat("Camry"), Value::num(1.0)],
        )
        .unwrap_err();
        assert!(matches!(err, CatalogError::DomainMismatch { .. }));
    }

    #[test]
    fn display_omits_nulls() {
        let s = schema();
        let t = Tuple::new(
            &s,
            vec![Value::cat("Ford"), Value::Null, Value::num(15000.0)],
        )
        .unwrap();
        assert_eq!(t.display_with(&s).to_string(), "{Make=Ford, Price=15000}");
    }
}
