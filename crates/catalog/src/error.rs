use std::fmt;

/// Errors produced while building or validating catalog objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// An attribute name was referenced that does not exist in the schema.
    UnknownAttribute(String),
    /// An attribute id was out of range for the schema.
    AttrIdOutOfRange {
        /// The offending attribute index.
        attr: usize,
        /// The schema's arity.
        len: usize,
    },
    /// Two attributes with the same name were added to one schema.
    DuplicateAttribute(String),
    /// A tuple had a different arity than its schema.
    ArityMismatch {
        /// The schema's arity.
        expected: usize,
        /// The tuple's arity.
        actual: usize,
    },
    /// A value's type did not match the attribute's declared domain.
    DomainMismatch {
        /// The attribute's name.
        attribute: String,
        /// The domain the schema declares.
        expected: &'static str,
        /// The type of the offending value.
        actual: &'static str,
    },
    /// A predicate used an operator that is meaningless for the domain
    /// (e.g. `<` on a categorical attribute).
    InvalidOperator {
        /// The attribute's name.
        attribute: String,
        /// The rejected operator symbol.
        op: String,
    },
    /// An imprecise query bound no attributes at all.
    EmptyQuery,
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownAttribute(name) => {
                write!(f, "unknown attribute `{name}`")
            }
            CatalogError::AttrIdOutOfRange { attr, len } => {
                write!(
                    f,
                    "attribute id {attr} out of range for schema with {len} attributes"
                )
            }
            CatalogError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute `{name}` in schema")
            }
            CatalogError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "tuple arity {actual} does not match schema arity {expected}"
                )
            }
            CatalogError::DomainMismatch {
                attribute,
                expected,
                actual,
            } => write!(
                f,
                "attribute `{attribute}` expects {expected} values but got a {actual} value"
            ),
            CatalogError::InvalidOperator { attribute, op } => {
                write!(
                    f,
                    "operator `{op}` is not valid for attribute `{attribute}`"
                )
            }
            CatalogError::EmptyQuery => write!(f, "query binds no attributes"),
        }
    }
}

impl std::error::Error for CatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CatalogError::UnknownAttribute("Mdoel".into());
        assert!(e.to_string().contains("Mdoel"));
        let e = CatalogError::ArityMismatch {
            expected: 7,
            actual: 3,
        };
        assert!(e.to_string().contains('7') && e.to_string().contains('3'));
        let e = CatalogError::DomainMismatch {
            attribute: "Price".into(),
            expected: "numeric",
            actual: "categorical",
        };
        assert!(e.to_string().contains("Price"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CatalogError::EmptyQuery, CatalogError::EmptyQuery);
        assert_ne!(
            CatalogError::EmptyQuery,
            CatalogError::UnknownAttribute("x".into())
        );
    }
}
