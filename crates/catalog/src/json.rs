//! A tiny, deterministic JSON layer shared by the wire protocol and the
//! evaluation harness.
//!
//! The vendored `serde` is a no-op stub (see `vendor/README.md`), so the
//! derives scattered over the model types carry no behaviour; every byte
//! that leaves the system goes through this module instead. Two
//! properties matter more than generality:
//!
//! * **Determinism** — objects are ordered vectors of pairs, never hash
//!   maps, and numbers render through one canonical path (integers when
//!   exactly representable, shortest-roundtrip decimal otherwise), so
//!   the same value always serializes to the same bytes. The HTTP
//!   byte-identity tests pin this.
//! * **Panic-freedom** — the parser is fed by untrusted sockets; it
//!   rejects malformed input with positioned [`JsonError`]s, never by
//!   panicking, and caps recursion depth against stack exhaustion.

use std::fmt;

/// Maximum nesting depth the parser accepts before rejecting the
/// document; deep enough for any AIMQ payload, shallow enough that a
/// hostile `[[[[…` body cannot exhaust the stack.
const MAX_DEPTH: usize = 64;

/// A parsed or constructed JSON value.
///
/// Objects preserve insertion order (`Vec` of pairs, not a map): the
/// serialization of a value is a pure function of how it was built,
/// which is what makes HTTP responses byte-for-byte reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from owned pairs; a thin readability helper for
    /// the `to_json()` implementations layered above this crate.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object (first match wins); `None` for
    /// non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace) into a fresh string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }

    /// Parses a complete JSON document; trailing non-whitespace input
    /// is an error, as is anything malformed or nested deeper than
    /// [`MAX_DEPTH`].
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

/// Renders `n` through the canonical number path: `null` when
/// non-finite, an integer literal when exactly representable as one
/// (|n| < 2^53 and no fractional part), otherwise Rust's
/// shortest-roundtrip `Display` for `f64`.
fn write_num(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64); // aimq-lint: allow(result-discipline) -- fmt::Write to String is infallible
    } else {
        let _ = write!(out, "{n}"); // aimq-lint: allow(result-discipline) -- fmt::Write to String is infallible
    }
}

fn write_escaped(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32); // aimq-lint: allow(result-discipline) -- fmt::Write to String is infallible
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_num(*n, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// What the parser expected or rejected.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos = self.pos.saturating_add(1);
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos = self.pos.saturating_add(1);
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), JsonError> {
        let end = self.pos.saturating_add(kw.len());
        if self.bytes.get(self.pos..end) == Some(kw.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Json::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos = self.pos.saturating_add(1);
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth.saturating_add(1))?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos = self.pos.saturating_add(1),
                Some(b']') => {
                    self.pos = self.pos.saturating_add(1);
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos = self.pos.saturating_add(1);
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth.saturating_add(1))?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos = self.pos.saturating_add(1),
                Some(b'}') => {
                    self.pos = self.pos.saturating_add(1);
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote,
            // backslash, or control character.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos = self.pos.saturating_add(1);
            }
            if let Some(run) = self.bytes.get(start..self.pos) {
                // The input came from a `&str`, and the run breaks only
                // at ASCII bytes, so it stays valid UTF-8.
                out.push_str(std::str::from_utf8(run).map_err(|_| self.err("invalid UTF-8"))?);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos = self.pos.saturating_add(1);
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos = self.pos.saturating_add(1);
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos = self.pos.saturating_add(1);
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let cp = if (0xD800..0xDC00).contains(&hi) {
                    // Leading surrogate: require a `\uXXXX` trailing pair.
                    self.eat(b'\\')
                        .and_then(|()| self.eat(b'u'))
                        .map_err(|_| self.err("unpaired surrogate"))?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos.saturating_add(4);
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos = self.pos.saturating_add(1);
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos = self.pos.saturating_add(1);
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos = self.pos.saturating_add(1);
            let frac_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos = self.pos.saturating_add(1);
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos = self.pos.saturating_add(1);
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos = self.pos.saturating_add(1);
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos = self.pos.saturating_add(1);
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for doc in ["null", "true", "false", "0", "-7", "3.25", "\"hi\""] {
            let v = Json::parse(doc).unwrap();
            assert_eq!(v.to_string_compact(), doc);
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(10.0).to_string_compact(), "10");
        assert_eq!(Json::Num(-3.0).to_string_compact(), "-3");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let v = Json::obj(vec![
            ("zeta", Json::Num(1.0)),
            ("alpha", Json::Bool(true)),
            ("mid", Json::Str("x".into())),
        ]);
        assert_eq!(
            v.to_string_compact(),
            r#"{"zeta":1,"alpha":true,"mid":"x"}"#
        );
    }

    #[test]
    fn nested_structures_round_trip_bytes() {
        let doc = r#"{"query":{"Model":"Camry","Price":10000},"k":10,"flags":[true,null]}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.to_string_compact(), doc);
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(10));
        assert_eq!(
            v.get("query")
                .and_then(|q| q.get("Model"))
                .and_then(Json::as_str),
            Some("Camry")
        );
    }

    #[test]
    fn string_escapes_both_ways() {
        let v = Json::parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        let s = Json::Str("tab\there\u{1}".into()).to_string_compact();
        assert_eq!(s, "\"tab\\there\\u0001\"");
        assert_eq!(Json::parse(&s).unwrap().as_str(), Some("tab\there\u{1}"));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn malformed_documents_error_with_offsets() {
        for doc in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "01x",
            "\"",
            "1.2.3",
            "[1 2]",
            "{\"a\":1,}",
            "truefalse",
        ] {
            assert!(Json::parse(doc).is_err(), "accepted {doc:?}");
        }
        let e = Json::parse("[1, @]").unwrap_err();
        assert_eq!(e.offset, 4);
    }

    #[test]
    fn depth_cap_rejects_hostile_nesting() {
        let deep: String = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok: String = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(Json::parse("{} {}").is_err());
        assert!(Json::parse("  {\"a\":1}  ").is_ok());
    }
}
