use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::{CatalogError, Result};

/// Index of an attribute within a [`Schema`] (position in the relation).
///
/// A thin newtype instead of a bare `usize` so that row ids, value codes and
/// attribute positions cannot be confused at call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId(pub usize);

impl AttrId {
    /// Raw index into the schema's attribute list.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The domain of an attribute, as the paper distinguishes them (Section 5):
/// similarity between categorical values is mined from co-occurrence, while
/// numeric similarity is a normalized distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Finite string domain (`Make`, `Model`, `Color`, ...).
    Categorical,
    /// Continuous numeric domain (`Price`, `Mileage`, ...).
    Numeric,
}

impl Domain {
    /// Name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Categorical => "categorical",
            Domain::Numeric => "numeric",
        }
    }
}

/// A named, typed attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    name: String,
    domain: Domain,
}

impl Attribute {
    /// Create a categorical attribute.
    pub fn categorical(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            domain: Domain::Categorical,
        }
    }

    /// Create a numeric attribute.
    pub fn numeric(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            domain: Domain::Numeric,
        }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }
}

/// An immutable relation schema: an ordered list of attributes with unique
/// names. Cheap to clone (`Arc` inside) because every tuple, query, mined
/// dependency and similarity model carries one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug, Serialize, Deserialize)]
struct SchemaInner {
    name: String,
    attrs: Vec<Attribute>,
    by_name: HashMap<String, AttrId>,
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
            || (self.inner.name == other.inner.name && self.inner.attrs == other.inner.attrs)
    }
}

impl Eq for Schema {}

impl Schema {
    /// Start building a schema for the relation `name`.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            name: name.into(),
            attrs: Vec::new(),
        }
    }

    /// The relation name (e.g. `CarDB`).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of attributes (the paper's `count(Attributes(R))`).
    pub fn arity(&self) -> usize {
        self.inner.attrs.len()
    }

    /// All attributes in schema order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.inner.attrs
    }

    /// All attribute ids in schema order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.arity()).map(AttrId)
    }

    /// Ids of all categorical attributes, in schema order.
    pub fn categorical_attrs(&self) -> Vec<AttrId> {
        self.attr_ids()
            .filter(|&a| self.domain(a) == Domain::Categorical)
            .collect()
    }

    /// Ids of all numeric attributes, in schema order.
    pub fn numeric_attrs(&self) -> Vec<AttrId> {
        self.attr_ids()
            .filter(|&a| self.domain(a) == Domain::Numeric)
            .collect()
    }

    /// Look up an attribute by id.
    pub fn attribute(&self, attr: AttrId) -> Result<&Attribute> {
        self.inner
            .attrs
            .get(attr.index())
            .ok_or(CatalogError::AttrIdOutOfRange {
                attr: attr.index(),
                len: self.arity(),
            })
    }

    /// The name of attribute `attr`; panics on out-of-range ids (programmer
    /// error — ids should only come from this schema).
    pub fn attr_name(&self, attr: AttrId) -> &str {
        self.inner.attrs[attr.index()].name() // aimq-lint: allow(indexing) -- AttrId was minted by this schema, so index < arity
    }

    /// The domain of attribute `attr` (panics on out-of-range ids).
    pub fn domain(&self, attr: AttrId) -> Domain {
        self.inner.attrs[attr.index()].domain() // aimq-lint: allow(indexing) -- AttrId was minted by this schema, so index < arity
    }

    /// Resolve an attribute name to its id.
    pub fn attr_id(&self, name: &str) -> Result<AttrId> {
        self.inner
            .by_name
            .get(name)
            .copied()
            .ok_or_else(|| CatalogError::UnknownAttribute(name.to_owned()))
    }

    /// `true` if `attr` belongs to this schema.
    pub fn contains(&self, attr: AttrId) -> bool {
        attr.index() < self.arity()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name())?;
        for (i, a) in self.attributes().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.name())?;
        }
        write!(f, ")")
    }
}

/// Builder for [`Schema`]; rejects duplicate attribute names.
#[derive(Debug)]
pub struct SchemaBuilder {
    name: String,
    attrs: Vec<Attribute>,
}

impl SchemaBuilder {
    /// Append a categorical attribute.
    pub fn categorical(mut self, name: impl Into<String>) -> Self {
        self.attrs.push(Attribute::categorical(name));
        self
    }

    /// Append a numeric attribute.
    pub fn numeric(mut self, name: impl Into<String>) -> Self {
        self.attrs.push(Attribute::numeric(name));
        self
    }

    /// Append an already-constructed attribute.
    pub fn attribute(mut self, attr: Attribute) -> Self {
        self.attrs.push(attr);
        self
    }

    /// Finish the schema, validating name uniqueness.
    pub fn build(self) -> Result<Schema> {
        let mut by_name = HashMap::with_capacity(self.attrs.len());
        for (i, a) in self.attrs.iter().enumerate() {
            if by_name.insert(a.name().to_owned(), AttrId(i)).is_some() {
                return Err(CatalogError::DuplicateAttribute(a.name().to_owned()));
            }
        }
        Ok(Schema {
            inner: Arc::new(SchemaInner {
                name: self.name,
                attrs: self.attrs,
                by_name,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn car_schema() -> Schema {
        Schema::builder("CarDB")
            .categorical("Make")
            .categorical("Model")
            .numeric("Year")
            .numeric("Price")
            .numeric("Mileage")
            .categorical("Location")
            .categorical("Color")
            .build()
            .unwrap()
    }

    #[test]
    fn builds_paper_cardb_schema() {
        let s = car_schema();
        assert_eq!(s.name(), "CarDB");
        assert_eq!(s.arity(), 7);
        assert_eq!(s.attr_name(AttrId(1)), "Model");
        assert_eq!(s.domain(AttrId(3)), Domain::Numeric);
        assert_eq!(s.domain(AttrId(0)), Domain::Categorical);
    }

    #[test]
    fn name_lookup_round_trips() {
        let s = car_schema();
        for a in s.attr_ids() {
            assert_eq!(s.attr_id(s.attr_name(a)).unwrap(), a);
        }
        assert!(matches!(
            s.attr_id("Engine"),
            Err(CatalogError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::builder("R")
            .categorical("A")
            .numeric("A")
            .build()
            .unwrap_err();
        assert_eq!(err, CatalogError::DuplicateAttribute("A".into()));
    }

    #[test]
    fn categorical_and_numeric_partitions_cover_schema() {
        let s = car_schema();
        let cats = s.categorical_attrs();
        let nums = s.numeric_attrs();
        assert_eq!(cats.len() + nums.len(), s.arity());
        assert!(cats.iter().all(|&a| s.domain(a) == Domain::Categorical));
        assert!(nums.iter().all(|&a| s.domain(a) == Domain::Numeric));
    }

    #[test]
    fn attribute_out_of_range_is_error() {
        let s = car_schema();
        assert!(matches!(
            s.attribute(AttrId(7)),
            Err(CatalogError::AttrIdOutOfRange { attr: 7, len: 7 })
        ));
    }

    #[test]
    fn display_lists_attributes() {
        let s = car_schema();
        let d = s.to_string();
        assert!(d.starts_with("CarDB("));
        assert!(d.contains("Make, Model, Year"));
    }

    #[test]
    fn equality_by_structure() {
        let a = car_schema();
        let b = car_schema();
        assert_eq!(a, b);
        let c = Schema::builder("CarDB")
            .categorical("Make")
            .build()
            .unwrap();
        assert_ne!(a, c);
    }
}
