use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A single attribute value.
///
/// The paper's data model distinguishes *categorical* attributes (compared
/// only for equality; similarity between their values is **mined**, Section 5)
/// from *numeric* attributes (whose similarity is a normalized L1 distance).
/// `Null` represents a missing binding — e.g. an attribute left unbound by a
/// relaxed query or absent from a probed tuple.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Missing / unbound.
    Null,
    /// A categorical value, e.g. `Make = "Ford"`.
    Cat(String),
    /// A numeric value, e.g. `Price = 10000.0`.
    Num(f64),
}

impl Value {
    /// Construct a categorical value from anything string-like.
    pub fn cat(s: impl Into<String>) -> Self {
        Value::Cat(s.into())
    }

    /// Construct a numeric value.
    pub fn num(n: impl Into<f64>) -> Self {
        Value::Num(n.into())
    }

    /// `true` when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Human-readable name of the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Cat(_) => "categorical",
            Value::Num(_) => "numeric",
        }
    }

    /// The categorical payload, if this is a `Cat` value.
    pub fn as_cat(&self) -> Option<&str> {
        match self {
            Value::Cat(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a [`crate::Json`] scalar: `Null` → `null`, `Cat` →
    /// string, `Num` → number. The wire protocol's tuple rendering.
    pub fn to_json(&self) -> crate::Json {
        match self {
            Value::Null => crate::Json::Null,
            Value::Cat(s) => crate::Json::Str(s.clone()),
            Value::Num(n) => crate::Json::Num(*n),
        }
    }

    /// The numeric payload, if this is a `Num` value.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Cat(a), Value::Cat(b)) => a == b,
            // Bit-equality on the canonicalized f64 keeps `Eq` lawful while
            // still treating `-0.0 == 0.0` (both canonicalize to `0.0`).
            (Value::Num(a), Value::Num(b)) => canonical_bits(*a) == canonical_bits(*b),
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Cat(s) => s.hash(state),
            Value::Num(n) => canonical_bits(*n).hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order used only for deterministic output (sorted tables,
    /// reproducible tie-breaking): `Null < Num < Cat`, numerics by total
    /// order of their canonical bits, categoricals lexicographically.
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Num(_) => 1,
                Value::Cat(_) => 2,
            }
        }
        match (self, other) {
            (Value::Num(a), Value::Num(b)) => a.total_cmp(b),
            (Value::Cat(a), Value::Cat(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "∅"),
            Value::Cat(s) => write!(f, "{s}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
        }
    }
}

/// Canonicalize an `f64` for hashing/equality: collapse `-0.0` into `0.0`
/// and all NaN payloads into one bit pattern.
pub(crate) fn canonical_bits(n: f64) -> u64 {
    if n == 0.0 {
        0u64
    } else if n.is_nan() {
        f64::NAN.to_bits()
    } else {
        n.to_bits()
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Cat(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Cat(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Num(f64::from(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn constructors_and_accessors() {
        let c = Value::cat("Camry");
        assert_eq!(c.as_cat(), Some("Camry"));
        assert_eq!(c.as_num(), None);
        assert_eq!(c.type_name(), "categorical");

        let n = Value::num(10000.0);
        assert_eq!(n.as_num(), Some(10000.0));
        assert_eq!(n.as_cat(), None);
        assert!(!n.is_null());
        assert!(Value::Null.is_null());
    }

    #[test]
    fn equality_is_type_aware() {
        assert_eq!(Value::cat("Ford"), Value::cat("Ford"));
        assert_ne!(Value::cat("Ford"), Value::cat("Honda"));
        assert_ne!(Value::cat("10000"), Value::num(10000.0));
        assert_eq!(Value::num(1.5), Value::num(1.5));
        assert_ne!(Value::num(1.5), Value::num(1.6));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn negative_zero_equals_zero_and_hashes_alike() {
        assert_eq!(Value::num(0.0), Value::num(-0.0));
        assert_eq!(hash_of(&Value::num(0.0)), hash_of(&Value::num(-0.0)));
    }

    #[test]
    fn nan_is_self_equal_under_canonicalization() {
        // We need Value to be usable as a HashMap key, so NaN == NaN here
        // (unlike raw f64). Relations never store NaN, but the model must
        // not panic or misbehave if one sneaks in.
        assert_eq!(Value::num(f64::NAN), Value::num(f64::NAN));
        assert_eq!(
            hash_of(&Value::num(f64::NAN)),
            hash_of(&Value::num(f64::NAN))
        );
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut vs = vec![
            Value::cat("Zed"),
            Value::num(3.0),
            Value::Null,
            Value::cat("Alpha"),
            Value::num(-1.0),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::num(-1.0),
                Value::num(3.0),
                Value::cat("Alpha"),
                Value::cat("Zed"),
            ]
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::cat("Ford").to_string(), "Ford");
        assert_eq!(Value::num(2002.0).to_string(), "2002");
        assert_eq!(Value::num(2.5).to_string(), "2.5");
        assert_eq!(Value::Null.to_string(), "∅");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("x"), Value::cat("x"));
        assert_eq!(Value::from(3i64), Value::num(3.0));
        assert_eq!(Value::from(3u32), Value::num(3.0));
        assert_eq!(Value::from(3.5f64), Value::num(3.5));
    }
}
