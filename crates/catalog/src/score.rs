use std::cmp::Ordering;

/// An `f64` similarity/importance score with a *total* order.
///
/// Ranked answer sets sort on floating-point scores everywhere in the
/// suite, and `partial_cmp` silently mis-sorts when a NaN sneaks in
/// (every comparison returns `None`). Wrapping the score gives it IEEE
/// 754 `totalOrder` semantics via [`f64::total_cmp`]: `-NaN < -∞ < … <
/// +∞ < +NaN`, so sorting is always well-defined and deterministic.
///
/// The workspace lint (`cargo xtask lint`, rule `float-ordering`)
/// rejects `partial_cmp` on scores in library code; use
/// `f64::total_cmp` directly or sort on `OrderedScore` keys:
///
/// ```
/// use aimq_catalog::OrderedScore;
/// let mut scored = vec![("a", 0.3), ("b", 0.9), ("c", f64::NAN)];
/// scored.sort_by_key(|&(_, s)| std::cmp::Reverse(OrderedScore(s)));
/// assert_eq!(scored[0].0, "c"); // NaN sorts above every number
/// assert_eq!(scored[1].0, "b");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OrderedScore(pub f64);

impl OrderedScore {
    /// The wrapped score.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl From<f64> for OrderedScore {
    fn from(score: f64) -> Self {
        OrderedScore(score)
    }
}

impl PartialEq for OrderedScore {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for OrderedScore {}

impl PartialOrd for OrderedScore {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedScore {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totally_ordered_including_nan() {
        let mut xs = vec![
            OrderedScore(0.5),
            OrderedScore(f64::NAN),
            OrderedScore(-1.0),
            OrderedScore(f64::INFINITY),
        ];
        xs.sort();
        assert_eq!(xs[0].get(), -1.0);
        assert_eq!(xs[1].get(), 0.5);
        assert_eq!(xs[2].get(), f64::INFINITY);
        assert!(xs[3].get().is_nan());
    }

    #[test]
    fn nan_equals_itself_under_total_order() {
        assert_eq!(OrderedScore(f64::NAN), OrderedScore(f64::NAN));
        assert_ne!(OrderedScore(0.0), OrderedScore(1.0));
    }

    #[test]
    fn zero_signs_are_distinguished() {
        // totalOrder: -0.0 < +0.0 — stricter than `==`, still total.
        assert!(OrderedScore(-0.0) < OrderedScore(0.0));
    }
}
