use serde::{Deserialize, Serialize};

/// Bucketing specification for a numeric attribute.
///
/// Two AIMQ components need to treat continuous attributes as discrete:
///
/// * **AFD mining** — TANE partitions tuples by attribute *value*; raw
///   continuous values would make almost every tuple its own class and no
///   dependency involving the attribute would ever be approximate.
/// * **Supertuples** — Table 1 of the paper shows the `Make=Ford` supertuple
///   with bags like `Mileage 10k-15k:3` and `Price 1k-5k:5`: numeric
///   co-occurrence features are *ranges*, not exact values.
///
/// A `BucketSpec` maps a value `v` to bucket index `floor((v - origin) /
/// width)` and renders paper-style labels such as `10k-15k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BucketSpec {
    /// Left edge of bucket 0.
    pub origin: f64,
    /// Bucket width (> 0).
    pub width: f64,
}

impl BucketSpec {
    /// Create a spec with the given origin and width. Panics if `width <= 0`
    /// (a configuration error, not a data error).
    pub fn new(origin: f64, width: f64) -> Self {
        assert!(width > 0.0, "bucket width must be positive, got {width}");
        assert!(origin.is_finite(), "bucket origin must be finite");
        BucketSpec { origin, width }
    }

    /// Spec with origin 0 — the common case (`Price`, `Mileage`).
    pub fn width(width: f64) -> Self {
        Self::new(0.0, width)
    }

    /// Bucket index for `v`. Values below the origin clamp to bucket 0 and
    /// non-finite values also map to bucket 0 so that dirty data degrades
    /// gracefully instead of panicking mid-mine.
    pub fn bucket_of(&self, v: f64) -> u32 {
        if !v.is_finite() || v < self.origin {
            return 0;
        }
        let idx = ((v - self.origin) / self.width).floor();
        if idx >= f64::from(u32::MAX) {
            u32::MAX
        } else {
            idx as u32
        }
    }

    /// Inclusive-exclusive range `[lo, hi)` covered by bucket `idx`.
    pub fn range_of(&self, idx: u32) -> (f64, f64) {
        let lo = self.origin + f64::from(idx) * self.width;
        (lo, lo + self.width)
    }

    /// Paper-style label for bucket `idx`, e.g. `10k-15k` for
    /// `[10000, 15000)` or `1984-1985` for year-width-1 buckets.
    pub fn label_of(&self, idx: u32) -> String {
        let (lo, hi) = self.range_of(idx);
        format!("{}-{}", compact(lo), compact(hi))
    }
}

/// Compact numeric rendering: `15000 -> "15k"`, `2000000 -> "2m"`,
/// `1985 -> "1985"` (no suffix when not an exact multiple).
fn compact(v: f64) -> String {
    let r = v.round();
    if r >= 1_000_000.0 && (r % 1_000_000.0) == 0.0 {
        format!("{}m", (r / 1_000_000.0) as i64)
    } else if r >= 1_000.0 && (r % 1_000.0) == 0.0 && r < 1_000_000.0 {
        format!("{}k", (r / 1_000.0) as i64)
    } else if (v - r).abs() < 1e-9 {
        format!("{}", r as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices() {
        let b = BucketSpec::width(5000.0);
        assert_eq!(b.bucket_of(0.0), 0);
        assert_eq!(b.bucket_of(4999.99), 0);
        assert_eq!(b.bucket_of(5000.0), 1);
        assert_eq!(b.bucket_of(14999.0), 2);
        assert_eq!(b.bucket_of(15000.0), 3);
    }

    #[test]
    fn origin_shifts_buckets() {
        let b = BucketSpec::new(1980.0, 1.0);
        assert_eq!(b.bucket_of(1980.0), 0);
        assert_eq!(b.bucket_of(1985.4), 5);
        assert_eq!(b.range_of(5), (1985.0, 1986.0));
    }

    #[test]
    fn below_origin_and_nonfinite_clamp_to_zero() {
        let b = BucketSpec::new(100.0, 10.0);
        assert_eq!(b.bucket_of(50.0), 0);
        assert_eq!(b.bucket_of(f64::NAN), 0);
        assert_eq!(b.bucket_of(f64::INFINITY), 0);
        assert_eq!(b.bucket_of(f64::NEG_INFINITY), 0);
        // Finite but astronomically large values saturate instead of
        // wrapping.
        assert_eq!(b.bucket_of(f64::MAX), u32::MAX);
    }

    #[test]
    fn paper_style_labels() {
        let price = BucketSpec::width(5000.0);
        assert_eq!(price.label_of(2), "10k-15k");
        assert_eq!(price.label_of(0), "0-5k");
        let year = BucketSpec::new(1980.0, 1.0);
        assert_eq!(year.label_of(5), "1985-1986");
        let big = BucketSpec::width(1_000_000.0);
        assert_eq!(big.label_of(2), "2m-3m");
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = BucketSpec::width(0.0);
    }

    #[test]
    fn range_and_bucket_are_consistent() {
        let b = BucketSpec::new(-50.0, 7.5);
        for idx in 0..100u32 {
            let (lo, hi) = b.range_of(idx);
            assert_eq!(b.bucket_of(lo), idx);
            assert_eq!(b.bucket_of(hi - 1e-9), idx);
            assert_eq!(b.bucket_of(hi), idx + 1);
        }
    }
}
