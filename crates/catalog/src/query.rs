use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AttrId, CatalogError, Domain, Result, Schema, Tuple, Value};

/// Comparison operator of a precise predicate.
///
/// Categorical attributes only admit [`PredicateOp::Eq`]; numeric attributes
/// admit the full set. This mirrors the boolean query-processing model the
/// paper assumes the autonomous Web database exposes (Section 3.1,
/// constraint 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PredicateOp {
    /// `attr = v`
    Eq,
    /// `attr < v` (numeric only)
    Lt,
    /// `attr <= v` (numeric only)
    Le,
    /// `attr > v` (numeric only)
    Gt,
    /// `attr >= v` (numeric only)
    Ge,
}

impl PredicateOp {
    /// SQL-ish operator symbol for display.
    pub fn symbol(self) -> &'static str {
        match self {
            PredicateOp::Eq => "=",
            PredicateOp::Lt => "<",
            PredicateOp::Le => "<=",
            PredicateOp::Gt => ">",
            PredicateOp::Ge => ">=",
        }
    }
}

/// A single conjunct of a [`SelectionQuery`].
///
/// The derived total order — `(attr, op, value)` lexicographically, with
/// [`crate::Value`]'s NaN-collapsing `Ord` — is what makes a
/// [`SelectionQuery`] canonicalizable and usable as a `BTreeMap` key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Predicate {
    /// Attribute constrained by this predicate.
    pub attr: AttrId,
    /// Comparison operator.
    pub op: PredicateOp,
    /// Comparison constant.
    pub value: Value,
}

impl Predicate {
    /// Equality predicate `attr = value`.
    pub fn eq(attr: AttrId, value: Value) -> Self {
        Predicate {
            attr,
            op: PredicateOp::Eq,
            value,
        }
    }

    /// Validate the predicate against a schema (domain & operator rules).
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        let attribute = schema.attribute(self.attr)?;
        match (attribute.domain(), &self.value) {
            (Domain::Categorical, Value::Cat(_)) => {
                if self.op != PredicateOp::Eq {
                    return Err(CatalogError::InvalidOperator {
                        attribute: attribute.name().to_owned(),
                        op: self.op.symbol().to_owned(),
                    });
                }
            }
            (Domain::Numeric, Value::Num(_)) => {}
            (_, v) => {
                return Err(CatalogError::DomainMismatch {
                    attribute: attribute.name().to_owned(),
                    expected: attribute.domain().name(),
                    actual: v.type_name(),
                });
            }
        }
        Ok(())
    }

    /// `true` when `tuple` satisfies this predicate. Null tuple values never
    /// satisfy any predicate.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        let tv = tuple.value(self.attr);
        match (self.op, tv, &self.value) {
            (PredicateOp::Eq, tv, qv) => !tv.is_null() && tv == qv,
            (PredicateOp::Lt, Value::Num(t), Value::Num(q)) => t < q,
            (PredicateOp::Le, Value::Num(t), Value::Num(q)) => t <= q,
            (PredicateOp::Gt, Value::Num(t), Value::Num(q)) => t > q,
            (PredicateOp::Ge, Value::Num(t), Value::Num(q)) => t >= q,
            _ => false,
        }
    }
}

/// A *precise* conjunctive selection query: the only kind the autonomous
/// Web-database interface can evaluate. A tuple either satisfies all
/// predicates or is not an answer — no ranking.
///
/// Queries carry a total order (predicate lists compared lexicographically)
/// so that [`SelectionQuery::canonicalize`]d forms can key deterministic
/// `BTreeMap`-based caches. Note that `Eq`/`Ord` compare the *syntactic*
/// predicate list: `σ(A=1 ∧ B=2)` and `σ(B=2 ∧ A=1)` are different values
/// but share one canonical form.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct SelectionQuery {
    predicates: Vec<Predicate>,
}

impl SelectionQuery {
    /// The query with no predicates (matches every tuple).
    pub fn all() -> Self {
        SelectionQuery::default()
    }

    /// Build from a list of predicates.
    pub fn new(predicates: Vec<Predicate>) -> Self {
        SelectionQuery { predicates }
    }

    /// Algorithm 1 step 3 viewpoint: treat a tuple as a fully bound
    /// equality-selection query over the attributes in `attrs` (typically
    /// all non-null attributes of the tuple).
    pub fn from_tuple(tuple: &Tuple, attrs: &[AttrId]) -> Self {
        let predicates = attrs
            .iter()
            .filter(|&&a| !tuple.value(a).is_null())
            .map(|&a| Predicate::eq(a, tuple.value(a).clone()))
            .collect();
        SelectionQuery { predicates }
    }

    /// The conjuncts of this query.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// `true` when the query has no predicates.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Attributes constrained by at least one predicate, in predicate order
    /// without duplicates.
    pub fn bound_attrs(&self) -> Vec<AttrId> {
        let mut seen = Vec::new();
        for p in &self.predicates {
            if !seen.contains(&p.attr) {
                seen.push(p.attr);
            }
        }
        seen
    }

    /// Add a predicate (builder style).
    pub fn and(mut self, predicate: Predicate) -> Self {
        self.predicates.push(predicate);
        self
    }

    /// *Relaxation*: a copy of this query with every predicate on the
    /// attributes in `attrs` removed. This is the primitive both
    /// `GuidedRelax` and `RandomRelax` are built from.
    pub fn relax(&self, attrs: &[AttrId]) -> Self {
        SelectionQuery {
            predicates: self
                .predicates
                .iter()
                .filter(|p| !attrs.contains(&p.attr))
                .cloned()
                .collect(),
        }
    }

    /// `true` when the predicate list is already canonical — strictly
    /// sorted by `(attr, op, value)` with no duplicates. The O(n)
    /// pre-check lets callers that already hold a canonical form (the
    /// engine's probe plan stores one per probe) skip the sort-and-dedup
    /// in [`SelectionQuery::canonicalize`] and the clone in cache-key
    /// derivation.
    pub fn is_canonical(&self) -> bool {
        self.predicates
            .iter()
            .zip(self.predicates.iter().skip(1))
            .all(|(a, b)| a < b)
    }

    /// Canonical form: predicates sorted by `(attr, op, value)` with exact
    /// duplicates removed. Conjunction is commutative and idempotent, so a
    /// query and its canonical form select exactly the same tuples; two
    /// queries with equal canonical forms are semantically interchangeable
    /// probes. Probe-dedup and the memoizing cache key on this form.
    ///
    /// Already-canonical queries take a sort-free fast path.
    #[must_use]
    pub fn canonicalize(&self) -> SelectionQuery {
        if self.is_canonical() {
            return self.clone();
        }
        let mut predicates = self.predicates.clone();
        predicates.sort();
        predicates.dedup();
        SelectionQuery { predicates }
    }

    /// Deterministic 64-bit FNV-1a hash of the *canonical* form: stable
    /// across processes and runs (unlike `std`'s per-process-seeded
    /// `RandomState`), and equal for semantically interchangeable probes
    /// regardless of predicate order or duplicate conjuncts. NaN payloads
    /// and `-0.0` collapse the same way [`Value`]'s `Eq` does. Cache
    /// stripe selection and keyed fault schedules are built on this.
    pub fn stable_hash(&self) -> u64 {
        if self.is_canonical() {
            stable_hash_of(&self.predicates)
        } else {
            stable_hash_of(&self.canonicalize().predicates)
        }
    }

    /// Validate every predicate against `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        for p in &self.predicates {
            p.validate(schema)?;
        }
        Ok(())
    }

    /// Boolean evaluation: does `tuple` satisfy every conjunct?
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.predicates.iter().all(|p| p.matches(tuple))
    }

    /// Render with attribute names, e.g. `σ(Model=Camry ∧ Price<=10000)`.
    pub fn display_with<'a>(&'a self, schema: &'a Schema) -> SelectionQueryDisplay<'a> {
        SelectionQueryDisplay {
            query: self,
            schema,
        }
    }
}

/// FNV-1a over a canonical predicate list. Values are encoded with a
/// domain tag so `Cat("1")` and `Num(1.0)` cannot collide structurally.
fn stable_hash_of(predicates: &[Predicate]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    fn mix(mut hash: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
        hash
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for p in predicates {
        hash = mix(hash, &(p.attr.0 as u64).to_le_bytes());
        let op = match p.op {
            PredicateOp::Eq => 0u8,
            PredicateOp::Lt => 1,
            PredicateOp::Le => 2,
            PredicateOp::Gt => 3,
            PredicateOp::Ge => 4,
        };
        hash = mix(hash, &[op]);
        match &p.value {
            Value::Null => hash = mix(hash, &[0]),
            Value::Num(n) => {
                hash = mix(hash, &[1]);
                hash = mix(hash, &crate::value::canonical_bits(*n).to_le_bytes());
            }
            Value::Cat(s) => {
                hash = mix(hash, &[2]);
                hash = mix(hash, &(s.len() as u64).to_le_bytes());
                hash = mix(hash, s.as_bytes());
            }
        }
    }
    hash
}

/// Helper returned by [`SelectionQuery::display_with`].
pub struct SelectionQueryDisplay<'a> {
    query: &'a SelectionQuery,
    schema: &'a Schema,
}

impl fmt::Display for SelectionQueryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ(")?;
        for (i, p) in self.query.predicates().iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(
                f,
                "{}{}{}",
                self.schema.attr_name(p.attr),
                p.op.symbol(),
                p.value
            )?;
        }
        write!(f, ")")
    }
}

/// The user-facing *imprecise* query of the paper: a conjunction of
/// `attribute like value` bindings whose answers must be *similar* to the
/// constraints rather than exactly equal (Section 3.2).
///
/// Example (the paper's running query):
///
/// ```
/// use aimq_catalog::{ImpreciseQuery, Schema, Value};
///
/// let schema = Schema::builder("CarDB")
///     .categorical("Make").categorical("Model").numeric("Price")
///     .build().unwrap();
/// let q = ImpreciseQuery::builder(&schema)
///     .like("Model", Value::cat("Camry")).unwrap()
///     .like("Price", Value::num(10000.0)).unwrap()
///     .build().unwrap();
/// assert_eq!(q.bindings().len(), 2);
/// let base = q.to_base_query(); // tighten "like" into "="
/// assert_eq!(base.predicates().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpreciseQuery {
    bindings: Vec<(AttrId, Value)>,
}

impl ImpreciseQuery {
    /// Start building an imprecise query against `schema`.
    pub fn builder(schema: &Schema) -> ImpreciseQueryBuilder<'_> {
        ImpreciseQueryBuilder {
            schema,
            bindings: Vec::new(),
        }
    }

    /// Build directly from `(attribute, value)` pairs (already validated by
    /// the caller).
    pub fn from_bindings(bindings: Vec<(AttrId, Value)>) -> Result<Self> {
        if bindings.is_empty() {
            return Err(CatalogError::EmptyQuery);
        }
        Ok(ImpreciseQuery { bindings })
    }

    /// Derive an imprecise query from a tuple: every non-null attribute of
    /// the tuple becomes a `like` binding. Used heavily by the evaluation
    /// harness, which draws query workloads from the relation itself
    /// (Sections 6.3–6.5).
    pub fn from_tuple(tuple: &Tuple) -> Result<Self> {
        let bindings: Vec<(AttrId, Value)> = tuple
            .bound_attrs()
            .into_iter()
            .map(|a| (a, tuple.value(a).clone()))
            .collect();
        Self::from_bindings(bindings)
    }

    /// The `attribute like value` bindings.
    pub fn bindings(&self) -> &[(AttrId, Value)] {
        &self.bindings
    }

    /// Attributes bound by the query — the paper's
    /// `boundattributes(Q)`.
    pub fn bound_attrs(&self) -> Vec<AttrId> {
        self.bindings.iter().map(|&(a, _)| a).collect()
    }

    /// The value the query binds for `attr`, if any.
    pub fn value_for(&self, attr: AttrId) -> Option<&Value> {
        self.bindings
            .iter()
            .find(|&&(a, _)| a == attr)
            .map(|(_, v)| v)
    }

    /// Map the imprecise query to its *base query* `Qpr` by tightening every
    /// `like` into `=` (Section 1: "we derive Qpr by tightening the
    /// constraints from likeliness to equality").
    pub fn to_base_query(&self) -> SelectionQuery {
        SelectionQuery::new(
            self.bindings
                .iter()
                .map(|(a, v)| Predicate::eq(*a, v.clone()))
                .collect(),
        )
    }

    /// Render with attribute names, e.g.
    /// `Q(Model like Camry, Price like 10000)`.
    pub fn display_with<'a>(&'a self, schema: &'a Schema) -> ImpreciseQueryDisplay<'a> {
        ImpreciseQueryDisplay {
            query: self,
            schema,
        }
    }
}

/// Helper returned by [`ImpreciseQuery::display_with`].
pub struct ImpreciseQueryDisplay<'a> {
    query: &'a ImpreciseQuery,
    schema: &'a Schema,
}

impl fmt::Display for ImpreciseQueryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q(")?;
        for (i, (a, v)) in self.query.bindings().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} like {}", self.schema.attr_name(*a), v)?;
        }
        write!(f, ")")
    }
}

/// Builder for [`ImpreciseQuery`] that validates names and domains eagerly.
#[derive(Debug)]
pub struct ImpreciseQueryBuilder<'a> {
    schema: &'a Schema,
    bindings: Vec<(AttrId, Value)>,
}

impl ImpreciseQueryBuilder<'_> {
    /// Add an `attribute like value` binding by attribute name.
    pub fn like(mut self, attr_name: &str, value: Value) -> Result<Self> {
        let attr = self.schema.attr_id(attr_name)?;
        let attribute = self.schema.attribute(attr)?;
        let ok = matches!(
            (attribute.domain(), &value),
            (Domain::Categorical, Value::Cat(_)) | (Domain::Numeric, Value::Num(_))
        );
        if !ok {
            return Err(CatalogError::DomainMismatch {
                attribute: attribute.name().to_owned(),
                expected: attribute.domain().name(),
                actual: value.type_name(),
            });
        }
        self.bindings.push((attr, value));
        Ok(self)
    }

    /// Finish the query; at least one binding is required.
    pub fn build(self) -> Result<ImpreciseQuery> {
        ImpreciseQuery::from_bindings(self.bindings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::builder("CarDB")
            .categorical("Make")
            .categorical("Model")
            .numeric("Year")
            .numeric("Price")
            .build()
            .unwrap()
    }

    fn tuple(make: &str, model: &str, year: f64, price: f64) -> Tuple {
        Tuple::new(
            &schema(),
            vec![
                Value::cat(make),
                Value::cat(model),
                Value::num(year),
                Value::num(price),
            ],
        )
        .unwrap()
    }

    #[test]
    fn equality_predicate_matches() {
        let t = tuple("Toyota", "Camry", 2000.0, 10000.0);
        let p = Predicate::eq(AttrId(1), Value::cat("Camry"));
        assert!(p.matches(&t));
        let p = Predicate::eq(AttrId(1), Value::cat("Accord"));
        assert!(!p.matches(&t));
    }

    #[test]
    fn numeric_comparisons() {
        let t = tuple("Toyota", "Camry", 2000.0, 10000.0);
        let lt = Predicate {
            attr: AttrId(3),
            op: PredicateOp::Lt,
            value: Value::num(10001.0),
        };
        assert!(lt.matches(&t));
        let gt = Predicate {
            attr: AttrId(3),
            op: PredicateOp::Gt,
            value: Value::num(10000.0),
        };
        assert!(!gt.matches(&t));
        let ge = Predicate {
            attr: AttrId(3),
            op: PredicateOp::Ge,
            value: Value::num(10000.0),
        };
        assert!(ge.matches(&t));
        let le = Predicate {
            attr: AttrId(2),
            op: PredicateOp::Le,
            value: Value::num(1999.0),
        };
        assert!(!le.matches(&t));
    }

    #[test]
    fn null_never_matches() {
        let s = schema();
        let t = Tuple::new(
            &s,
            vec![Value::Null, Value::cat("Camry"), Value::Null, Value::Null],
        )
        .unwrap();
        assert!(!Predicate::eq(AttrId(0), Value::cat("Toyota")).matches(&t));
        let lt = Predicate {
            attr: AttrId(3),
            op: PredicateOp::Lt,
            value: Value::num(1.0),
        };
        assert!(!lt.matches(&t));
    }

    #[test]
    fn categorical_range_operator_invalid() {
        let s = schema();
        let p = Predicate {
            attr: AttrId(0),
            op: PredicateOp::Lt,
            value: Value::cat("Ford"),
        };
        assert!(matches!(
            p.validate(&s),
            Err(CatalogError::InvalidOperator { .. })
        ));
    }

    #[test]
    fn predicate_domain_validation() {
        let s = schema();
        let p = Predicate::eq(AttrId(0), Value::num(3.0));
        assert!(matches!(
            p.validate(&s),
            Err(CatalogError::DomainMismatch { .. })
        ));
        let p = Predicate::eq(AttrId(3), Value::num(3.0));
        assert!(p.validate(&s).is_ok());
    }

    #[test]
    fn conjunction_semantics() {
        let t = tuple("Toyota", "Camry", 2000.0, 10000.0);
        let q = SelectionQuery::all()
            .and(Predicate::eq(AttrId(0), Value::cat("Toyota")))
            .and(Predicate::eq(AttrId(1), Value::cat("Camry")));
        assert!(q.matches(&t));
        let q = q.and(Predicate::eq(AttrId(3), Value::num(9999.0)));
        assert!(!q.matches(&t));
        assert!(SelectionQuery::all().matches(&t));
    }

    #[test]
    fn from_tuple_binds_all_requested_attrs() {
        let t = tuple("Toyota", "Camry", 2000.0, 10000.0);
        let q = SelectionQuery::from_tuple(&t, &[AttrId(0), AttrId(1), AttrId(2), AttrId(3)]);
        assert_eq!(q.len(), 4);
        assert!(q.matches(&t));
        assert!(!q.matches(&tuple("Toyota", "Camry", 2001.0, 10000.0)));
    }

    #[test]
    fn relax_drops_named_attributes() {
        let t = tuple("Toyota", "Camry", 2000.0, 10000.0);
        let q = SelectionQuery::from_tuple(&t, &[AttrId(0), AttrId(1), AttrId(2), AttrId(3)]);
        let r = q.relax(&[AttrId(2), AttrId(3)]);
        assert_eq!(r.bound_attrs(), vec![AttrId(0), AttrId(1)]);
        // The relaxed query matches tuples that differ in relaxed attrs.
        assert!(r.matches(&tuple("Toyota", "Camry", 1995.0, 4000.0)));
        assert!(!r.matches(&tuple("Honda", "Camry", 2000.0, 10000.0)));
    }

    #[test]
    fn relax_everything_matches_all() {
        let t = tuple("Toyota", "Camry", 2000.0, 10000.0);
        let q = SelectionQuery::from_tuple(&t, &[AttrId(0), AttrId(1)]);
        let r = q.relax(&[AttrId(0), AttrId(1)]);
        assert!(r.is_empty());
        assert!(r.matches(&tuple("BMW", "M3", 2005.0, 45000.0)));
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        let a = Predicate::eq(AttrId(0), Value::cat("Toyota"));
        let b = Predicate::eq(AttrId(1), Value::cat("Camry"));
        let c = Predicate {
            attr: AttrId(3),
            op: PredicateOp::Ge,
            value: Value::num(5000.0),
        };
        let q1 = SelectionQuery::new(vec![c.clone(), a.clone(), b.clone(), a.clone()]);
        let q2 = SelectionQuery::new(vec![b.clone(), c.clone(), a.clone()]);
        assert_ne!(q1, q2, "syntactic order distinguishes the raw queries");
        assert_eq!(q1.canonicalize(), q2.canonicalize());
        let canon = q1.canonicalize();
        assert_eq!(canon.predicates(), &[a, b, c]);
        // Canonicalization is idempotent and semantics-preserving.
        assert_eq!(canon.canonicalize(), canon);
        let t = tuple("Toyota", "Camry", 2000.0, 10000.0);
        assert_eq!(q1.matches(&t), canon.matches(&t));
    }

    #[test]
    fn canonical_queries_order_totally() {
        // `Ord` must agree with `Eq` so canonical forms key a BTreeMap.
        let q1 = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("A"))]);
        let q2 = SelectionQuery::new(vec![Predicate::eq(AttrId(1), Value::cat("A"))]);
        assert!(q1 < q2);
        assert_eq!(q1.cmp(&q1), std::cmp::Ordering::Equal);
        let mut map = std::collections::BTreeMap::new();
        map.insert(q1.canonicalize(), 1);
        map.insert(q2.canonicalize(), 2);
        map.insert(q1.canonicalize(), 3); // same key, overwritten
        assert_eq!(map.len(), 2);
        assert_eq!(map[&q1.canonicalize()], 3);
    }

    #[test]
    fn is_canonical_detects_sorted_deduped_lists() {
        let a = Predicate::eq(AttrId(0), Value::cat("Toyota"));
        let b = Predicate::eq(AttrId(1), Value::cat("Camry"));
        assert!(SelectionQuery::all().is_canonical());
        assert!(SelectionQuery::new(vec![a.clone()]).is_canonical());
        assert!(SelectionQuery::new(vec![a.clone(), b.clone()]).is_canonical());
        assert!(!SelectionQuery::new(vec![b.clone(), a.clone()]).is_canonical());
        assert!(!SelectionQuery::new(vec![a.clone(), a.clone()]).is_canonical());
        // The fast path returns the same value as the sort path.
        let unsorted = SelectionQuery::new(vec![b.clone(), a.clone()]);
        let canon = unsorted.canonicalize();
        assert!(canon.is_canonical());
        assert_eq!(canon.canonicalize(), canon);
    }

    #[test]
    fn stable_hash_is_canonical_and_discriminating() {
        let a = Predicate::eq(AttrId(0), Value::cat("Toyota"));
        let b = Predicate::eq(AttrId(1), Value::cat("Camry"));
        let c = Predicate {
            attr: AttrId(3),
            op: PredicateOp::Ge,
            value: Value::num(5000.0),
        };
        // Permuted/duplicated conjuncts hash equal; different queries
        // hash apart (structurally, with overwhelming probability).
        let q1 = SelectionQuery::new(vec![c.clone(), a.clone(), b.clone(), a.clone()]);
        let q2 = SelectionQuery::new(vec![b.clone(), c.clone(), a.clone()]);
        assert_eq!(q1.stable_hash(), q2.stable_hash());
        assert_eq!(q1.stable_hash(), q1.canonicalize().stable_hash());
        assert_ne!(
            SelectionQuery::new(vec![a.clone()]).stable_hash(),
            SelectionQuery::new(vec![b]).stable_hash()
        );
        // Domain tags keep Cat("1") and Num(1) structurally distinct.
        assert_ne!(
            SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("1"))]).stable_hash(),
            SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::num(1.0))]).stable_hash()
        );
        // NaN payloads collapse exactly as canonicalization does.
        let nan = |v: f64| {
            SelectionQuery::new(vec![Predicate {
                attr: AttrId(3),
                op: PredicateOp::Lt,
                value: Value::num(v),
            }])
        };
        assert_eq!(nan(f64::NAN).stable_hash(), nan(-f64::NAN).stable_hash());
    }

    #[test]
    fn nan_values_still_canonicalize_deterministically() {
        let p = |v: f64| Predicate {
            attr: AttrId(3),
            op: PredicateOp::Lt,
            value: Value::num(v),
        };
        // All NaN payloads collapse to one canonical value, so two probes
        // built from different NaNs share a cache key.
        let q1 = SelectionQuery::new(vec![p(f64::NAN)]);
        let q2 = SelectionQuery::new(vec![p(-f64::NAN)]);
        assert_eq!(q1.canonicalize(), q2.canonicalize());
    }

    #[test]
    fn imprecise_query_builder_validates() {
        let s = schema();
        let q = ImpreciseQuery::builder(&s)
            .like("Model", Value::cat("Camry"))
            .unwrap()
            .like("Price", Value::num(10000.0))
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(q.bound_attrs(), vec![AttrId(1), AttrId(3)]);
        assert_eq!(q.value_for(AttrId(3)), Some(&Value::num(10000.0)));
        assert_eq!(q.value_for(AttrId(0)), None);

        assert!(ImpreciseQuery::builder(&s)
            .like("Engine", Value::cat("V6"))
            .is_err());
        assert!(ImpreciseQuery::builder(&s)
            .like("Price", Value::cat("cheap"))
            .is_err());
        assert!(matches!(
            ImpreciseQuery::builder(&s).build(),
            Err(CatalogError::EmptyQuery)
        ));
    }

    #[test]
    fn base_query_tightens_like_to_equality() {
        let s = schema();
        let q = ImpreciseQuery::builder(&s)
            .like("Model", Value::cat("Camry"))
            .unwrap()
            .like("Price", Value::num(10000.0))
            .unwrap()
            .build()
            .unwrap();
        let base = q.to_base_query();
        assert!(base.matches(&tuple("Toyota", "Camry", 2000.0, 10000.0)));
        assert!(!base.matches(&tuple("Toyota", "Camry", 2000.0, 10500.0)));
        assert!(base.predicates().iter().all(|p| p.op == PredicateOp::Eq));
    }

    #[test]
    fn imprecise_from_tuple_round_trip() {
        let t = tuple("Toyota", "Camry", 2000.0, 10000.0);
        let q = ImpreciseQuery::from_tuple(&t).unwrap();
        assert_eq!(q.bindings().len(), 4);
        assert!(q.to_base_query().matches(&t));
    }

    #[test]
    fn displays() {
        let s = schema();
        let q = ImpreciseQuery::builder(&s)
            .like("Model", Value::cat("Camry"))
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(q.display_with(&s).to_string(), "Q(Model like Camry)");
        let base = q.to_base_query();
        assert_eq!(base.display_with(&s).to_string(), "σ(Model=Camry)");
    }
}
