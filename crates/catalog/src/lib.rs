#![warn(missing_docs)]

//! # aimq-catalog
//!
//! The data model shared by every crate in the AIMQ reproduction of
//! *Answering Imprecise Queries over Autonomous Web Databases*
//! (Nambiar & Kambhampati, ICDE 2006).
//!
//! The paper works with flat relations projected by autonomous Web
//! databases: every attribute is either *categorical* (an opaque string
//! drawn from a finite domain, e.g. `Make`, `Model`, `Color`) or *numeric*
//! (a continuous value, e.g. `Price`, `Mileage`). Queries come in two
//! flavours:
//!
//! * [`SelectionQuery`] — a *precise* conjunctive selection that a Web
//!   database with a boolean query-processing model can evaluate directly
//!   (`Model = Camry AND Price <= 10000`);
//! * [`ImpreciseQuery`] — the user-facing *imprecise* query of the paper
//!   (`Model like Camry, Price like 10000`), which must be answered with a
//!   ranked set of tuples whose similarity to the query exceeds a
//!   threshold.
//!
//! This crate deliberately contains no algorithms: mining, similarity
//! estimation and query answering live in the `aimq-afd`, `aimq-sim` and
//! `aimq` crates. Keeping the model tiny lets every subsystem — including
//! the ROCK baseline — speak the same types.

mod bucket;
mod error;
mod json;
mod query;
mod schema;
mod score;
mod tuple;
mod value;

pub use bucket::BucketSpec;
pub use error::CatalogError;
pub use json::{Json, JsonError};
pub use query::{ImpreciseQuery, Predicate, PredicateOp, SelectionQuery};
pub use schema::{AttrId, Attribute, Domain, Schema, SchemaBuilder};
pub use score::OrderedScore;
pub use tuple::Tuple;
pub use value::Value;

/// Convenience result alias used across the catalog crate.
pub type Result<T> = std::result::Result<T, CatalogError>;
