//! Value domains and latent earning scores for the CensusDB generator.
//! Names follow the UCI Adult dataset's vocabulary so that queries from
//! the paper (e.g. `Education like Bachelors, Hours-per-week like 40`)
//! make sense verbatim.

/// Education levels with their latent earning score in `[0, 1]`.
pub fn education_table() -> &'static [(&'static str, f64)] {
    &[
        ("9th", 0.05),
        ("11th", 0.10),
        ("HS-grad", 0.25),
        ("Some-college", 0.40),
        ("Assoc-voc", 0.45),
        ("Assoc-acdm", 0.50),
        ("Bachelors", 0.70),
        ("Masters", 0.85),
        ("Prof-school", 0.95),
        ("Doctorate", 1.00),
    ]
}

/// Sampling weights aligned with [`education_table`] (UCI-ish marginals).
pub static EDU_WEIGHTS: &[f64] = &[3.0, 5.0, 32.0, 22.0, 4.0, 3.0, 17.0, 6.0, 1.5, 1.5];

/// Occupations with their latent earning score in `[0, 1]`.
pub fn occupation_table() -> &'static [(&'static str, f64)] {
    &[
        ("Exec-managerial", 0.90),
        ("Prof-specialty", 0.85),
        ("Tech-support", 0.60),
        ("Sales", 0.50),
        ("Craft-repair", 0.45),
        ("Protective-serv", 0.50),
        ("Adm-clerical", 0.35),
        ("Transport-moving", 0.35),
        ("Machine-op-inspct", 0.30),
        ("Farming-fishing", 0.20),
        ("Handlers-cleaners", 0.15),
        ("Other-service", 0.15),
    ]
}

/// Work classes (UCI vocabulary).
pub static WORKCLASSES: &[&str] = &[
    "Private",
    "Self-emp-not-inc",
    "Self-emp-inc",
    "Federal-gov",
    "State-gov",
    "Local-gov",
];

/// Race values (UCI vocabulary).
pub static RACES: &[&str] = &[
    "White",
    "Black",
    "Asian-Pac-Islander",
    "Amer-Indian-Eskimo",
    "Other",
];

/// Native countries (UCI's most frequent values).
pub static NATIVE_COUNTRIES: &[&str] = &[
    "United-States",
    "Mexico",
    "Philippines",
    "Germany",
    "Canada",
    "Puerto-Rico",
    "India",
    "El-Salvador",
    "Cuba",
    "China",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_aligned() {
        assert_eq!(education_table().len(), EDU_WEIGHTS.len());
    }

    #[test]
    fn scores_are_monotone_with_schooling() {
        let t = education_table();
        for w in t.windows(2) {
            assert!(w[0].1 <= w[1].1, "{} vs {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn scores_in_unit_interval() {
        for &(_, s) in education_table() {
            assert!((0.0..=1.0).contains(&s));
        }
        for &(_, s) in occupation_table() {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn paper_query_values_exist() {
        // Q':- CensusDB(Education like Bachelors, Hours-per-week like 40)
        assert!(education_table().iter().any(|&(e, _)| e == "Bachelors"));
    }
}
