mod spec;

use aimq_catalog::{Schema, Tuple, Value};
use aimq_storage::Relation;
use rand::{RngExt, SeedableRng};

use spec::{education_table, occupation_table, EDU_WEIGHTS, NATIVE_COUNTRIES, RACES, WORKCLASSES};

/// Income class of a generated census record — the held-out ground truth
/// of the paper's Figure 9 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncomeClass {
    /// Yearly income above $50,000.
    Above50K,
    /// Yearly income at most $50,000.
    AtMost50K,
}

/// Generator for the synthetic UCI-Census stand-in.
pub struct CensusDb;

impl CensusDb {
    /// The paper's relation: `CensusDB(Age, Workclass, Demographic-weight,
    /// Education, Marital-Status, Occupation, Relationship, Race, Sex,
    /// Capital-gain, Capital-loss, Hours-per-week, Native-Country)`.
    /// As in the paper, `Age`, `Demographic-weight`, `Capital-gain`,
    /// `Capital-loss` and `Hours-per-week` are numeric; the other eight
    /// are categorical.
    pub fn schema() -> Schema {
        Schema::builder("CensusDB")
            .numeric("Age")
            .categorical("Workclass")
            .numeric("Demographic-weight")
            .categorical("Education")
            .categorical("Marital-Status")
            .categorical("Occupation")
            .categorical("Relationship")
            .categorical("Race")
            .categorical("Sex")
            .numeric("Capital-gain")
            .numeric("Capital-loss")
            .numeric("Hours-per-week")
            .categorical("Native-Country")
            .build()
            .expect("static schema is valid")
    }

    /// Generate `n` records plus their (hidden) income classes.
    ///
    /// The class is a noisy threshold on a latent earning score driven by
    /// education, occupation, age, hours worked and capital gains — so
    /// records with the same class genuinely cluster in attribute space,
    /// which is the property the Figure 9 accuracy metric measures.
    pub fn generate(n: usize, seed: u64) -> (Relation, Vec<IncomeClass>) {
        let schema = Self::schema();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut builder = Relation::builder(schema.clone());
        let mut classes = Vec::with_capacity(n);

        for _ in 0..n {
            let (tuple, class) = Self::generate_record(&schema, &mut rng);
            builder
                .push(&tuple)
                .expect("generated tuple matches schema");
            classes.push(class);
        }
        (builder.build(), classes)
    }

    fn generate_record(schema: &Schema, rng: &mut rand::rngs::StdRng) -> (Tuple, IncomeClass) {
        // Education first: it anchors the latent earning score.
        let edu_idx = weighted_index(EDU_WEIGHTS, rng);
        let (education, edu_score) = education_table()[edu_idx];

        // Occupation skews white-collar for higher education.
        let occupations = occupation_table();
        let occ_idx = {
            let weights: Vec<f64> = occupations
                .iter()
                .map(|&(_, occ_score)| {
                    // Affinity: matching scores multiply the weight.
                    let affinity = 1.0 - (occ_score - edu_score).abs();
                    (0.15 + affinity.max(0.0)).powi(2)
                })
                .collect();
            weighted_index_f(&weights, rng)
        };
        let (occupation, occ_score) = occupations[occ_idx];

        let age = 17.0 + 63.0 * rng.random::<f64>().powf(1.3);
        let age = age.round();
        // Peak earning years around 35-55.
        let age_factor = 1.0 - ((age - 45.0) / 30.0).abs().min(1.0);

        let hours = (28.0 + 30.0 * occ_score + 12.0 * rng.random::<f64>() - 6.0)
            .clamp(5.0, 99.0)
            .round();
        let hours_factor = ((hours - 30.0) / 40.0).clamp(0.0, 1.0);

        let workclass = WORKCLASSES[weighted_index(&[60.0, 8.0, 4.0, 4.0, 5.0, 6.0], rng)];
        let workclass_bonus = match workclass {
            "Self-emp-inc" => 0.25,
            "Federal-gov" => 0.12,
            _ => 0.0,
        };

        let sex = if rng.random::<f64>() < 0.52 {
            "Male"
        } else {
            "Female"
        };
        let marital = pick_marital(age, rng);
        let relationship = pick_relationship(marital, sex, rng);
        let race = RACES[weighted_index(&[78.0, 10.0, 4.0, 1.0, 7.0], rng)];
        let native = NATIVE_COUNTRIES
            [weighted_index(&[85.0, 3.0, 2.0, 1.5, 1.5, 1.5, 1.2, 1.2, 1.1, 2.0], rng)];

        // Latent earning score (before capital income).
        let base_score = 1.1 * edu_score
            + 1.0 * occ_score
            + 0.5 * age_factor
            + 0.6 * hours_factor
            + workclass_bonus
            + if marital == "Married-civ-spouse" {
                0.2
            } else {
                0.0
            };

        // Capital gains concentrate among high earners.
        let gain_prob = 0.02 + 0.12 * (base_score / 3.0).clamp(0.0, 1.0);
        let capital_gain = if rng.random::<f64>() < gain_prob {
            (1000.0 + 20000.0 * rng.random::<f64>().powi(2)).round()
        } else {
            0.0
        };
        let capital_loss = if rng.random::<f64>() < 0.04 {
            (500.0 + 2500.0 * rng.random::<f64>()).round()
        } else {
            0.0
        };

        let demographic_weight = (20_000.0 + 280_000.0 * rng.random::<f64>()).round();

        let score =
            base_score + if capital_gain > 5000.0 { 0.8 } else { 0.0 } + 0.35 * normalish(rng);
        let class = if score > 2.05 {
            IncomeClass::Above50K
        } else {
            IncomeClass::AtMost50K
        };

        let tuple = Tuple::new(
            schema,
            vec![
                Value::num(age),
                Value::cat(workclass),
                Value::num(demographic_weight),
                Value::cat(education),
                Value::cat(marital),
                Value::cat(occupation),
                Value::cat(relationship),
                Value::cat(race),
                Value::cat(sex),
                Value::num(capital_gain),
                Value::num(capital_loss),
                Value::num(hours),
                Value::cat(native),
            ],
        )
        .expect("generator respects schema domains");
        (tuple, class)
    }
}

fn pick_marital(age: f64, rng: &mut rand::rngs::StdRng) -> &'static str {
    let married_prob = ((age - 20.0) / 25.0).clamp(0.05, 0.65);
    let u: f64 = rng.random();
    if u < married_prob {
        "Married-civ-spouse"
    } else if u < married_prob + 0.08 && age > 30.0 {
        "Divorced"
    } else if u < married_prob + 0.11 && age > 50.0 {
        "Widowed"
    } else if u < married_prob + 0.13 {
        "Separated"
    } else {
        "Never-married"
    }
}

fn pick_relationship(marital: &str, sex: &str, rng: &mut rand::rngs::StdRng) -> &'static str {
    match marital {
        "Married-civ-spouse" => {
            if sex == "Male" {
                "Husband"
            } else {
                "Wife"
            }
        }
        _ => {
            let u: f64 = rng.random();
            if u < 0.4 {
                "Not-in-family"
            } else if u < 0.7 {
                "Own-child"
            } else if u < 0.9 {
                "Unmarried"
            } else {
                "Other-relative"
            }
        }
    }
}

/// Rough standard normal via the sum of uniforms (Irwin–Hall with n=6).
fn normalish(rng: &mut rand::rngs::StdRng) -> f64 {
    let sum: f64 = (0..6).map(|_| rng.random::<f64>()).sum();
    (sum - 3.0) / f64::sqrt(0.5)
}

fn weighted_index(weights: &[f64], rng: &mut rand::rngs::StdRng) -> usize {
    weighted_index_f(weights, rng)
}

fn weighted_index_f(weights: &[f64], rng: &mut rand::rngs::StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_catalog::AttrId;

    #[test]
    fn schema_matches_paper() {
        let s = CensusDb::schema();
        assert_eq!(s.arity(), 13);
        assert_eq!(s.numeric_attrs().len(), 5);
        assert_eq!(s.categorical_attrs().len(), 8);
        assert_eq!(s.attr_name(AttrId(0)), "Age");
        assert_eq!(s.attr_name(AttrId(12)), "Native-Country");
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, ca) = CensusDb::generate(300, 5);
        let (b, cb) = CensusDb::generate(300, 5);
        assert_eq!(
            a.tuples().collect::<Vec<_>>(),
            b.tuples().collect::<Vec<_>>()
        );
        assert_eq!(ca, cb);
    }

    #[test]
    fn class_balance_is_plausible() {
        let (_, classes) = CensusDb::generate(10_000, 3);
        let positive = classes
            .iter()
            .filter(|&&c| c == IncomeClass::Above50K)
            .count();
        let rate = positive as f64 / classes.len() as f64;
        // UCI Adult is ~24% positive; accept a broad band.
        assert!((0.10..=0.45).contains(&rate), "positive rate {rate}");
    }

    #[test]
    fn education_correlates_with_income() {
        let (rel, classes) = CensusDb::generate(20_000, 3);
        let edu_attr = rel.schema().attr_id("Education").unwrap();
        let rate_for = |edus: &[&str]| {
            let mut pos = 0usize;
            let mut tot = 0usize;
            for (row, class) in rel.rows().zip(&classes) {
                let e = rel.value(row, edu_attr);
                if edus.iter().any(|&x| e.as_cat() == Some(x)) {
                    tot += 1;
                    pos += usize::from(*class == IncomeClass::Above50K);
                }
            }
            pos as f64 / tot.max(1) as f64
        };
        let high = rate_for(&["Masters", "Doctorate", "Prof-school"]);
        let low = rate_for(&["9th", "11th", "HS-grad"]);
        assert!(
            high > low + 0.2,
            "advanced degrees ({high:.2}) should out-earn HS ({low:.2})"
        );
    }

    #[test]
    fn hours_correlate_with_income() {
        let (rel, classes) = CensusDb::generate(20_000, 4);
        let hours_attr = rel.schema().attr_id("Hours-per-week").unwrap();
        let mut hi = (0.0, 0usize);
        let mut lo = (0.0, 0usize);
        for (row, class) in rel.rows().zip(&classes) {
            let h = rel.value(row, hours_attr).as_num().unwrap();
            if *class == IncomeClass::Above50K {
                hi = (hi.0 + h, hi.1 + 1);
            } else {
                lo = (lo.0 + h, lo.1 + 1);
            }
        }
        assert!(hi.0 / hi.1 as f64 > lo.0 / lo.1 as f64 + 2.0);
    }

    #[test]
    fn values_are_in_range() {
        let (rel, _) = CensusDb::generate(2000, 9);
        let s = rel.schema().clone();
        for t in rel.tuples() {
            let age = t.value(s.attr_id("Age").unwrap()).as_num().unwrap();
            assert!((17.0..=85.0).contains(&age));
            let hours = t
                .value(s.attr_id("Hours-per-week").unwrap())
                .as_num()
                .unwrap();
            assert!((5.0..=99.0).contains(&hours));
            let gain = t
                .value(s.attr_id("Capital-gain").unwrap())
                .as_num()
                .unwrap();
            assert!((0.0..=30_000.0).contains(&gain));
        }
    }

    #[test]
    fn married_men_are_husbands() {
        let (rel, _) = CensusDb::generate(3000, 2);
        let s = rel.schema().clone();
        for t in rel.tuples() {
            let marital = t.value(s.attr_id("Marital-Status").unwrap());
            let sex = t.value(s.attr_id("Sex").unwrap());
            let relationship = t.value(s.attr_id("Relationship").unwrap());
            if marital.as_cat() == Some("Married-civ-spouse") {
                let expected = if sex.as_cat() == Some("Male") {
                    "Husband"
                } else {
                    "Wife"
                };
                assert_eq!(relationship.as_cat(), Some(expected));
            }
        }
    }
}
