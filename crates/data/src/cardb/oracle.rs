//! Latent ground-truth similarity for CarDB tuples.
//!
//! The paper validated AIMQ's rankings against 8 human judges (Section
//! 6.4). Lacking humans, the harness simulates them: each simulated user
//! re-ranks a system's answers by this oracle plus personal noise. The
//! oracle reads the generator's *latent* variables (market segment) that
//! the mining pipeline never sees, so agreement between mined similarity
//! and the oracle is a non-trivial signal.

use aimq_catalog::{AttrId, Schema, Tuple, Value};

use super::specs::{ModelSpec, MODEL_CATALOG};
use super::Segment;

/// How much a used-car shopper weighs each aspect when judging whether
/// two cars are "similar". Chosen to reflect the paper's anecdote that
/// price matters more than color (Section 5.2).
const W_MODEL: f64 = 0.28;
const W_MAKE: f64 = 0.10;
const W_YEAR: f64 = 0.16;
const W_PRICE: f64 = 0.24;
const W_MILEAGE: f64 = 0.14;
const W_LOCATION: f64 = 0.04;
const W_COLOR: f64 = 0.04;

/// Ground-truth similarity between two CarDB tuples in `[0, 1]`.
///
/// `schema` must be [`CarDb::schema`](super::CarDb::schema) (attribute
/// positions are fixed: Make, Model, Year, Price, Mileage, Location,
/// Color). Null values contribute zero similarity on their attribute.
pub fn car_oracle_similarity(schema: &Schema, a: &Tuple, b: &Tuple) -> f64 {
    debug_assert_eq!(schema.arity(), 7);
    let make = |t: &Tuple| t.value(AttrId(0)).as_cat().map(str::to_owned);
    let model = |t: &Tuple| t.value(AttrId(1)).as_cat().map(str::to_owned);

    let model_sim = match (model(a), model(b)) {
        (Some(ma), Some(mb)) => model_similarity(&ma, &mb),
        _ => 0.0,
    };
    let make_sim = match (make(a), make(b)) {
        (Some(ka), Some(kb)) if ka == kb => 1.0,
        (Some(_), Some(_)) => 0.0,
        _ => 0.0,
    };
    let year_sim = year_similarity(a.value(AttrId(2)), b.value(AttrId(2)));
    let price_sim = relative_similarity(a.value(AttrId(3)), b.value(AttrId(3)));
    let mileage_sim = relative_similarity(a.value(AttrId(4)), b.value(AttrId(4)));
    let loc_sim = equality_similarity(a.value(AttrId(5)), b.value(AttrId(5)));
    let color_sim = equality_similarity(a.value(AttrId(6)), b.value(AttrId(6)));

    W_MODEL * model_sim
        + W_MAKE * make_sim
        + W_YEAR * year_sim
        + W_PRICE * price_sim
        + W_MILEAGE * mileage_sim
        + W_LOCATION * loc_sim
        + W_COLOR * color_sim
}

fn spec_of(model: &str) -> Option<&'static ModelSpec> {
    MODEL_CATALOG.iter().find(|m| m.model == model)
}

/// Latent model-to-model similarity: same model 1.0; same segment and
/// comparable price class 0.75; same segment 0.55; same make only 0.25;
/// otherwise 0.
fn model_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let (Some(sa), Some(sb)) = (spec_of(a), spec_of(b)) else {
        return 0.0;
    };
    if sa.segment == sb.segment {
        let ratio = (sa.base_price / sb.base_price).min(sb.base_price / sa.base_price);
        if ratio > 0.75 {
            0.75
        } else {
            0.55
        }
    } else if sa.make == sb.make {
        0.25
    } else if is_utility(sa.segment) && is_utility(sb.segment) {
        // Trucks/SUVs/vans overlap in buyers' eyes.
        0.3
    } else {
        0.0
    }
}

fn is_utility(s: Segment) -> bool {
    matches!(s, Segment::Suv | Segment::Truck | Segment::Van)
}

/// Year similarity: linear falloff, zero at a 10-year gap. CarDB stores
/// years as categorical strings.
fn year_similarity(a: &Value, b: &Value) -> f64 {
    let parse = |v: &Value| v.as_cat().and_then(|s| s.parse::<i32>().ok());
    match (parse(a), parse(b)) {
        (Some(ya), Some(yb)) => (1.0 - f64::from((ya - yb).abs()) / 10.0).max(0.0),
        _ => 0.0,
    }
}

/// Symmetric relative distance on positives: `1 − |a−b| / max(a,b)`.
fn relative_similarity(a: &Value, b: &Value) -> f64 {
    match (a.as_num(), b.as_num()) {
        (Some(x), Some(y)) if x.max(y) > 0.0 => 1.0 - (x - y).abs() / x.max(y),
        (Some(x), Some(y)) if x == y => 1.0,
        _ => 0.0,
    }
}

fn equality_similarity(a: &Value, b: &Value) -> f64 {
    if !a.is_null() && a == b {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::super::CarDb;
    use super::*;

    fn car(make: &str, model: &str, year: &str, price: f64, mileage: f64) -> Tuple {
        Tuple::new(
            &CarDb::schema(),
            vec![
                Value::cat(make),
                Value::cat(model),
                Value::cat(year),
                Value::num(price),
                Value::num(mileage),
                Value::cat("Phoenix"),
                Value::cat("White"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn identical_cars_score_one() {
        let s = CarDb::schema();
        let t = car("Toyota", "Camry", "2000", 10000.0, 60000.0);
        assert!((car_oracle_similarity(&s, &t, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn camry_accord_beats_camry_f350() {
        let s = CarDb::schema();
        let camry = car("Toyota", "Camry", "2000", 10000.0, 60000.0);
        let accord = car("Honda", "Accord", "2000", 10000.0, 60000.0);
        let f350 = car("Ford", "F-350", "2000", 10000.0, 60000.0);
        let sim_accord = car_oracle_similarity(&s, &camry, &accord);
        let sim_f350 = car_oracle_similarity(&s, &camry, &f350);
        assert!(sim_accord > sim_f350);
        assert!(sim_accord > 0.6);
    }

    #[test]
    fn price_gap_lowers_similarity() {
        let s = CarDb::schema();
        let a = car("Toyota", "Camry", "2000", 10000.0, 60000.0);
        let near = car("Toyota", "Camry", "2000", 10500.0, 60000.0);
        let far = car("Toyota", "Camry", "2000", 30000.0, 60000.0);
        assert!(car_oracle_similarity(&s, &a, &near) > car_oracle_similarity(&s, &a, &far));
    }

    #[test]
    fn year_falloff_is_linear_to_ten_years() {
        let s = CarDb::schema();
        let a = car("Toyota", "Camry", "2000", 10000.0, 60000.0);
        let b = car("Toyota", "Camry", "1995", 10000.0, 60000.0);
        let c = car("Toyota", "Camry", "1985", 10000.0, 60000.0);
        let sab = car_oracle_similarity(&s, &a, &b);
        let sac = car_oracle_similarity(&s, &a, &c);
        assert!(sab > sac);
        // 15-year gap saturates at zero year-similarity, same as 10-year.
        let d = car("Toyota", "Camry", "1990", 10000.0, 60000.0);
        let sad = car_oracle_similarity(&s, &a, &d);
        assert!(sac <= sad);
    }

    #[test]
    fn symmetric() {
        let s = CarDb::schema();
        let a = car("Kia", "Rio", "2001", 6000.0, 40000.0);
        let b = car("Hyundai", "Accent", "2000", 5500.0, 55000.0);
        assert!(
            (car_oracle_similarity(&s, &a, &b) - car_oracle_similarity(&s, &b, &a)).abs() < 1e-12
        );
    }

    #[test]
    fn utility_segments_have_affinity() {
        let s = CarDb::schema();
        let bronco = car("Ford", "Bronco", "1995", 8000.0, 90000.0);
        let aerostar = car("Ford", "Aerostar", "1995", 8000.0, 90000.0);
        let civic = car("Honda", "Civic", "1995", 8000.0, 90000.0);
        // SUV vs van (same make): more similar than SUV vs economy sedan.
        assert!(
            car_oracle_similarity(&s, &bronco, &aerostar)
                > car_oracle_similarity(&s, &bronco, &civic)
        );
    }

    #[test]
    fn unknown_models_fall_back_gracefully() {
        let s = CarDb::schema();
        let a = car("Toyota", "Camry", "2000", 10000.0, 60000.0);
        let weird = car("Toyota", "Unknown-Model", "2000", 10000.0, 60000.0);
        let sim = car_oracle_similarity(&s, &a, &weird);
        assert!((0.0..1.0).contains(&sim)); // no panic, partial credit
    }
}
