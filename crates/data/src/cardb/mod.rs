mod oracle;
mod specs;

pub use oracle::car_oracle_similarity;
pub use specs::Segment;

use aimq_catalog::{Schema, Tuple, Value};
use aimq_storage::Relation;
use rand::{RngExt, SeedableRng};

use specs::{ModelSpec, COLORS, LOCATIONS, MODEL_CATALOG};

/// Generator for the synthetic Yahoo-Autos stand-in.
///
/// The marginal and joint distributions are controlled by a latent model
/// (see the private `specs` catalog and the crate docs); everything is a pure function of
/// the seed, so every experiment in the harness is reproducible.
pub struct CarDb;

impl CarDb {
    /// The paper's relation: `CarDB(Make, Model, Year, Price, Mileage,
    /// Location, Color)`. As in the paper (Section 6.1), `Make`, `Model`,
    /// `Year`, `Location` and `Color` are categorical; `Price` and
    /// `Mileage` are numeric.
    pub fn schema() -> Schema {
        Schema::builder("CarDB")
            .categorical("Make")
            .categorical("Model")
            .categorical("Year")
            .numeric("Price")
            .numeric("Mileage")
            .categorical("Location")
            .categorical("Color")
            .build()
            .expect("static schema is valid")
    }

    /// Generate `n` tuples with the given seed.
    pub fn generate(n: usize, seed: u64) -> Relation {
        let schema = Self::schema();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let picker = WeightedPicker::new(MODEL_CATALOG.iter().map(|m| m.popularity));
        let location_picker = WeightedPicker::new(LOCATIONS.iter().map(|&(_, w)| w));

        let mut builder = Relation::builder(schema.clone());
        for _ in 0..n {
            let spec = &MODEL_CATALOG[picker.pick(&mut rng)];
            let tuple = Self::generate_tuple(&schema, spec, &location_picker, &mut rng);
            builder
                .push(&tuple)
                .expect("generated tuple matches schema");
        }
        builder.build()
    }

    fn generate_tuple(
        schema: &Schema,
        spec: &ModelSpec,
        location_picker: &WeightedPicker,
        rng: &mut rand::rngs::StdRng,
    ) -> Tuple {
        // Year skews recent: quadratic weight over 1984..=2005.
        let year_offset = {
            let u: f64 = rng.random();
            (u.sqrt() * 22.0).floor() as i32 // 0..=21, denser near 21
        };
        let year = 1984 + year_offset.min(21);
        let age = (2006 - year).max(1) as f64;

        // Mileage grows with age: ~12k miles/year with spread, floor 0.
        let miles_per_year = 9_000.0 + 6_000.0 * rng.random::<f64>();
        let mileage = (age * miles_per_year * (0.85 + 0.3 * rng.random::<f64>()))
            .max(500.0)
            .round()
            / 100.0;
        let mileage = mileage.round() * 100.0;

        // Price: segment base, exponential depreciation with age, mileage
        // penalty, multiplicative noise.
        let depreciation = 0.88f64.powf(age);
        let mileage_factor = (1.0 - mileage / 400_000.0).max(0.55);
        let noise = 0.9 + 0.2 * rng.random::<f64>();
        let price = (spec.base_price * depreciation * mileage_factor * noise)
            .max(400.0)
            .round()
            / 50.0;
        let price = price.round() * 50.0;

        let location = LOCATIONS[location_picker.pick(rng)].0;
        let color = pick_color(spec.segment, rng);

        Tuple::new(
            schema,
            vec![
                Value::cat(spec.make),
                Value::cat(spec.model),
                Value::cat(year.to_string()),
                Value::num(price),
                Value::num(mileage),
                Value::cat(location),
                Value::cat(color),
            ],
        )
        .expect("generator respects schema domains")
    }

    /// All makes in the catalog — the spanning-query values for the
    /// probing Data Collector (`Make` is the natural Web-form select box).
    pub fn spanning_makes() -> Vec<String> {
        let mut makes: Vec<String> = MODEL_CATALOG.iter().map(|m| m.make.to_owned()).collect();
        makes.sort();
        makes.dedup();
        makes
    }

    /// The latent segment of a model, if the model is in the catalog.
    /// Only the evaluation oracle uses this — AIMQ never sees it.
    pub fn segment_of(model: &str) -> Option<Segment> {
        MODEL_CATALOG
            .iter()
            .find(|m| m.model == model)
            .map(|m| m.segment)
    }

    /// The catalog's (make, model) pairs, for tests and workload builders.
    pub fn catalog() -> impl Iterator<Item = (&'static str, &'static str, Segment)> {
        MODEL_CATALOG.iter().map(|m| (m.make, m.model, m.segment))
    }
}

/// Segment-conditioned color choice: sports cars skew red/yellow, luxury
/// skews black/silver, everything else follows a common palette.
fn pick_color(segment: Segment, rng: &mut rand::rngs::StdRng) -> &'static str {
    let boost: &[(&str, f64)] = match segment {
        Segment::Sports => &[("Red", 3.0), ("Yellow", 2.0), ("Black", 1.5)],
        Segment::Luxury => &[("Black", 3.0), ("Silver", 2.5)],
        Segment::Truck => &[("White", 2.0), ("Black", 1.5)],
        _ => &[],
    };
    let weights: Vec<f64> = COLORS
        .iter()
        .map(|&(color, w)| {
            let extra = boost
                .iter()
                .find(|&&(c, _)| c == color)
                .map_or(1.0, |&(_, b)| b);
            w * extra
        })
        .collect();
    let picker = WeightedPicker::new(weights);
    COLORS[picker.pick(rng)].0
}

/// Cumulative-weight sampler (binary search over prefix sums).
struct WeightedPicker {
    cumulative: Vec<f64>,
}

impl WeightedPicker {
    fn new(weights: impl IntoIterator<Item = f64>) -> Self {
        let mut cumulative = Vec::new();
        let mut acc = 0.0;
        for w in weights {
            debug_assert!(w >= 0.0);
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        WeightedPicker { cumulative }
    }

    fn pick(&self, rng: &mut impl RngExt) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.random::<f64>() * total;
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_catalog::AttrId;
    use std::collections::HashMap;

    #[test]
    fn schema_matches_paper() {
        let s = CarDb::schema();
        assert_eq!(s.arity(), 7);
        assert_eq!(s.attr_name(AttrId(0)), "Make");
        assert_eq!(s.attr_name(AttrId(3)), "Price");
        assert_eq!(s.categorical_attrs().len(), 5);
        assert_eq!(s.numeric_attrs().len(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CarDb::generate(200, 11);
        let b = CarDb::generate(200, 11);
        let c = CarDb::generate(200, 12);
        assert_eq!(
            a.tuples().collect::<Vec<_>>(),
            b.tuples().collect::<Vec<_>>()
        );
        assert_ne!(
            a.tuples().collect::<Vec<_>>(),
            c.tuples().collect::<Vec<_>>()
        );
    }

    #[test]
    fn model_functionally_determines_make() {
        let r = CarDb::generate(3000, 5);
        let mut seen: HashMap<String, String> = HashMap::new();
        for t in r.tuples() {
            let make = t.value(AttrId(0)).as_cat().unwrap().to_owned();
            let model = t.value(AttrId(1)).as_cat().unwrap().to_owned();
            if let Some(prev) = seen.insert(model.clone(), make.clone()) {
                assert_eq!(prev, make, "model {model} maps to two makes");
            }
        }
    }

    #[test]
    fn prices_and_mileage_are_plausible() {
        let r = CarDb::generate(2000, 5);
        for t in r.tuples() {
            let price = t.value(AttrId(3)).as_num().unwrap();
            let mileage = t.value(AttrId(4)).as_num().unwrap();
            let year: i32 = t.value(AttrId(2)).as_cat().unwrap().parse().unwrap();
            assert!((400.0..=120_000.0).contains(&price), "price {price}");
            assert!((0.0..=500_000.0).contains(&mileage), "mileage {mileage}");
            assert!((1984..=2005).contains(&year), "year {year}");
        }
    }

    #[test]
    fn old_cars_are_cheaper_on_average_per_model() {
        let r = CarDb::generate(20_000, 5);
        // Average Camry price for 1986-1990 vs 2001-2005.
        let mut old = (0.0, 0);
        let mut new = (0.0, 0);
        for t in r.tuples() {
            if t.value(AttrId(1)).as_cat() != Some("Camry") {
                continue;
            }
            let year: i32 = t.value(AttrId(2)).as_cat().unwrap().parse().unwrap();
            let price = t.value(AttrId(3)).as_num().unwrap();
            if (1986..=1992).contains(&year) {
                old = (old.0 + price, old.1 + 1);
            } else if (2000..=2005).contains(&year) {
                new = (new.0 + price, new.1 + 1);
            }
        }
        assert!(old.1 > 0 && new.1 > 0, "need both eras in sample");
        assert!(old.0 / old.1 as f64 * 1.5 < new.0 / new.1 as f64);
    }

    #[test]
    fn paper_values_exist_in_catalog() {
        // Table 3 / Figure 5 reference these values; the generator must be
        // able to produce them.
        let catalog: Vec<(&str, &str)> = CarDb::catalog().map(|(mk, md, _)| (mk, md)).collect();
        for make in [
            "Ford",
            "Chevrolet",
            "Toyota",
            "Honda",
            "Dodge",
            "Nissan",
            "BMW",
            "Kia",
            "Hyundai",
            "Isuzu",
            "Subaru",
        ] {
            assert!(
                catalog.iter().any(|&(mk, _)| mk == make),
                "missing make {make}"
            );
        }
        for model in [
            "Bronco",
            "Aerostar",
            "F-350",
            "Econoline Van",
            "Camry",
            "Accord",
            "Focus",
            "ZX2",
            "F150",
        ] {
            assert!(
                catalog.iter().any(|&(_, md)| md == model),
                "missing model {model}"
            );
        }
    }

    #[test]
    fn spanning_makes_cover_generated_data() {
        let r = CarDb::generate(5000, 9);
        let makes = CarDb::spanning_makes();
        for t in r.tuples() {
            let mk = t.value(AttrId(0)).as_cat().unwrap();
            assert!(makes.iter().any(|m| m == mk));
        }
    }

    #[test]
    fn years_skew_recent() {
        let r = CarDb::generate(20_000, 3);
        let recent = r
            .tuples()
            .filter(|t| t.value(AttrId(2)).as_cat().unwrap().parse::<i32>().unwrap() >= 1999)
            .count();
        // Quadratic skew: more than a uniform share in the last 7 of 22 years.
        assert!(recent as f64 > 0.4 * 20_000.0, "recent={recent}");
    }

    #[test]
    fn weighted_picker_respects_weights() {
        let picker = WeightedPicker::new([1.0, 0.0, 9.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[picker.pick(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn segment_lookup() {
        assert_eq!(CarDb::segment_of("Camry"), Some(Segment::Sedan));
        assert_eq!(CarDb::segment_of("F150"), Some(Segment::Truck));
        assert_eq!(CarDb::segment_of("NotACar"), None);
    }
}
