//! Static catalog backing the CarDB generator: real-world model lines
//! with a latent market segment and a new-car base price. The catalog is
//! chosen so every make/model the paper's tables and figures mention
//! (Kia, Hyundai, Isuzu, Subaru; Bronco, Aerostar, F-350, Econoline Van,
//! ...) exists and so that intra-segment models genuinely co-occur with
//! similar price/mileage buckets — the signal AIMQ's similarity miner is
//! supposed to pick up.

/// Latent market segment of a model line. Drives pricing and the
/// ground-truth oracle; invisible to the mining pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Small, cheap commuter cars.
    Economy,
    /// Mid-size family sedans.
    Sedan,
    /// Premium/luxury cars.
    Luxury,
    /// Two-door performance cars.
    Sports,
    /// Sport-utility vehicles.
    Suv,
    /// Pickup trucks.
    Truck,
    /// Minivans and full-size vans.
    Van,
}

/// A model line in the catalog.
#[derive(Debug, Clone, Copy)]
pub struct ModelSpec {
    pub make: &'static str,
    pub model: &'static str,
    pub segment: Segment,
    /// Price of the car when new, in dollars.
    pub base_price: f64,
    /// Relative sampling weight.
    pub popularity: f64,
}

const fn m(
    make: &'static str,
    model: &'static str,
    segment: Segment,
    base_price: f64,
    popularity: f64,
) -> ModelSpec {
    ModelSpec {
        make,
        model,
        segment,
        base_price,
        popularity,
    }
}

use Segment::*;

/// The full model catalog (~100 model lines over 25 makes).
pub static MODEL_CATALOG: &[ModelSpec] = &[
    // Toyota
    m("Toyota", "Camry", Sedan, 21000.0, 9.0),
    m("Toyota", "Corolla", Economy, 14500.0, 8.0),
    m("Toyota", "Avalon", Sedan, 27000.0, 3.0),
    m("Toyota", "Celica", Sports, 22000.0, 2.0),
    m("Toyota", "4Runner", Suv, 28000.0, 4.0),
    m("Toyota", "Tacoma", Truck, 19000.0, 4.0),
    m("Toyota", "Sienna", Van, 24000.0, 3.0),
    m("Toyota", "Land Cruiser", Suv, 47000.0, 1.0),
    // Honda
    m("Honda", "Accord", Sedan, 20500.0, 9.0),
    m("Honda", "Civic", Economy, 14000.0, 8.5),
    m("Honda", "Prelude", Sports, 24000.0, 1.5),
    m("Honda", "CR-V", Suv, 20000.0, 4.0),
    m("Honda", "Odyssey", Van, 25000.0, 3.0),
    m("Honda", "Passport", Suv, 24000.0, 1.5),
    // Ford
    m("Ford", "Taurus", Sedan, 19000.0, 7.0),
    m("Ford", "Focus", Economy, 13500.0, 6.0),
    m("Ford", "ZX2", Economy, 12500.0, 2.0),
    m("Ford", "Escort", Economy, 12000.0, 4.0),
    m("Ford", "Mustang", Sports, 21000.0, 4.0),
    m("Ford", "F150", Truck, 22000.0, 7.0),
    m("Ford", "F-350", Truck, 30000.0, 2.0),
    m("Ford", "Ranger", Truck, 16000.0, 4.0),
    m("Ford", "Bronco", Suv, 26000.0, 2.0),
    m("Ford", "Explorer", Suv, 26000.0, 5.0),
    m("Ford", "Aerostar", Van, 20000.0, 2.0),
    m("Ford", "Econoline Van", Van, 23000.0, 2.0),
    m("Ford", "Windstar", Van, 22000.0, 2.5),
    // Chevrolet
    m("Chevrolet", "Impala", Sedan, 20000.0, 5.0),
    m("Chevrolet", "Malibu", Sedan, 17500.0, 5.0),
    m("Chevrolet", "Cavalier", Economy, 13000.0, 5.0),
    m("Chevrolet", "Camaro", Sports, 21500.0, 3.0),
    m("Chevrolet", "Silverado", Truck, 23000.0, 6.0),
    m("Chevrolet", "S-10", Truck, 15500.0, 3.0),
    m("Chevrolet", "Blazer", Suv, 24000.0, 3.5),
    m("Chevrolet", "Suburban", Suv, 33000.0, 2.5),
    m("Chevrolet", "Astro", Van, 21000.0, 2.0),
    // Dodge
    m("Dodge", "Intrepid", Sedan, 19500.0, 3.5),
    m("Dodge", "Stratus", Sedan, 17000.0, 3.0),
    m("Dodge", "Neon", Economy, 12500.0, 4.0),
    m("Dodge", "Ram", Truck, 22500.0, 5.0),
    m("Dodge", "Dakota", Truck, 17500.0, 3.0),
    m("Dodge", "Durango", Suv, 26500.0, 2.5),
    m("Dodge", "Caravan", Van, 21000.0, 4.5),
    // Nissan
    m("Nissan", "Altima", Sedan, 18500.0, 5.0),
    m("Nissan", "Maxima", Sedan, 23500.0, 3.5),
    m("Nissan", "Sentra", Economy, 13500.0, 4.5),
    m("Nissan", "300ZX", Sports, 33000.0, 1.0),
    m("Nissan", "Pathfinder", Suv, 27000.0, 3.0),
    m("Nissan", "Frontier", Truck, 17000.0, 2.5),
    m("Nissan", "Quest", Van, 22500.0, 1.5),
    // BMW
    m("BMW", "325i", Luxury, 29000.0, 2.5),
    m("BMW", "525i", Luxury, 38000.0, 1.8),
    m("BMW", "740i", Luxury, 62000.0, 0.8),
    m("BMW", "Z3", Sports, 33000.0, 1.0),
    m("BMW", "X5", Luxury, 49000.0, 1.2),
    // Kia
    m("Kia", "Sephia", Economy, 11000.0, 2.0),
    m("Kia", "Rio", Economy, 9500.0, 2.0),
    m("Kia", "Spectra", Economy, 11500.0, 1.5),
    m("Kia", "Sportage", Suv, 16500.0, 1.5),
    // Hyundai
    m("Hyundai", "Accent", Economy, 10000.0, 2.5),
    m("Hyundai", "Elantra", Economy, 12000.0, 3.0),
    m("Hyundai", "Sonata", Sedan, 16000.0, 2.5),
    m("Hyundai", "Tiburon", Sports, 15500.0, 1.0),
    // Isuzu
    m("Isuzu", "Rodeo", Suv, 20500.0, 1.8),
    m("Isuzu", "Trooper", Suv, 26000.0, 1.2),
    m("Isuzu", "Amigo", Suv, 17000.0, 0.8),
    m("Isuzu", "Hombre", Truck, 14500.0, 0.7),
    // Subaru
    m("Subaru", "Legacy", Sedan, 18500.0, 2.5),
    m("Subaru", "Impreza", Economy, 16000.0, 2.0),
    m("Subaru", "Outback", Suv, 22500.0, 2.5),
    m("Subaru", "Forester", Suv, 20500.0, 2.0),
    // Mercedes-Benz
    m("Mercedes-Benz", "C230", Luxury, 31000.0, 1.5),
    m("Mercedes-Benz", "E320", Luxury, 48000.0, 1.2),
    m("Mercedes-Benz", "S500", Luxury, 78000.0, 0.5),
    // Volkswagen
    m("Volkswagen", "Jetta", Economy, 16500.0, 4.0),
    m("Volkswagen", "Passat", Sedan, 21500.0, 2.5),
    m("Volkswagen", "Golf", Economy, 15000.0, 2.0),
    m("Volkswagen", "Beetle", Economy, 16000.0, 2.0),
    // Mazda
    m("Mazda", "626", Sedan, 17500.0, 2.5),
    m("Mazda", "Protege", Economy, 13000.0, 2.5),
    m("Mazda", "Miata", Sports, 21000.0, 1.5),
    m("Mazda", "MPV", Van, 21500.0, 1.5),
    m("Mazda", "B-Series", Truck, 15000.0, 1.2),
    // Mitsubishi
    m("Mitsubishi", "Galant", Sedan, 17500.0, 2.5),
    m("Mitsubishi", "Mirage", Economy, 11500.0, 1.5),
    m("Mitsubishi", "Eclipse", Sports, 19500.0, 2.0),
    m("Mitsubishi", "Montero", Suv, 28000.0, 1.2),
    // Saturn
    m("Saturn", "SL2", Economy, 13000.0, 2.5),
    m("Saturn", "SC1", Economy, 13500.0, 1.2),
    // Volvo
    m("Volvo", "S70", Luxury, 28500.0, 1.5),
    m("Volvo", "V70", Luxury, 31000.0, 1.2),
    m("Volvo", "850", Luxury, 27000.0, 1.0),
    // Audi
    m("Audi", "A4", Luxury, 28000.0, 1.8),
    m("Audi", "A6", Luxury, 36000.0, 1.2),
    // Jeep
    m("Jeep", "Wrangler", Suv, 18500.0, 3.0),
    m("Jeep", "Cherokee", Suv, 21500.0, 3.5),
    m("Jeep", "Grand Cherokee", Suv, 28000.0, 3.5),
    // Lexus
    m("Lexus", "ES300", Luxury, 32000.0, 1.5),
    m("Lexus", "RX300", Luxury, 35000.0, 1.5),
    // GMC
    m("GMC", "Sierra", Truck, 23500.0, 3.0),
    m("GMC", "Jimmy", Suv, 23000.0, 1.5),
    m("GMC", "Safari", Van, 21500.0, 1.0),
    // Mercury
    m("Mercury", "Sable", Sedan, 19500.0, 2.0),
    m("Mercury", "Cougar", Sports, 17500.0, 1.2),
    m("Mercury", "Villager", Van, 22000.0, 1.0),
    // Buick
    m("Buick", "LeSabre", Sedan, 23000.0, 2.5),
    m("Buick", "Century", Sedan, 20000.0, 2.0),
    m("Buick", "Regal", Sedan, 21500.0, 1.8),
    // Pontiac
    m("Pontiac", "Grand Am", Sedan, 17000.0, 3.0),
    m("Pontiac", "Firebird", Sports, 21500.0, 1.8),
    m("Pontiac", "Sunfire", Economy, 13500.0, 2.0),
];

/// Listing locations with sampling weights (~100 US cities, skewed
/// toward large metros). City-level granularity matters: it keeps the
/// relation *sparse* along Location, as the paper's Yahoo Autos crawl
/// was, so arbitrary (random) query relaxations genuinely pay a price.
pub static LOCATIONS: &[(&str, f64)] = &[
    ("New York", 8.0),
    ("Los Angeles", 7.5),
    ("Chicago", 6.0),
    ("Houston", 5.5),
    ("Phoenix", 5.0),
    ("Philadelphia", 4.5),
    ("San Antonio", 4.0),
    ("San Diego", 4.0),
    ("Dallas", 4.5),
    ("San Jose", 3.5),
    ("Austin", 3.5),
    ("Jacksonville", 2.8),
    ("Fort Worth", 2.8),
    ("Columbus", 2.7),
    ("Charlotte", 2.7),
    ("San Francisco", 3.5),
    ("Indianapolis", 2.6),
    ("Seattle", 3.4),
    ("Denver", 3.2),
    ("Washington", 3.4),
    ("Boston", 3.2),
    ("El Paso", 2.0),
    ("Nashville", 2.4),
    ("Detroit", 2.8),
    ("Oklahoma City", 2.0),
    ("Portland", 2.6),
    ("Las Vegas", 2.6),
    ("Memphis", 2.0),
    ("Louisville", 1.9),
    ("Baltimore", 2.2),
    ("Milwaukee", 1.9),
    ("Albuquerque", 1.7),
    ("Tucson", 1.7),
    ("Fresno", 1.6),
    ("Sacramento", 2.0),
    ("Kansas City", 1.9),
    ("Mesa", 1.5),
    ("Atlanta", 2.8),
    ("Omaha", 1.5),
    ("Colorado Springs", 1.5),
    ("Raleigh", 1.7),
    ("Miami", 2.6),
    ("Virginia Beach", 1.5),
    ("Oakland", 1.7),
    ("Minneapolis", 2.2),
    ("Tulsa", 1.4),
    ("Arlington", 1.3),
    ("Tampa", 1.9),
    ("New Orleans", 1.7),
    ("Wichita", 1.3),
    ("Cleveland", 1.8),
    ("Bakersfield", 1.2),
    ("Aurora", 1.1),
    ("Anaheim", 1.2),
    ("Honolulu", 1.2),
    ("Santa Ana", 1.1),
    ("Riverside", 1.2),
    ("Corpus Christi", 1.1),
    ("Lexington", 1.1),
    ("Stockton", 1.0),
    ("Henderson", 1.0),
    ("Saint Paul", 1.1),
    ("St. Louis", 1.8),
    ("Cincinnati", 1.5),
    ("Pittsburgh", 1.7),
    ("Greensboro", 1.0),
    ("Anchorage", 0.8),
    ("Plano", 1.0),
    ("Lincoln", 0.9),
    ("Orlando", 1.6),
    ("Irvine", 1.0),
    ("Newark", 1.1),
    ("Toledo", 0.9),
    ("Durham", 1.0),
    ("Chula Vista", 0.9),
    ("Fort Wayne", 0.9),
    ("Jersey City", 1.0),
    ("St. Petersburg", 1.0),
    ("Laredo", 0.8),
    ("Madison", 1.0),
    ("Chandler", 0.9),
    ("Buffalo", 1.1),
    ("Lubbock", 0.8),
    ("Scottsdale", 0.9),
    ("Reno", 0.9),
    ("Glendale", 0.8),
    ("Gilbert", 0.8),
    ("Winston-Salem", 0.8),
    ("North Las Vegas", 0.8),
    ("Norfolk", 0.9),
    ("Chesapeake", 0.8),
    ("Garland", 0.8),
    ("Irving", 0.8),
    ("Hialeah", 0.8),
    ("Fremont", 0.8),
    ("Boise", 0.9),
    ("Richmond", 1.0),
    ("Baton Rouge", 0.9),
    ("Spokane", 0.9),
    ("Des Moines", 0.9),
    ("Tacoma", 0.8),
    ("San Bernardino", 0.8),
];

/// Exterior colors with base weights.
pub static COLORS: &[(&str, f64)] = &[
    ("White", 8.0),
    ("Black", 7.0),
    ("Silver", 7.0),
    ("Gray", 5.0),
    ("Blue", 5.0),
    ("Red", 5.0),
    ("Green", 3.5),
    ("Tan", 2.5),
    ("Gold", 2.0),
    ("Maroon", 1.8),
    ("Yellow", 0.8),
    ("Orange", 0.5),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_well_formed() {
        assert!(MODEL_CATALOG.len() >= 100);
        for spec in MODEL_CATALOG {
            assert!(spec.base_price > 5_000.0, "{} too cheap", spec.model);
            assert!(spec.base_price < 100_000.0);
            assert!(spec.popularity > 0.0);
            assert!(!spec.make.is_empty() && !spec.model.is_empty());
        }
    }

    #[test]
    fn models_are_unique() {
        let mut models: Vec<&str> = MODEL_CATALOG.iter().map(|s| s.model).collect();
        models.sort_unstable();
        let before = models.len();
        models.dedup();
        assert_eq!(
            models.len(),
            before,
            "duplicate model names break the Model→Make FD"
        );
    }

    #[test]
    fn every_segment_is_represented() {
        for seg in [
            Segment::Economy,
            Segment::Sedan,
            Segment::Luxury,
            Segment::Sports,
            Segment::Suv,
            Segment::Truck,
            Segment::Van,
        ] {
            assert!(
                MODEL_CATALOG.iter().any(|s| s.segment == seg),
                "no model in segment {seg:?}"
            );
        }
    }

    #[test]
    fn luxury_costs_more_than_economy_on_average() {
        let avg = |seg: Segment| {
            let xs: Vec<f64> = MODEL_CATALOG
                .iter()
                .filter(|s| s.segment == seg)
                .map(|s| s.base_price)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(avg(Segment::Luxury) > 2.0 * avg(Segment::Economy));
    }

    #[test]
    fn location_and_color_tables_nonempty_with_positive_weights() {
        assert!(LOCATIONS.len() >= 20);
        assert!(COLORS.len() >= 10);
        assert!(LOCATIONS.iter().all(|&(_, w)| w > 0.0));
        assert!(COLORS.iter().all(|&(_, w)| w > 0.0));
    }
}
