#![warn(missing_docs)]

//! # aimq-data
//!
//! Seeded synthetic dataset generators standing in for the two real-life
//! corpora of the AIMQ paper's evaluation:
//!
//! * **CarDB** — the paper extracted 100,000 used-car tuples from Yahoo
//!   Autos projecting `CarDB(Make, Model, Year, Price, Mileage, Location,
//!   Color)`. [`CarDb`] generates an arbitrarily large relation from a
//!   catalog of ~100 real-world model lines with a latent pricing model:
//!   `Model` functionally determines `Make`; `Price` is driven by the
//!   model's segment, its year and its mileage; `Mileage` grows with age.
//!   That plants exactly the dependency structure the paper reports
//!   mining (Model least dependent / most deciding, Make most dependent,
//!   a compact high-quality approximate key) while remaining honest: the
//!   mining pipeline never sees the latent variables.
//!
//! * **CensusDB** — the paper used 45,000 tuples of the UCI Adult/Census
//!   dataset with 13 attributes. [`CensusDb`] generates demographically
//!   plausible person records whose income class (`>50K` / `<=50K`) is a
//!   noisy function of education, occupation, age, hours-per-week and
//!   capital gains. The class labels are returned *separately* from the
//!   relation, mirroring the paper's protocol ("Since tuples were
//!   pre-classified, we can safely assume that tuples belonging to same
//!   class are more similar", Section 6.5).
//!
//! Both generators also expose a **latent ground-truth similarity
//! oracle** ([`car_oracle_similarity`]) used by the evaluation harness to
//! simulate the paper's user study (Section 6.4): simulated users re-rank
//! system answers by oracle similarity plus personal noise. The oracle is
//! *never* visible to AIMQ or ROCK.

mod cardb;
mod census;

pub use cardb::{car_oracle_similarity, CarDb, Segment};
pub use census::{CensusDb, IncomeClass};
