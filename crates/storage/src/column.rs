use aimq_catalog::Value;
use serde::{Deserialize, Serialize};

use crate::Dictionary;

/// Sentinel dictionary code representing SQL NULL in categorical columns.
/// Numeric columns use `NaN` for the same purpose.
pub const NULL_CODE: u32 = u32::MAX;

/// A typed column of a [`Relation`](crate::Relation).
///
/// Categorical columns are dictionary-encoded; all mining algorithms work
/// on the `u32` codes and only translate back to strings at presentation
/// time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Column {
    /// Dictionary-encoded strings; `NULL_CODE` marks nulls.
    Categorical {
        /// One code per row.
        codes: Vec<u32>,
        /// The code ↔ string mapping.
        dict: Dictionary,
    },
    /// Raw numerics; `NaN` marks nulls.
    Numeric(Vec<f64>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Categorical { codes, .. } => codes.len(),
            Column::Numeric(vs) => vs.len(),
        }
    }

    /// `true` when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode row `row` into an owned [`Value`].
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Categorical { codes, dict } => {
                // `NULL_CODE` falls outside every dictionary, so nulls and
                // (would-be corruption) codes the builder never interned
                // both decode to null instead of panicking.
                dict.value_of(codes[row]).map_or(Value::Null, Value::cat) // aimq-lint: allow(indexing) -- row < n_rows: the relation hands out only its own row range
            }
            Column::Numeric(vs) => {
                let v = vs[row]; // aimq-lint: allow(indexing) -- row < n_rows: the relation hands out only its own row range
                if v.is_nan() {
                    Value::Null
                } else {
                    Value::Num(v)
                }
            }
        }
    }

    /// Dictionary code at `row` (categorical columns only).
    pub fn code(&self, row: usize) -> Option<u32> {
        match self {
            Column::Categorical { codes, .. } => {
                let c = codes[row]; // aimq-lint: allow(indexing) -- row < n_rows: the relation hands out only its own row range
                (c != NULL_CODE).then_some(c)
            }
            Column::Numeric(_) => None,
        }
    }

    /// Numeric value at `row` (numeric columns only, `None` for null).
    pub fn num(&self, row: usize) -> Option<f64> {
        match self {
            Column::Numeric(vs) => {
                let v = vs[row]; // aimq-lint: allow(indexing) -- row < n_rows: the relation hands out only its own row range
                (!v.is_nan()).then_some(v)
            }
            Column::Categorical { .. } => None,
        }
    }

    /// The dictionary backing a categorical column.
    pub fn dictionary(&self) -> Option<&Dictionary> {
        match self {
            Column::Categorical { dict, .. } => Some(dict),
            Column::Numeric(_) => None,
        }
    }

    /// Raw code vector of a categorical column.
    pub fn codes(&self) -> Option<&[u32]> {
        match self {
            Column::Categorical { codes, .. } => Some(codes),
            Column::Numeric(_) => None,
        }
    }

    /// Raw numeric vector of a numeric column.
    pub fn numbers(&self) -> Option<&[f64]> {
        match self {
            Column::Numeric(vs) => Some(vs),
            Column::Categorical { .. } => None,
        }
    }

    /// Number of distinct non-null values in the column.
    pub fn distinct_count(&self) -> usize {
        match self {
            Column::Categorical { dict, .. } => dict.len(),
            Column::Numeric(vs) => {
                let mut sorted: Vec<u64> = vs
                    .iter()
                    .filter(|v| !v.is_nan())
                    .map(|v| v.to_bits())
                    .collect();
                sorted.sort_unstable();
                sorted.dedup();
                sorted.len()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat_column(values: &[&str]) -> Column {
        let mut dict = Dictionary::new();
        let codes = values.iter().map(|v| dict.intern(v)).collect();
        Column::Categorical { codes, dict }
    }

    #[test]
    fn categorical_round_trip() {
        let c = cat_column(&["Ford", "Toyota", "Ford"]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(0), Value::cat("Ford"));
        assert_eq!(c.value(1), Value::cat("Toyota"));
        assert_eq!(c.code(0), c.code(2));
        assert_ne!(c.code(0), c.code(1));
        assert_eq!(c.distinct_count(), 2);
    }

    #[test]
    fn categorical_null_sentinel() {
        let mut dict = Dictionary::new();
        dict.intern("Ford");
        let c = Column::Categorical {
            codes: vec![0, NULL_CODE],
            dict,
        };
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.code(1), None);
    }

    #[test]
    fn numeric_round_trip_and_nan_null() {
        let c = Column::Numeric(vec![1.0, f64::NAN, 3.0, 1.0]);
        assert_eq!(c.value(0), Value::num(1.0));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.num(1), None);
        assert_eq!(c.num(2), Some(3.0));
        assert_eq!(c.distinct_count(), 2);
    }

    #[test]
    fn typed_accessors_return_none_cross_type() {
        let c = cat_column(&["x"]);
        assert_eq!(c.num(0), None);
        assert!(c.numbers().is_none());
        let n = Column::Numeric(vec![1.0]);
        assert_eq!(n.code(0), None);
        assert!(n.codes().is_none());
        assert!(n.dictionary().is_none());
    }
}
