use std::fmt;

use aimq_catalog::{AttrId, CatalogError, Predicate, SelectionQuery};
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{QueryError, Relation, WebDatabase};

/// Why a spanning-probe sampling pass failed.
///
/// A probe error is *typed and loud*: a sampling pass that loses probes
/// mid-run must not pass off a short sample as a representative one —
/// AIMQ's mined statistics would silently skew. Callers that want to ride
/// through transient faults wrap the source in
/// [`crate::ResilientWebDb`] before sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeError {
    /// The spanning attribute does not exist in the source schema.
    Catalog(CatalogError),
    /// A probe query failed at the source after any client-side retries.
    Source {
        /// Index of the failing probe within the shuffled probe order.
        probe_index: usize,
        /// The spanning value whose probe failed.
        value: String,
        /// The underlying source failure.
        error: QueryError,
    },
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::Catalog(e) => write!(f, "{e}"),
            ProbeError::Source {
                probe_index,
                value,
                error,
            } => write!(f, "probe #{probe_index} (value `{value}`) failed: {error}"),
        }
    }
}

impl std::error::Error for ProbeError {}

impl From<CatalogError> for ProbeError {
    fn from(e: CatalogError) -> Self {
        ProbeError::Catalog(e)
    }
}

/// Draw a sample of about `target` tuples from an autonomous source using
/// *spanning probe queries* — the paper's Data Collector (Section 6.2: "we
/// select the probing queries from a set of spanning queries, i.e. queries
/// which together cover all the tuples stored in the data sources").
///
/// The prober enumerates the value domain of `spanning_attr` by probing the
/// source one equality query per value (the attribute's Web-form select-box
/// options, in the real deployment the paper describes), shuffles the probe
/// order with `seed`, and keeps issuing probes until `target` tuples have
/// been collected. Because each tuple binds exactly one value of the
/// spanning attribute, the union of all probes covers the relation and no
/// tuple is collected twice.
///
/// The prober talks to the source through the fallible
/// [`WebDatabase::try_query`] interface and does **no retrying of its
/// own**: any [`QueryError`] aborts the pass with a typed
/// [`ProbeError::Source`] rather than returning a silently short sample.
/// Truncated pages are tolerated — their tuples are genuine, coverage is
/// merely reduced — and show up in the source's
/// [`crate::AccessStats::truncated_queries`] meter.
///
/// Returns a [`Relation`] built from the probed tuples (at most `target`,
/// fewer when the source is smaller).
// aimq-probe: entry -- offline sampling walk (Section 3.1); caller bounds work via `target`, failures surface as ProbeError::Source
pub fn probe_by_spanning_queries(
    db: &dyn WebDatabase,
    spanning_attr: AttrId,
    spanning_values: &[String],
    target: usize,
    seed: u64,
) -> Result<Relation, ProbeError> {
    let schema = db.schema().clone();
    schema.attribute(spanning_attr)?;

    let mut order: Vec<&String> = spanning_values.iter().collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut builder = Relation::builder(schema);
    'probe: for (probe_index, value) in order.into_iter().enumerate() {
        let q = SelectionQuery::new(vec![Predicate::eq(
            spanning_attr,
            aimq_catalog::Value::cat(value.clone()),
        )]);
        let page = db.try_query(&q).map_err(|error| ProbeError::Source {
            probe_index,
            value: value.clone(),
            error,
        })?;
        for tuple in page.tuples {
            builder.push(&tuple).map_err(ProbeError::Catalog)?;
            if builder.len() >= target {
                break 'probe;
            }
        }
    }
    Ok(builder.build())
}

/// Uniform random sample without replacement from an owned relation —
/// the sampling protocol of the robustness experiments (Section 6.2).
///
/// Thin re-export of [`Relation::random_sample`] so callers depending only
/// on this module see both sampling modes side by side.
pub fn random_sample(relation: &Relation, n: usize, seed: u64) -> Relation {
    relation.random_sample(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        FaultInjectingWebDb, FaultProfile, InMemoryWebDb, ResilientWebDb, RetryPolicy, WebDatabase,
    };
    use aimq_catalog::{Schema, Tuple, Value};

    fn make_db() -> InMemoryWebDb {
        let schema = Schema::builder("CarDB")
            .categorical("Make")
            .numeric("Price")
            .build()
            .unwrap();
        let mut tuples = Vec::new();
        for (make, count) in [("Toyota", 5), ("Honda", 3), ("Ford", 4)] {
            for i in 0..count {
                tuples.push(
                    Tuple::new(
                        &schema,
                        vec![Value::cat(make), Value::num(1000.0 * f64::from(i))],
                    )
                    .unwrap(),
                );
            }
        }
        InMemoryWebDb::new(Relation::from_tuples(schema, &tuples).unwrap())
    }

    fn makes() -> Vec<String> {
        ["Toyota", "Honda", "Ford"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect()
    }

    #[test]
    fn spanning_probe_covers_whole_source() {
        let db = make_db();
        let sample = probe_by_spanning_queries(&db, AttrId(0), &makes(), 100, 1).unwrap();
        assert_eq!(sample.len(), 12); // everything, no duplicates
    }

    #[test]
    fn spanning_probe_respects_target() {
        let db = make_db();
        let sample = probe_by_spanning_queries(&db, AttrId(0), &makes(), 7, 1).unwrap();
        assert_eq!(sample.len(), 7);
    }

    #[test]
    fn spanning_probe_goes_through_metered_interface() {
        let db = make_db();
        let _ = probe_by_spanning_queries(&db, AttrId(0), &makes(), 100, 1).unwrap();
        use crate::WebDatabase as _;
        let stats = db.stats();
        assert_eq!(stats.queries_issued, 3); // one probe per make
        assert_eq!(stats.tuples_returned, 12);
    }

    #[test]
    fn probe_order_depends_on_seed_but_coverage_does_not() {
        let db = make_db();
        let s1 = probe_by_spanning_queries(&db, AttrId(0), &makes(), 100, 1).unwrap();
        let s2 = probe_by_spanning_queries(&db, AttrId(0), &makes(), 100, 2).unwrap();
        let mut a: Vec<String> = s1.tuples().map(|t| format!("{t:?}")).collect();
        let mut b: Vec<String> = s2.tuples().map(|t| format!("{t:?}")).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_spanning_attr_is_error() {
        let db = make_db();
        assert!(matches!(
            probe_by_spanning_queries(&db, AttrId(9), &makes(), 10, 1),
            Err(ProbeError::Catalog(_))
        ));
    }

    #[test]
    fn flaky_source_with_retries_still_covers_spanning_domain() {
        // 10% transient failures behind a retrying wrapper: the probes
        // all eventually succeed, so the sample covers the full domain —
        // bit-identical to the fault-free sample.
        let faulty = FaultInjectingWebDb::new(make_db(), FaultProfile::flaky(), 11);
        let resilient = ResilientWebDb::new(faulty, RetryPolicy::default());
        let sample = probe_by_spanning_queries(&resilient, AttrId(0), &makes(), 100, 1).unwrap();
        assert_eq!(sample.len(), 12, "retried probes must restore coverage");

        let clean = probe_by_spanning_queries(&make_db(), AttrId(0), &makes(), 100, 1).unwrap();
        let fp = |r: &Relation| {
            let mut v: Vec<String> = r.tuples().map(|t| format!("{t:?}")).collect();
            v.sort();
            v
        };
        assert_eq!(fp(&sample), fp(&clean));
    }

    #[test]
    fn bare_flaky_source_fails_loudly_not_short() {
        // Without a resilience wrapper, the first injected failure must
        // surface as a typed error — never a silently short sample.
        let mut saw_error = false;
        for seed in 0..20 {
            let faulty = FaultInjectingWebDb::new(make_db(), FaultProfile::flaky(), seed);
            match probe_by_spanning_queries(&faulty, AttrId(0), &makes(), 100, 1) {
                Ok(sample) => assert_eq!(sample.len(), 12, "short sample returned silently"),
                Err(ProbeError::Source { error, .. }) => {
                    saw_error = true;
                    assert!(error.is_retryable());
                }
                Err(other) => panic!("unexpected error kind: {other:?}"),
            }
        }
        assert!(saw_error, "20 flaky passes should hit at least one fault");
    }

    #[test]
    fn open_breaker_mid_probe_is_a_typed_error() {
        // A source that dies hard mid-pass: the breaker opens and the
        // sampler reports Unavailable instead of a clipped sample.
        let dead = FaultInjectingWebDb::new(
            make_db(),
            FaultProfile {
                transient_probability: 1.0,
                ..FaultProfile::none()
            },
            3,
        );
        let resilient = ResilientWebDb::new(
            dead,
            RetryPolicy {
                max_retries: 2,
                breaker_threshold: 2,
                ..RetryPolicy::default()
            },
        );
        let err = probe_by_spanning_queries(&resilient, AttrId(0), &makes(), 100, 1).unwrap_err();
        match err {
            ProbeError::Source { error, .. } => {
                assert!(
                    !error.is_retryable() || error == QueryError::Transient,
                    "breaker-open pass must surface the terminal failure: {error:?}"
                );
            }
            other => panic!("unexpected error kind: {other:?}"),
        }
        assert!(resilient.report().breaker_trips >= 1);
    }

    #[test]
    fn truncated_pages_are_tolerated_and_metered() {
        let db = make_db().with_result_limit(2);
        let sample = probe_by_spanning_queries(&db, AttrId(0), &makes(), 100, 1).unwrap();
        // 3 probes × 2-tuple pages.
        assert_eq!(sample.len(), 6);
        let stats = db.stats();
        assert_eq!(stats.truncated_queries, 3);
    }
}
