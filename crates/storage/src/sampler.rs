use aimq_catalog::{AttrId, Predicate, Result, SelectionQuery};
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{Relation, WebDatabase};

/// Draw a sample of about `target` tuples from an autonomous source using
/// *spanning probe queries* — the paper's Data Collector (Section 6.2: "we
/// select the probing queries from a set of spanning queries, i.e. queries
/// which together cover all the tuples stored in the data sources").
///
/// The prober enumerates the value domain of `spanning_attr` by probing the
/// source one equality query per value (the attribute's Web-form select-box
/// options, in the real deployment the paper describes), shuffles the probe
/// order with `seed`, and keeps issuing probes until `target` tuples have
/// been collected. Because each tuple binds exactly one value of the
/// spanning attribute, the union of all probes covers the relation and no
/// tuple is collected twice.
///
/// Returns a [`Relation`] built from the probed tuples (at most `target`,
/// fewer when the source is smaller).
pub fn probe_by_spanning_queries(
    db: &dyn WebDatabase,
    spanning_attr: AttrId,
    spanning_values: &[String],
    target: usize,
    seed: u64,
) -> Result<Relation> {
    let schema = db.schema().clone();
    schema.attribute(spanning_attr)?;

    let mut order: Vec<&String> = spanning_values.iter().collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut builder = Relation::builder(schema);
    'probe: for value in order {
        let q = SelectionQuery::new(vec![Predicate::eq(
            spanning_attr,
            aimq_catalog::Value::cat(value.clone()),
        )]);
        for tuple in db.query(&q) {
            builder.push(&tuple)?;
            if builder.len() >= target {
                break 'probe;
            }
        }
    }
    Ok(builder.build())
}

/// Uniform random sample without replacement from an owned relation —
/// the sampling protocol of the robustness experiments (Section 6.2).
///
/// Thin re-export of [`Relation::random_sample`] so callers depending only
/// on this module see both sampling modes side by side.
pub fn random_sample(relation: &Relation, n: usize, seed: u64) -> Relation {
    relation.random_sample(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryWebDb;
    use aimq_catalog::{Schema, Tuple, Value};

    fn make_db() -> InMemoryWebDb {
        let schema = Schema::builder("CarDB")
            .categorical("Make")
            .numeric("Price")
            .build()
            .unwrap();
        let mut tuples = Vec::new();
        for (make, count) in [("Toyota", 5), ("Honda", 3), ("Ford", 4)] {
            for i in 0..count {
                tuples.push(
                    Tuple::new(
                        &schema,
                        vec![Value::cat(make), Value::num(1000.0 * f64::from(i))],
                    )
                    .unwrap(),
                );
            }
        }
        InMemoryWebDb::new(Relation::from_tuples(schema, &tuples).unwrap())
    }

    fn makes() -> Vec<String> {
        ["Toyota", "Honda", "Ford"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect()
    }

    #[test]
    fn spanning_probe_covers_whole_source() {
        let db = make_db();
        let sample = probe_by_spanning_queries(&db, AttrId(0), &makes(), 100, 1).unwrap();
        assert_eq!(sample.len(), 12); // everything, no duplicates
    }

    #[test]
    fn spanning_probe_respects_target() {
        let db = make_db();
        let sample = probe_by_spanning_queries(&db, AttrId(0), &makes(), 7, 1).unwrap();
        assert_eq!(sample.len(), 7);
    }

    #[test]
    fn spanning_probe_goes_through_metered_interface() {
        let db = make_db();
        let _ = probe_by_spanning_queries(&db, AttrId(0), &makes(), 100, 1).unwrap();
        use crate::WebDatabase as _;
        let stats = db.stats();
        assert_eq!(stats.queries_issued, 3); // one probe per make
        assert_eq!(stats.tuples_returned, 12);
    }

    #[test]
    fn probe_order_depends_on_seed_but_coverage_does_not() {
        let db = make_db();
        let s1 = probe_by_spanning_queries(&db, AttrId(0), &makes(), 100, 1).unwrap();
        let s2 = probe_by_spanning_queries(&db, AttrId(0), &makes(), 100, 2).unwrap();
        let mut a: Vec<String> = s1.tuples().map(|t| format!("{t:?}")).collect();
        let mut b: Vec<String> = s2.tuples().map(|t| format!("{t:?}")).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_spanning_attr_is_error() {
        let db = make_db();
        assert!(probe_by_spanning_queries(&db, AttrId(9), &makes(), 10, 1).is_err());
    }
}
