//! Deterministic fault injection for autonomous sources.
//!
//! [`FaultInjectingWebDb`] decorates any [`WebDatabase`] with a *seeded,
//! replayable* fault schedule: per-query transient/timeout failures,
//! periodic rate-limit bursts, page truncation and (rarely) terminal
//! outages. Two runs with the same seed and the same query sequence see
//! byte-identical faults — the property the resilience layer's tests and
//! PR 1's determinism suite build on.
//!
//! The schedule is a pure function of `(seed, query ordinal)`: every call
//! to [`WebDatabase::try_query`] consumes exactly one position of the
//! schedule, whether it fails or not. Retries issued by a wrapper consume
//! *further* positions, which is what makes retry-until-success converge
//! under any nonzero success probability.

use std::sync::{Arc, Mutex};

use aimq_catalog::{Schema, SelectionQuery};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::web::lock_stats;
use crate::{AccessStats, QueryError, QueryPage, WebDatabase};

/// Periodic rate-limit bursts: after every `period` admitted queries the
/// source rejects the next `burst` attempts with
/// [`QueryError::RateLimited`], echoing `retry_after` ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimitWindow {
    /// Queries admitted between bursts.
    pub period: u64,
    /// Consecutive attempts rejected once a burst starts.
    pub burst: u64,
    /// `Retry-After` hint carried by the rejections (virtual ticks).
    pub retry_after: u64,
}

/// Probabilistic page clipping: with `probability`, a successful page is
/// truncated to at most `max_tuples` tuples (flagged via
/// [`QueryPage::truncated`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncationPolicy {
    /// Chance that a successful query's page is clipped.
    pub probability: f64,
    /// Page cap applied when the clip triggers.
    pub max_tuples: usize,
}

/// The per-query fault distribution of a simulated unreliable source.
///
/// Probabilities are evaluated in order — rate-limit window first (it is
/// counter-based, not probabilistic), then `unavailable_probability`,
/// `timeout_probability`, `transient_probability` on a single uniform
/// draw — so their sum must stay ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Chance of a [`QueryError::Transient`] failure per query.
    pub transient_probability: f64,
    /// Chance of a [`QueryError::Timeout`] per query.
    pub timeout_probability: f64,
    /// Chance of a terminal [`QueryError::Unavailable`] per query.
    pub unavailable_probability: f64,
    /// Periodic rate-limit bursts, if any.
    pub rate_limit: Option<RateLimitWindow>,
    /// Probabilistic page truncation, if any.
    pub truncation: Option<TruncationPolicy>,
}

impl FaultProfile {
    /// A perfectly healthy source: every fault channel disabled.
    pub fn none() -> Self {
        FaultProfile {
            transient_probability: 0.0,
            timeout_probability: 0.0,
            unavailable_probability: 0.0,
            rate_limit: None,
            truncation: None,
        }
    }

    /// The evaluation's `flaky` profile: 10% transient failures, nothing
    /// else — the acceptance workload for retry-driven recovery.
    pub fn flaky() -> Self {
        FaultProfile {
            transient_probability: 0.10,
            ..FaultProfile::none()
        }
    }

    /// The evaluation's `hostile` profile: transient failures *and*
    /// timeouts, periodic rate-limit bursts, and aggressive page
    /// truncation.
    pub fn hostile() -> Self {
        FaultProfile {
            transient_probability: 0.05,
            timeout_probability: 0.05,
            unavailable_probability: 0.0,
            rate_limit: Some(RateLimitWindow {
                period: 20,
                burst: 3,
                retry_after: 4,
            }),
            truncation: Some(TruncationPolicy {
                probability: 0.25,
                max_tuples: 5,
            }),
        }
    }

    /// Resolve one of the named CI-matrix profiles (`none`, `flaky`,
    /// `hostile`).
    pub fn by_name(name: &str) -> Option<FaultProfile> {
        match name {
            "none" => Some(FaultProfile::none()),
            "flaky" => Some(FaultProfile::flaky()),
            "hostile" => Some(FaultProfile::hostile()),
            _ => None,
        }
    }

    /// `true` when every fault channel is disabled.
    pub fn is_benign(&self) -> bool {
        self.transient_probability <= 0.0
            && self.timeout_probability <= 0.0
            && self.unavailable_probability <= 0.0
            && self.rate_limit.is_none()
            && self.truncation.is_none()
    }
}

/// How a [`FaultInjectingWebDb`] assigns fates to queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultMode {
    /// The historical contract: fate is a pure function of
    /// `(seed, query ordinal)` — every call consumes one schedule
    /// position, so retries see fresh draws and converge.
    Sequenced,
    /// Fate is a pure function of `(seed, canonical query)` via
    /// [`SelectionQuery::stable_hash`]: the same probe meets the same
    /// fate at any position, from any thread, in any interleaving. This
    /// is the mode concurrent-replay tests use — serial and shuffled
    /// multi-threaded replays of a query log observe identical per-query
    /// outcomes. Ordinal-based rate-limit windows are *inactive* in this
    /// mode (a burst window is inherently a property of the call
    /// sequence, which keyed scheduling deliberately ignores), and a
    /// retry of a failed query redraws the same fate, so pair keyed
    /// injection with a cache rather than a retry layer.
    Keyed,
}

/// Mutable schedule state, behind one mutex so clones share the stream.
#[derive(Debug)]
struct FaultState {
    rng: StdRng,
    /// Ordinal of the next query (schedule position).
    calls: u64,
    /// Failures injected by this decorator.
    injected_failures: u64,
    /// Pages clipped by this decorator.
    injected_truncations: u64,
    /// Tuples removed from pages by decorator-level clipping (the inner
    /// meter counted them before we clipped).
    clipped_tuples: u64,
}

/// A [`WebDatabase`] decorator that injects faults from a seeded,
/// deterministic schedule. See the module docs for the replay contract.
///
/// Cloning shares the inner database, the schedule position and the
/// meters.
#[derive(Debug, Clone)]
pub struct FaultInjectingWebDb<D> {
    inner: D,
    profile: FaultProfile,
    seed: u64,
    mode: FaultMode,
    // aimq-lock: family(fault-state) -- guards the schedule cursor and
    // meters; never held across a probe of the inner database
    state: Arc<Mutex<FaultState>>,
}

impl<D: WebDatabase> FaultInjectingWebDb<D> {
    /// Decorate `inner` with faults drawn from `profile`, scheduled by
    /// `seed`.
    pub fn new(inner: D, profile: FaultProfile, seed: u64) -> Self {
        Self::with_mode(inner, profile, seed, FaultMode::Sequenced)
    }

    /// Decorate `inner` with *keyed* faults: each query's fate is a pure
    /// function of `(seed, canonical query)`, independent of call order
    /// and thread interleaving. Concurrent replays of a query log
    /// therefore observe exactly the per-query outcomes of a serial
    /// replay. Ordinal-based rate-limit windows in `profile` are ignored
    /// in this mode, and retries redraw the same fate — see the caveats
    /// on the mode itself.
    pub fn keyed(inner: D, profile: FaultProfile, seed: u64) -> Self {
        Self::with_mode(inner, profile, seed, FaultMode::Keyed)
    }

    fn with_mode(inner: D, profile: FaultProfile, seed: u64, mode: FaultMode) -> Self {
        FaultInjectingWebDb {
            inner,
            profile,
            seed,
            mode,
            state: Arc::new(Mutex::new(FaultState {
                rng: StdRng::seed_from_u64(seed),
                calls: 0,
                injected_failures: 0,
                injected_truncations: 0,
                clipped_tuples: 0,
            })),
        }
    }

    /// The active fault profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// `true` when fates are keyed on the query rather than sequenced by
    /// call ordinal.
    pub fn is_keyed(&self) -> bool {
        self.mode == FaultMode::Keyed
    }

    /// Borrow the decorated database.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Decide the fate of the next query. Returns `Ok(clip)` where `clip`
    /// is an optional page cap, or the injected error.
    fn schedule_next(&self, query: &SelectionQuery) -> Result<Option<usize>, QueryError> {
        let mut state = lock_stats(&self.state);
        // Reborrow so the scheduler RNG and the meters can be borrowed
        // field-by-field below.
        let state = &mut *state;
        let ordinal = state.calls;
        state.calls += 1;

        if self.mode == FaultMode::Sequenced {
            if let Some(window) = self.profile.rate_limit {
                let cycle = window.period + window.burst;
                if window.burst > 0 && cycle > 0 && ordinal % cycle >= window.period {
                    state.injected_failures += 1;
                    return Err(QueryError::RateLimited {
                        retry_after: window.retry_after,
                    });
                }
            }
        }

        // One uniform draw decides the probabilistic channels; a second
        // (drawn only on success) decides truncation. Keeping the draw
        // count fixed per outcome keeps the schedule replayable. In
        // keyed mode the draws come from a throwaway RNG seeded from the
        // query, not from the shared stream — the shared stream is not
        // advanced at all, so sequenced clones are unaffected.
        let mut keyed_rng;
        let rng: &mut StdRng = match self.mode {
            FaultMode::Sequenced => &mut state.rng,
            FaultMode::Keyed => {
                keyed_rng = StdRng::seed_from_u64(self.seed ^ query.stable_hash());
                &mut keyed_rng
            }
        };
        let u: f64 = rng.random();
        let mut edge = self.profile.unavailable_probability;
        if u < edge {
            state.injected_failures += 1;
            return Err(QueryError::Unavailable);
        }
        edge += self.profile.timeout_probability;
        if u < edge {
            state.injected_failures += 1;
            return Err(QueryError::Timeout);
        }
        edge += self.profile.transient_probability;
        if u < edge {
            state.injected_failures += 1;
            return Err(QueryError::Transient);
        }

        if let Some(policy) = self.profile.truncation {
            let v: f64 = rng.random();
            if v < policy.probability {
                return Ok(Some(policy.max_tuples));
            }
        }
        Ok(None)
    }
}

impl<D: WebDatabase> WebDatabase for FaultInjectingWebDb<D> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    // aimq-probe: entry -- fault-injection wrapper; injected failures are tallied in FaultStats before forwarding inward
    fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError> {
        let clip = self.schedule_next(query)?;
        let mut page = self.inner.try_query(query)?;
        if let Some(max_tuples) = clip {
            if page.tuples.len() > max_tuples {
                let clipped = (page.tuples.len() - max_tuples) as u64;
                page.tuples.truncate(max_tuples);
                page.truncated = true;
                let mut state = lock_stats(&self.state);
                state.injected_truncations += 1;
                state.clipped_tuples += clipped;
            }
        }
        Ok(page)
    }

    fn stats(&self) -> AccessStats {
        let inner = self.inner.stats();
        let state = lock_stats(&self.state);
        AccessStats {
            // Injected failures never reach the inner meter, but the
            // query *was* attempted against the (simulated) source.
            queries_issued: inner.queries_issued + state.injected_failures,
            tuples_returned: inner.tuples_returned.saturating_sub(state.clipped_tuples),
            failures: inner.failures + state.injected_failures,
            truncated_queries: inner.truncated_queries + state.injected_truncations,
            ..inner
        }
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
        let mut state = lock_stats(&self.state);
        state.injected_failures = 0;
        state.injected_truncations = 0;
        state.clipped_tuples = 0;
    }

    fn source_health(&self) -> Option<Vec<crate::SourceHealth>> {
        self.inner.source_health()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InMemoryWebDb, Relation};
    use aimq_catalog::{Schema, Tuple, Value};

    fn base_db() -> InMemoryWebDb {
        let schema = Schema::builder("R")
            .categorical("Make")
            .numeric("Price")
            .build()
            .unwrap();
        let tuples: Vec<Tuple> = (0..20)
            .map(|i| {
                Tuple::new(
                    &schema,
                    vec![Value::cat("Toyota"), Value::num(1000.0 * f64::from(i))],
                )
                .unwrap()
            })
            .collect();
        InMemoryWebDb::new(Relation::from_tuples(schema, &tuples).unwrap())
    }

    fn outcomes(db: &dyn WebDatabase, n: usize) -> Vec<String> {
        (0..n)
            .map(|_| match db.try_query(&SelectionQuery::all()) {
                Ok(page) => format!("ok({}, trunc={})", page.tuples.len(), page.truncated),
                Err(e) => format!("err({e:?})"),
            })
            .collect()
    }

    #[test]
    fn benign_profile_is_transparent() {
        let db = FaultInjectingWebDb::new(base_db(), FaultProfile::none(), 1);
        for o in outcomes(&db, 50) {
            assert_eq!(o, "ok(20, trunc=false)");
        }
        let s = db.stats();
        assert_eq!(s.failures, 0);
        assert_eq!(s.queries_issued, 50);
        assert_eq!(s.truncated_queries, 0);
    }

    #[test]
    fn same_seed_replays_identical_schedule() {
        let a = FaultInjectingWebDb::new(base_db(), FaultProfile::hostile(), 42);
        let b = FaultInjectingWebDb::new(base_db(), FaultProfile::hostile(), 42);
        assert_eq!(outcomes(&a, 200), outcomes(&b, 200));
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultInjectingWebDb::new(base_db(), FaultProfile::flaky(), 1);
        let b = FaultInjectingWebDb::new(base_db(), FaultProfile::flaky(), 2);
        assert_ne!(outcomes(&a, 300), outcomes(&b, 300));
    }

    #[test]
    fn flaky_rate_is_roughly_ten_percent() {
        let db = FaultInjectingWebDb::new(base_db(), FaultProfile::flaky(), 7);
        let fails = outcomes(&db, 2000)
            .iter()
            .filter(|o| o.starts_with("err"))
            .count();
        assert!((100..300).contains(&fails), "flaky failure count {fails}");
        assert_eq!(db.stats().failures as usize, fails);
    }

    #[test]
    fn rate_limit_window_rejects_bursts() {
        let profile = FaultProfile {
            rate_limit: Some(RateLimitWindow {
                period: 5,
                burst: 2,
                retry_after: 3,
            }),
            ..FaultProfile::none()
        };
        let db = FaultInjectingWebDb::new(base_db(), profile, 1);
        let os = outcomes(&db, 14);
        // Positions 5,6 and 12,13 fall in the burst windows.
        for (i, o) in os.iter().enumerate() {
            let in_burst = i % 7 >= 5;
            assert_eq!(
                o.starts_with("err(RateLimited"),
                in_burst,
                "position {i}: {o}"
            );
        }
    }

    #[test]
    fn truncation_clips_and_adjusts_meter() {
        let profile = FaultProfile {
            truncation: Some(TruncationPolicy {
                probability: 1.0,
                max_tuples: 4,
            }),
            ..FaultProfile::none()
        };
        let db = FaultInjectingWebDb::new(base_db(), profile, 1);
        let page = db.try_query(&SelectionQuery::all()).unwrap();
        assert_eq!(page.tuples.len(), 4);
        assert!(page.truncated);
        let s = db.stats();
        assert_eq!(s.truncated_queries, 1);
        // The meter reports what the caller saw, not what the inner
        // relation produced.
        assert_eq!(s.tuples_returned, 4);
    }

    #[test]
    fn named_profiles_resolve() {
        assert!(FaultProfile::by_name("none").is_some_and(|p| p.is_benign()));
        assert_eq!(FaultProfile::by_name("flaky"), Some(FaultProfile::flaky()));
        assert_eq!(
            FaultProfile::by_name("hostile"),
            Some(FaultProfile::hostile())
        );
        assert_eq!(FaultProfile::by_name("bogus"), None);
    }

    #[test]
    fn keyed_mode_gives_each_query_an_order_independent_fate() {
        let queries: Vec<SelectionQuery> = (0..60)
            .map(|i| {
                SelectionQuery::new(vec![aimq_catalog::Predicate {
                    attr: aimq_catalog::AttrId(1),
                    op: aimq_catalog::PredicateOp::Ge,
                    value: Value::num(100.0 * f64::from(i)),
                }])
            })
            .collect();
        let fate =
            |db: &FaultInjectingWebDb<InMemoryWebDb>, q: &SelectionQuery| match db.try_query(q) {
                Ok(page) => format!("ok({}, trunc={})", page.tuples.len(), page.truncated),
                Err(e) => format!("err({e:?})"),
            };
        let profile = FaultProfile {
            transient_probability: 0.3,
            truncation: Some(TruncationPolicy {
                probability: 0.3,
                max_tuples: 2,
            }),
            ..FaultProfile::none()
        };
        let forward = FaultInjectingWebDb::keyed(base_db(), profile, 9);
        assert!(forward.is_keyed());
        let forward_fates: Vec<String> = queries.iter().map(|q| fate(&forward, q)).collect();
        // Same queries in reverse order, interleaved with repeats: every
        // query still meets exactly its own fate.
        let reverse = FaultInjectingWebDb::keyed(base_db(), profile, 9);
        for (q, expected) in queries.iter().zip(&forward_fates).rev() {
            assert_eq!(&fate(&reverse, q), expected);
            assert_eq!(&fate(&reverse, q), expected, "repeat redraws same fate");
        }
        // The keyed schedule actually injects something at 30%/30%.
        assert!(forward_fates.iter().any(|f| f.starts_with("err")));
        assert!(forward_fates.iter().any(|f| f.contains("trunc=true")));
        // A canonically equal but syntactically permuted query shares
        // the fate (fate keys on the canonical form).
        let dup = SelectionQuery::new(
            queries[3]
                .predicates()
                .iter()
                .chain(queries[3].predicates())
                .cloned()
                .collect(),
        );
        assert_eq!(fate(&reverse, &dup), forward_fates[3]);
        // Different seeds re-deal the fates.
        let reseeded = FaultInjectingWebDb::keyed(base_db(), profile, 10);
        let reseeded_fates: Vec<String> = queries.iter().map(|q| fate(&reseeded, q)).collect();
        assert_ne!(reseeded_fates, forward_fates);
    }

    #[test]
    fn keyed_mode_disables_rate_limit_windows() {
        // `hostile` carries an ordinal-based burst window; keyed mode
        // must never emit RateLimited (fates ignore call order).
        let db = FaultInjectingWebDb::keyed(base_db(), FaultProfile::hostile(), 42);
        for o in outcomes(&db, 200) {
            assert!(!o.starts_with("err(RateLimited"), "{o}");
        }
    }

    #[test]
    fn reset_clears_overlay_but_not_schedule() {
        let db = FaultInjectingWebDb::new(base_db(), FaultProfile::flaky(), 3);
        let _ = outcomes(&db, 100);
        db.reset_stats();
        let s = db.stats();
        assert_eq!(s, AccessStats::default());
    }
}
