use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use aimq_catalog::{Schema, SelectionQuery};

use crate::web::{lock_stats, AccessStats, QueryError, QueryPage, WebDatabase};

/// Default number of memoized pages ([`CachedWebDb::new`] callers that have
/// no better number; the CLI default).
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Default stripe count for [`CachedWebDb::new`]: one stripe, i.e. the
/// exact single-lock semantics the decorator shipped with. The serving
/// runtime raises this via [`CachedWebDb::with_stripes`] so its worker
/// pool does not serialize on one memo lock.
pub const DEFAULT_CACHE_STRIPES: usize = 1;

/// Everything one cache stripe protects under its lock: a shard of the
/// memo, that shard's FIFO admission order, and its hit/miss/eviction
/// counters (so a stats overlay is internally consistent per stripe).
#[derive(Debug, Default)]
struct CacheState {
    /// Memoized pages, keyed on the *canonical* query form. `BTreeMap`
    /// keeps every walk of the cache deterministic (xtask L3 bans the
    /// randomized `HashMap` in this codebase's deterministic layers).
    pages: BTreeMap<SelectionQuery, QueryPage>,
    /// Insertion order of the keys in `pages`; the front is next to be
    /// evicted. FIFO rather than LRU: eviction order then depends only on
    /// the sequence of *misses*, never on hit timing, which keeps replayed
    /// runs byte-identical even if an observer probes the cache.
    order: VecDeque<SelectionQuery>,
    // aimq-arith: counter -- monotone event tally, summed across stripes
    hits: u64,
    // aimq-arith: counter -- monotone event tally, summed across stripes
    misses: u64,
    // aimq-arith: counter -- monotone event tally, summed across stripes
    evictions: u64,
}

/// A memoizing decorator for any [`WebDatabase`]: repeated semantically
/// identical probes are answered from memory instead of re-querying the
/// autonomous source.
///
/// Algorithm 1 re-issues many byte-identical relaxation queries — base-set
/// tuples that agree on their non-relaxed attributes produce the *same*
/// `SelectionQuery`, and overlapping workload queries repeat probes across
/// engine calls. Each repeat costs a round trip, a
/// [`AccessStats::queries_issued`] tick, and (behind a
/// [`crate::ResilientWebDb`]) a probe-budget charge. This decorator
/// eliminates the repeats at the source boundary.
///
/// Semantics:
///
/// - Keys are [`SelectionQuery::canonicalize`]d, so predicate order and
///   duplicate conjuncts do not defeat the cache.
/// - Only *successful, complete* pages are memoized. Errors always
///   propagate and are retried on the next probe (negative caching would
///   turn a transient fault into a permanent one), and truncated pages are
///   forwarded but not stored (a clipped page is not the query's answer;
///   replaying it would freeze one page-limit draw into the session).
/// - The memo is bounded: at most `capacity` pages, evicted FIFO. A
///   `capacity` of zero stores nothing (every probe forwards), which is how
///   `--no-cache` is implemented without changing the decorator stack.
/// - Cache hits never touch the inner database: no probe budget is
///   charged, no circuit breaker state advances, no fault-schedule ordinal
///   is consumed, and [`AccessStats::queries_issued`] does not move. The
///   supported composition is therefore cache *outermost*:
///   `CachedWebDb<ResilientWebDb<FaultInjectingWebDb<_>>>`. Stacking the
///   cache inside the resilience layer would charge budget for hits
///   (`ResilientWebDb` meters before delegating) — see the stacking-order
///   test below and DESIGN.md, "Probe caching & dedup semantics".
///
/// [`WebDatabase::stats`] overlays [`AccessStats::cache_hits`] /
/// [`AccessStats::cache_misses`] / [`AccessStats::cache_evictions`] on the
/// inner meter; [`WebDatabase::reset_stats`] clears the counters but keeps
/// the memo (use [`CachedWebDb::clear`] to drop memoized pages).
///
/// The memo is *lock-striped*: keys are sharded over `stripes`
/// independent locks by [`SelectionQuery::stable_hash`] (a deterministic
/// FNV over the canonical form — `std`'s per-process-seeded `RandomState`
/// would make shard assignment unreproducible), so concurrent workers
/// probing different queries rarely contend. [`CachedWebDb::new`] keeps
/// the historical single-stripe behaviour; the serving runtime uses
/// [`CachedWebDb::with_stripes`]. With `s` stripes the capacity bound is
/// enforced per stripe at `ceil(capacity / s)` pages, so the total held
/// never exceeds `capacity + s - 1`.
///
/// Cloning shares the memo and the counters.
#[derive(Debug, Clone)]
pub struct CachedWebDb<D> {
    inner: D,
    capacity: usize,
    /// Capacity bound each stripe enforces locally.
    stripe_capacity: usize,
    /// At least one stripe, always.
    // aimq-lock: family(cache-stripe) -- each stripe guards one shard of the
    // page memo; stripes are peers, never nested, and no guard outlives the
    // hit/miss bookkeeping around a probe
    stripes: Arc<Vec<Mutex<CacheState>>>,
}

impl<D: WebDatabase> CachedWebDb<D> {
    /// Wrap `inner` with a memo of at most `capacity` pages behind a
    /// single lock (see [`DEFAULT_CACHE_STRIPES`]).
    pub fn new(inner: D, capacity: usize) -> Self {
        Self::with_stripes(inner, capacity, DEFAULT_CACHE_STRIPES)
    }

    /// Wrap `inner` with the default capacity
    /// ([`DEFAULT_CACHE_CAPACITY`]).
    pub fn with_default_capacity(inner: D) -> Self {
        Self::new(inner, DEFAULT_CACHE_CAPACITY)
    }

    /// Wrap `inner` with `capacity` total pages sharded over `stripes`
    /// locks (`stripes` is clamped to at least one).
    pub fn with_stripes(inner: D, capacity: usize, stripes: usize) -> Self {
        let stripes = stripes.max(1);
        let stripe_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(stripes)
        };
        CachedWebDb {
            inner,
            capacity,
            stripe_capacity,
            stripes: Arc::new(
                (0..stripes)
                    .map(|_| Mutex::new(CacheState::default()))
                    .collect(),
            ),
        }
    }

    /// The wrapped database.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The capacity bound this cache was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock stripes sharding the memo.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// The stripe responsible for a canonical `key`. Returns `None` only
    /// if the stripe vector were empty, which construction forbids;
    /// callers treat that as "cache disabled" rather than panicking.
    fn stripe_for(&self, key: &SelectionQuery) -> Option<&Mutex<CacheState>> {
        let n = self.stripes.len() as u64;
        let idx = (key.stable_hash() % n.max(1)) as usize;
        self.stripes.get(idx).or_else(|| self.stripes.first())
    }

    /// Number of pages currently memoized, summed over stripes.
    pub fn len(&self) -> usize {
        // aimq-lock: use(cache-stripe)
        self.stripes.iter().map(|s| lock_stats(s).pages.len()).sum()
    }

    /// `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every memoized page (counters are untouched; eviction is not
    /// counted — nothing was displaced by an admission).
    pub fn clear(&self) {
        for stripe in self.stripes.iter() {
            let mut state = lock_stats(stripe);
            state.pages.clear();
            state.order.clear();
        }
    }
}

impl<D: WebDatabase> WebDatabase for CachedWebDb<D> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    // aimq-probe: entry -- memoizing wrapper; misses forward inward and hits/misses are metered in CacheStats
    fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError> {
        // Key derivation borrows the query when it is already canonical —
        // the engine's probe plan stores canonical probes, so the common
        // path neither sorts nor clones here.
        let canonicalized;
        let key: &SelectionQuery = if query.is_canonical() {
            query
        } else {
            canonicalized = query.canonicalize();
            &canonicalized
        };
        let Some(stripe) = self.stripe_for(key) else {
            return self.inner.try_query(query);
        };
        {
            let mut state = lock_stats(stripe); // aimq-lock: use(cache-stripe)
            if let Some(page) = state.pages.get(key) {
                let page = page.clone();
                state.hits = state.hits.saturating_add(1);
                return Ok(page);
            }
            state.misses = state.misses.saturating_add(1);
        }
        // Forward without holding the lock: the inner stack may spend
        // virtual time retrying/backing off, and concurrent probes for
        // *other* queries must not serialize behind it.
        let page = self.inner.try_query(query)?;
        if !page.truncated && self.stripe_capacity > 0 {
            // aimq-lock: use(cache-stripe)
            let mut state = lock_stats(stripe);
            // A concurrent miss for the same query may have raced us here;
            // first insertion wins so `order` never holds a duplicate key.
            if !state.pages.contains_key(key) {
                state.order.push_back(key.clone());
                state.pages.insert(key.clone(), page.clone());
                while state.pages.len() > self.stripe_capacity {
                    match state.order.pop_front() {
                        Some(oldest) => {
                            state.pages.remove(&oldest);
                            state.evictions = state.evictions.saturating_add(1);
                        }
                        None => break,
                    }
                }
            }
        }
        Ok(page)
    }

    fn stats(&self) -> AccessStats {
        // Read the inner meter first: every source issue was preceded by
        // a counted miss, so summing stripe counters afterwards keeps the
        // `queries_issued <= cache_misses` invariant in every snapshot.
        let inner = self.inner.stats();
        let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);
        for stripe in self.stripes.iter() {
            let state = lock_stats(stripe);
            hits = hits.saturating_add(state.hits);
            misses = misses.saturating_add(state.misses);
            evictions = evictions.saturating_add(state.evictions);
        }
        AccessStats {
            cache_hits: inner.cache_hits.saturating_add(hits),
            cache_misses: inner.cache_misses.saturating_add(misses),
            cache_evictions: inner.cache_evictions.saturating_add(evictions),
            ..inner
        }
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
        for stripe in self.stripes.iter() {
            let mut state = lock_stats(stripe);
            state.hits = 0;
            state.misses = 0;
            state.evictions = 0;
        }
    }

    fn source_health(&self) -> Option<Vec<crate::SourceHealth>> {
        self.inner.source_health()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        FaultInjectingWebDb, FaultProfile, InMemoryWebDb, Relation, ResilientWebDb, RetryPolicy,
    };
    use aimq_catalog::{AttrId, Predicate, Schema, Tuple, Value};

    fn relation() -> Relation {
        let schema = Schema::builder("R")
            .categorical("Make")
            .numeric("Price")
            .build()
            .unwrap();
        let tuples: Vec<Tuple> = [("Toyota", 10000.0), ("Honda", 9000.0), ("Toyota", 7000.0)]
            .iter()
            .map(|&(m, p)| Tuple::new(&schema, vec![Value::cat(m), Value::num(p)]).unwrap())
            .collect();
        Relation::from_tuples(schema, &tuples).unwrap()
    }

    fn make_eq(make: &str) -> Predicate {
        Predicate::eq(AttrId(0), Value::cat(make))
    }

    fn price_ge(p: f64) -> Predicate {
        Predicate {
            attr: AttrId(1),
            op: aimq_catalog::PredicateOp::Ge,
            value: Value::num(p),
        }
    }

    #[test]
    fn repeat_probe_is_served_from_memory() {
        let db = CachedWebDb::new(InMemoryWebDb::new(relation()), 16);
        let q = SelectionQuery::new(vec![make_eq("Toyota")]);
        let first = db.try_query(&q).unwrap();
        let second = db.try_query(&q).unwrap();
        assert_eq!(first, second);
        let s = db.stats();
        assert_eq!(s.queries_issued, 1, "the source saw the probe once");
        assert_eq!((s.cache_hits, s.cache_misses), (1, 1));
        assert_eq!(db.inner().stats().queries_issued, 1);
    }

    #[test]
    fn keying_is_canonical_not_syntactic() {
        let db = CachedWebDb::new(InMemoryWebDb::new(relation()), 16);
        let a = SelectionQuery::new(vec![make_eq("Toyota"), price_ge(8000.0)]);
        let b = SelectionQuery::new(vec![price_ge(8000.0), make_eq("Toyota"), make_eq("Toyota")]);
        let pa = db.try_query(&a).unwrap();
        let pb = db.try_query(&b).unwrap();
        assert_eq!(pa, pb);
        assert_eq!(db.stats().cache_hits, 1, "permuted conjuncts must hit");
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let db = CachedWebDb::new(InMemoryWebDb::new(relation()), 2);
        let qs: Vec<SelectionQuery> = [6500.0, 8500.0, 9500.0]
            .iter()
            .map(|&p| SelectionQuery::new(vec![price_ge(p)]))
            .collect();
        for q in &qs {
            db.try_query(q).unwrap();
        }
        assert_eq!(db.len(), 2);
        assert_eq!(db.stats().cache_evictions, 1);
        // FIFO: the first-admitted key is gone, the later two still hit.
        db.try_query(&qs[1]).unwrap();
        db.try_query(&qs[2]).unwrap();
        assert_eq!(db.stats().cache_hits, 2);
        db.try_query(&qs[0]).unwrap();
        assert_eq!(db.stats().cache_hits, 2, "evicted key must miss");
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let db = CachedWebDb::new(InMemoryWebDb::new(relation()), 0);
        let q = SelectionQuery::new(vec![make_eq("Toyota")]);
        db.try_query(&q).unwrap();
        db.try_query(&q).unwrap();
        let s = db.stats();
        assert_eq!(s.queries_issued, 2);
        assert_eq!((s.cache_hits, s.cache_misses, s.cache_evictions), (0, 2, 0));
        assert!(db.is_empty());
    }

    #[test]
    fn truncated_pages_are_forwarded_but_not_memoized() {
        let db = CachedWebDb::new(InMemoryWebDb::new(relation()).with_result_limit(1), 16);
        let all = SelectionQuery::all();
        let page = db.try_query(&all).unwrap();
        assert!(page.truncated);
        db.try_query(&all).unwrap();
        let s = db.stats();
        assert_eq!(s.cache_hits, 0, "clipped pages must not be replayed");
        assert_eq!(s.queries_issued, 2);
        // A complete page for a different query still caches.
        let q = SelectionQuery::new(vec![make_eq("Honda")]);
        db.try_query(&q).unwrap();
        db.try_query(&q).unwrap();
        assert_eq!(db.stats().cache_hits, 1);
    }

    #[test]
    fn errors_propagate_and_are_not_cached() {
        // A dead source: every probe must reach it (and fail) — the cache
        // never memoizes a failure as if it were an answer.
        let dead = FaultProfile {
            unavailable_probability: 1.0,
            ..FaultProfile::none()
        };
        let db = CachedWebDb::new(
            FaultInjectingWebDb::new(InMemoryWebDb::new(relation()), dead, 7),
            16,
        );
        let q = SelectionQuery::new(vec![make_eq("Toyota")]);
        assert_eq!(db.try_query(&q), Err(QueryError::Unavailable));
        assert_eq!(db.try_query(&q), Err(QueryError::Unavailable));
        let s = db.stats();
        assert_eq!(s.cache_misses, 2);
        assert_eq!(s.failures, 2);
        assert!(db.is_empty());
    }

    #[test]
    fn reset_stats_keeps_the_memo_and_clear_drops_it() {
        let db = CachedWebDb::new(InMemoryWebDb::new(relation()), 16);
        let q = SelectionQuery::new(vec![make_eq("Toyota")]);
        db.try_query(&q).unwrap();
        db.reset_stats();
        assert_eq!(db.stats(), AccessStats::default());
        assert_eq!(db.len(), 1, "reset_stats must not flush pages");
        db.try_query(&q).unwrap();
        assert_eq!(db.stats().cache_hits, 1);
        db.clear();
        assert!(db.is_empty());
        db.try_query(&q).unwrap();
        assert_eq!(db.stats().cache_hits, 1, "cleared page misses again");
    }

    /// Satellite: the supported stacking order. Cache *outside* the
    /// resilience layer means hits consume no probe budget; cache *inside*
    /// it means every hit is still charged. The probe budget below admits
    /// exactly two attempts, so the supported order answers three probes
    /// (one miss + two hits) while the unsupported order fast-fails.
    #[test]
    fn stacking_order_cache_outside_resilience_spares_the_budget() {
        let q = SelectionQuery::new(vec![make_eq("Toyota")]);
        let policy = RetryPolicy {
            probe_budget: Some(2),
            ..RetryPolicy::default()
        };

        // Supported: Cached(Resilient(Fault(db))).
        let supported = CachedWebDb::new(
            ResilientWebDb::new(
                FaultInjectingWebDb::new(InMemoryWebDb::new(relation()), FaultProfile::none(), 1),
                policy.clone(),
            ),
            16,
        );
        for _ in 0..3 {
            assert!(supported.try_query(&q).is_ok(), "hits are budget-free");
        }
        assert_eq!(supported.stats().cache_hits, 2);

        // Unsupported: Resilient(Cached(Fault(db))) — the budget meter
        // sits above the cache, so even hits are charged and the third
        // probe dies on an exhausted budget.
        let unsupported = ResilientWebDb::new(
            CachedWebDb::new(
                FaultInjectingWebDb::new(InMemoryWebDb::new(relation()), FaultProfile::none(), 1),
                16,
            ),
            policy,
        );
        assert!(unsupported.try_query(&q).is_ok());
        assert!(unsupported.try_query(&q).is_ok());
        assert_eq!(
            unsupported.try_query(&q),
            Err(QueryError::Unavailable),
            "inner cache cannot protect the probe budget"
        );
    }

    /// Satellite: cache hits must not advance the deterministic fault
    /// schedule. With the cache outermost, a workload with repeats sees
    /// exactly the fate sequence of its deduplicated probe sequence.
    #[test]
    fn hits_do_not_consume_fault_schedule_ordinals() {
        let profile = FaultProfile::flaky();
        let seed = 42;
        let queries: Vec<SelectionQuery> = [6500.0, 8500.0, 9500.0, 10500.0]
            .iter()
            .map(|&p| SelectionQuery::new(vec![price_ge(p)]))
            .collect();

        // Reference: the distinct queries, each issued once, bare.
        let bare = FaultInjectingWebDb::new(InMemoryWebDb::new(relation()), profile, seed);
        let reference: Vec<Result<QueryPage, QueryError>> =
            queries.iter().map(|q| bare.try_query(q)).collect();

        // Cached run: each query issued twice; the repeats hit the memo
        // (successful complete pages) or re-probe (failures), but the
        // *first* outcomes replay the reference schedule positions only
        // when hits consume no ordinals.
        let cached = CachedWebDb::new(
            FaultInjectingWebDb::new(InMemoryWebDb::new(relation()), profile, seed),
            16,
        );
        let mut outcomes = Vec::new();
        for q in &queries {
            let first = cached.try_query(q);
            if first.is_ok() {
                assert_eq!(cached.try_query(q), first, "repeat must replay the page");
            }
            outcomes.push(first);
        }
        // flaky(seed=42) over four probes is fault-free here, so every
        // repeat was a hit and the fate sequences line up exactly.
        assert_eq!(outcomes, reference);
        assert_eq!(cached.stats().cache_hits, 4);
    }

    #[test]
    fn concurrent_misses_keep_the_meter_coherent() {
        // Distinct queries from several threads: every probe is a miss,
        // and a miss is counted before the source issue, so any stats
        // snapshot (inner meter read first) obeys
        // `queries_issued <= cache_misses`.
        let db = CachedWebDb::new(InMemoryWebDb::new(relation()), 1024);
        let mut handles = Vec::new();
        for worker_id in 0..4u32 {
            let worker = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250u32 {
                    let p = f64::from(worker_id * 1000 + i) / 10.0;
                    worker
                        .try_query(&SelectionQuery::new(vec![price_ge(p)]))
                        .unwrap();
                }
            }));
        }
        let reader = db.clone();
        let checker = std::thread::spawn(move || {
            for _ in 0..200 {
                let s = reader.stats();
                assert!(
                    s.queries_issued <= s.cache_misses,
                    "issue without a counted miss: {s:?}"
                );
            }
        });
        for h in handles {
            h.join().unwrap();
        }
        checker.join().unwrap();
        let s = db.stats();
        assert_eq!(s.cache_misses, 1000);
        assert_eq!(s.queries_issued, 1000);
        assert_eq!(s.cache_hits, 0);
    }

    #[test]
    fn default_constructor_keeps_single_stripe_semantics() {
        let db = CachedWebDb::new(InMemoryWebDb::new(relation()), 16);
        assert_eq!(db.stripes(), DEFAULT_CACHE_STRIPES);
        assert_eq!(db.stripes(), 1);
    }

    #[test]
    fn striped_cache_keys_canonically_and_replays_pages() {
        let db = CachedWebDb::with_stripes(InMemoryWebDb::new(relation()), 64, 8);
        assert_eq!(db.stripes(), 8);
        let a = SelectionQuery::new(vec![make_eq("Toyota"), price_ge(8000.0)]);
        let b = SelectionQuery::new(vec![price_ge(8000.0), make_eq("Toyota"), make_eq("Toyota")]);
        let pa = db.try_query(&a).unwrap();
        let pb = db.try_query(&b).unwrap();
        assert_eq!(pa, pb);
        assert_eq!(db.stats().cache_hits, 1, "stripe choice must be canonical");
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn striped_concurrent_replay_hits_across_threads() {
        // Fill from one thread, then replay the same workload from many:
        // every stripe must serve its keys to every worker.
        let db = CachedWebDb::with_stripes(InMemoryWebDb::new(relation()), 1024, 8);
        let queries: Vec<SelectionQuery> = (0..40)
            .map(|i| SelectionQuery::new(vec![price_ge(f64::from(i) * 250.0)]))
            .collect();
        for q in &queries {
            db.try_query(q).unwrap();
        }
        let issued_after_fill = db.stats().queries_issued;
        assert_eq!(issued_after_fill, 40);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let worker = db.clone();
            let queries = queries.clone();
            handles.push(std::thread::spawn(move || {
                for q in &queries {
                    worker.try_query(q).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = db.stats();
        assert_eq!(s.queries_issued, 40, "replays must all hit the memo");
        assert_eq!(s.cache_hits, 4 * 40);
    }

    #[test]
    fn striped_capacity_is_enforced_per_stripe() {
        // 8 keys through 4 stripes with a total capacity of 4: each
        // stripe holds at most ceil(4/4) = 1 page, so the cache holds at
        // most one page per stripe regardless of key skew.
        let db = CachedWebDb::with_stripes(InMemoryWebDb::new(relation()), 4, 4);
        for i in 0..8 {
            db.try_query(&SelectionQuery::new(vec![price_ge(f64::from(i) * 500.0)]))
                .unwrap();
        }
        assert!(db.len() <= 4, "len {} exceeds stripe bound", db.len());
        let s = db.stats();
        assert_eq!(s.cache_misses, 8);
        assert_eq!(s.cache_evictions as usize + db.len(), 8);
    }

    #[test]
    fn clones_share_memo_and_counters() {
        let db = CachedWebDb::new(InMemoryWebDb::new(relation()), 16);
        let q = SelectionQuery::new(vec![make_eq("Toyota")]);
        db.clone().try_query(&q).unwrap();
        db.try_query(&q).unwrap();
        assert_eq!(db.stats().cache_hits, 1);
        assert_eq!(db.capacity(), 16);
    }
}
