use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use aimq_catalog::{Schema, SelectionQuery, Tuple};

use crate::{execute, Relation};

/// Why a probe against an autonomous source failed.
///
/// The taxonomy mirrors what real Web forms do under load (see DESIGN.md,
/// "Fault model & degradation semantics"): the first three variants are
/// *retryable* — the same query may succeed moments later — while
/// [`QueryError::Unavailable`] is terminal for the session (the source is
/// down, a circuit breaker is open, or a probe budget is exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The source did not answer within its deadline.
    Timeout,
    /// A transient failure (dropped connection, 5xx); retry may succeed.
    Transient,
    /// The source is shedding load and asks the client to come back after
    /// `retry_after` virtual-clock ticks (an HTTP 429 `Retry-After`).
    RateLimited {
        /// Ticks to wait before the source will accept another query.
        retry_after: u64,
    },
    /// The source is gone for this session; retrying is pointless.
    Unavailable,
}

impl QueryError {
    /// Whether a retry of the same query can possibly succeed.
    pub fn is_retryable(self) -> bool {
        !matches!(self, QueryError::Unavailable)
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Timeout => write!(f, "source timed out"),
            QueryError::Transient => write!(f, "transient source failure"),
            QueryError::RateLimited { retry_after } => {
                write!(f, "source rate-limited (retry after {retry_after} ticks)")
            }
            QueryError::Unavailable => write!(f, "source unavailable"),
        }
    }
}

impl std::error::Error for QueryError {}

/// One page of results from a boolean probe query.
///
/// Real Web form interfaces cap the result page; `truncated` tells the
/// caller whether the page is the *complete* answer set of the query or
/// merely its first tuples. A small `tuples` with `truncated == false` is
/// an honest small answer; the same tuples with `truncated == true` mean
/// the query matched more than the source was willing to return.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPage {
    /// The satisfying tuples the source returned (possibly clipped).
    pub tuples: Vec<Tuple>,
    /// `true` when the source clipped the answer set to its page limit.
    pub truncated: bool,
}

impl QueryPage {
    /// A complete (untruncated) page.
    pub fn complete(tuples: Vec<Tuple>) -> Self {
        QueryPage {
            tuples,
            truncated: false,
        }
    }
}

/// Access meter for a Web database: how many boolean queries were issued
/// and how many tuples came back, plus the fault-tolerance counters.
///
/// The paper's efficiency measure (Section 6.3),
/// `Work/RelevantTuple = |T_Extracted| / |T_Relevant|`, needs exactly
/// `tuples_returned`; `queries_issued` additionally lets the benchmarks
/// report probing cost. The remaining counters are filled in by the
/// fault-tolerance decorators ([`crate::FaultInjectingWebDb`],
/// [`crate::ResilientWebDb`]) and by page truncation, so callers can tell
/// a clean run from a degraded one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessStats {
    /// Number of selection queries attempted against the source (failed
    /// attempts included — a timed-out query was still issued).
    pub queries_issued: u64,
    /// Total number of tuples returned across all queries, after any
    /// page truncation (what the caller actually saw).
    pub tuples_returned: u64,
    /// Probe attempts that ended in a [`QueryError`], including attempts
    /// later absorbed by a retry and fast-fail rejections (open breaker,
    /// exhausted probe budget).
    pub failures: u64,
    /// Re-issues of a failed query by a resilience policy.
    pub retries: u64,
    /// Queries whose result page was clipped to the source's page limit.
    pub truncated_queries: u64,
    /// Times a circuit breaker transitioned closed → open.
    pub breaker_trips: u64,
    /// Probes answered from a [`crate::CachedWebDb`] memo without touching
    /// the source (not counted in [`AccessStats::queries_issued`]).
    pub cache_hits: u64,
    /// Probes that missed the cache and were forwarded to the source.
    pub cache_misses: u64,
    /// Cached pages evicted to respect the cache capacity bound.
    pub cache_evictions: u64,
}

impl AccessStats {
    /// Per-field difference `self - earlier`, saturating at zero — the
    /// usual "stats delta across one engine call" computation.
    #[must_use]
    pub fn since(&self, earlier: &AccessStats) -> AccessStats {
        AccessStats {
            queries_issued: self.queries_issued.saturating_sub(earlier.queries_issued),
            tuples_returned: self.tuples_returned.saturating_sub(earlier.tuples_returned),
            failures: self.failures.saturating_sub(earlier.failures),
            retries: self.retries.saturating_sub(earlier.retries),
            truncated_queries: self
                .truncated_queries
                .saturating_sub(earlier.truncated_queries),
            breaker_trips: self.breaker_trips.saturating_sub(earlier.breaker_trips),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
        }
    }
}

/// Lock a stats mutex, recovering from poisoning instead of panicking:
/// the protected value is a plain counter block, always valid.
pub(crate) fn lock_stats<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The autonomous Web database interface of the paper (Section 3.1).
///
/// Implementations expose *only* the boolean query-processing model: given
/// a conjunctive selection, return the satisfying tuples, unranked. AIMQ
/// must work without altering the underlying data model — everything it
/// learns, it learns by issuing queries through this trait.
///
/// The primary access point is [`WebDatabase::try_query`]: sources are
/// *fallible* (they time out, rate-limit, truncate and disappear), and the
/// engine degrades gracefully around those failures. The infallible
/// [`WebDatabase::query`] remains as a migration shim for callers that
/// predate the fault model; it swallows errors and truncation.
pub trait WebDatabase {
    /// The relation schema the database projects (Web form fields).
    fn schema(&self) -> &Schema;

    /// Evaluate a boolean selection query, returning one result page or a
    /// typed failure.
    fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError>;

    /// Legacy infallible shim: evaluate `query`, mapping any failure to an
    /// empty result and dropping the truncation flag. New code should call
    /// [`WebDatabase::try_query`] and handle degradation explicitly.
    fn query(&self, query: &SelectionQuery) -> Vec<Tuple> {
        self.try_query(query)
            .map(|page| page.tuples)
            .unwrap_or_default()
    }

    /// Snapshot of the access meter. All fields are captured atomically
    /// under one lock, so `Work/RelevantTuple` derived from a snapshot is
    /// internally consistent even under concurrent probing.
    fn stats(&self) -> AccessStats;

    /// Reset the access meter (used between experiment runs).
    fn reset_stats(&self);
}

/// An in-memory [`WebDatabase`] over a [`Relation`], standing in for the
/// paper's MySQL-backed Yahoo Autos / Census deployments.
///
/// Cloning shares the underlying relation *and* the meter.
#[derive(Debug, Clone)]
pub struct InMemoryWebDb {
    relation: Arc<Relation>,
    stats: Arc<Mutex<AccessStats>>,
    /// Maximum tuples returned per query (`None` = unlimited). Real Web
    /// form interfaces cap result pages; AIMQ must cope with truncation.
    result_limit: Option<usize>,
}

impl InMemoryWebDb {
    /// Wrap a relation.
    pub fn new(relation: Relation) -> Self {
        InMemoryWebDb {
            relation: Arc::new(relation),
            stats: Arc::new(Mutex::new(AccessStats::default())),
            result_limit: None,
        }
    }

    /// Cap every query's result at `limit` tuples, simulating a form
    /// interface that only serves the first page of matches. Clipped
    /// pages are flagged via [`QueryPage::truncated`] and counted in
    /// [`AccessStats::truncated_queries`].
    #[must_use]
    pub fn with_result_limit(mut self, limit: usize) -> Self {
        self.result_limit = Some(limit);
        self
    }

    /// Borrow the wrapped relation. Only evaluation/bench code uses this
    /// (to draw ground-truth workloads); the AIMQ engine sticks to the
    /// trait surface.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }
}

impl WebDatabase for InMemoryWebDb {
    fn schema(&self) -> &Schema {
        self.relation.schema()
    }

    fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError> {
        let mut tuples = execute(&self.relation, query);
        let truncated = match self.result_limit {
            Some(limit) if tuples.len() > limit => {
                tuples.truncate(limit);
                true
            }
            _ => false,
        };
        let mut stats = lock_stats(&self.stats);
        stats.queries_issued += 1;
        stats.tuples_returned += tuples.len() as u64;
        if truncated {
            stats.truncated_queries += 1;
        }
        drop(stats);
        Ok(QueryPage { tuples, truncated })
    }

    fn stats(&self) -> AccessStats {
        *lock_stats(&self.stats)
    }

    fn reset_stats(&self) {
        *lock_stats(&self.stats) = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_catalog::{AttrId, Predicate, Value};

    fn db() -> InMemoryWebDb {
        let schema = Schema::builder("R")
            .categorical("Make")
            .numeric("Price")
            .build()
            .unwrap();
        let tuples: Vec<Tuple> = [("Toyota", 10000.0), ("Honda", 9000.0), ("Toyota", 7000.0)]
            .iter()
            .map(|&(m, p)| Tuple::new(&schema, vec![Value::cat(m), Value::num(p)]).unwrap())
            .collect();
        InMemoryWebDb::new(Relation::from_tuples(schema, &tuples).unwrap())
    }

    #[test]
    fn boolean_query_model() {
        let db = db();
        let q = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("Toyota"))]);
        let answers = db.query(&q);
        assert_eq!(answers.len(), 2);
        assert!(answers.iter().all(|t| q.matches(t)));
    }

    #[test]
    fn try_query_reports_complete_pages() {
        let db = db();
        let page = db.try_query(&SelectionQuery::all()).unwrap();
        assert_eq!(page.tuples.len(), 3);
        assert!(!page.truncated);
        assert_eq!(db.stats().truncated_queries, 0);
    }

    #[test]
    fn meter_counts_queries_and_tuples() {
        let db = db();
        assert_eq!(db.stats(), AccessStats::default());
        let q = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("Toyota"))]);
        db.query(&q);
        db.query(&SelectionQuery::all());
        let s = db.stats();
        assert_eq!(s.queries_issued, 2);
        assert_eq!(s.tuples_returned, 2 + 3);
        assert_eq!(s.failures, 0);
        db.reset_stats();
        assert_eq!(db.stats(), AccessStats::default());
    }

    #[test]
    fn result_limit_truncates_pages_and_counts_it() {
        let db = db().with_result_limit(1);
        let page = db.try_query(&SelectionQuery::all()).unwrap();
        assert_eq!(page.tuples.len(), 1);
        assert!(page.truncated, "clipped page must be flagged");
        let s = db.stats();
        assert_eq!(s.tuples_returned, 1);
        assert_eq!(s.truncated_queries, 1);

        // A query whose full answer fits the page is NOT truncated.
        let q = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("Honda"))]);
        let page = db.try_query(&q).unwrap();
        assert!(!page.truncated);
        assert_eq!(db.stats().truncated_queries, 1);
    }

    #[test]
    fn result_limit_exactly_at_len_is_not_truncation() {
        let db = db().with_result_limit(3);
        let page = db.try_query(&SelectionQuery::all()).unwrap();
        assert_eq!(page.tuples.len(), 3);
        assert!(!page.truncated);
        assert_eq!(db.stats().truncated_queries, 0);
    }

    #[test]
    fn clones_share_meter() {
        let db = db();
        let db2 = db.clone();
        db2.query(&SelectionQuery::all());
        assert_eq!(db.stats().queries_issued, 1);
    }

    #[test]
    fn stats_snapshot_is_single_lock_consistent() {
        // Hammer the meter from several threads; every snapshot must obey
        // the invariant `tuples_returned == 3 * queries_issued` (each
        // all-query returns all 3 tuples), which two separate relaxed
        // atomic loads would not guarantee.
        let db = db();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let worker = db.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    worker.query(&SelectionQuery::all());
                }
            }));
        }
        let reader = db.clone();
        let checker = std::thread::spawn(move || {
            for _ in 0..200 {
                let s = reader.stats();
                assert_eq!(
                    s.tuples_returned,
                    3 * s.queries_issued,
                    "snapshot tore: {s:?}"
                );
            }
        });
        for h in handles {
            h.join().unwrap();
        }
        checker.join().unwrap();
        let s = db.stats();
        assert_eq!(s.queries_issued, 2000);
        assert_eq!(s.tuples_returned, 6000);
    }

    #[test]
    fn stats_delta_saturates() {
        let a = AccessStats {
            queries_issued: 5,
            ..AccessStats::default()
        };
        let b = AccessStats {
            queries_issued: 2,
            tuples_returned: 7,
            ..AccessStats::default()
        };
        let d = b.since(&a);
        assert_eq!(d.queries_issued, 0);
        assert_eq!(d.tuples_returned, 7);
    }

    #[test]
    fn stats_delta_covers_cache_counters() {
        let earlier = AccessStats {
            cache_hits: 10,
            cache_misses: 4,
            cache_evictions: 2,
            ..AccessStats::default()
        };
        let later = AccessStats {
            cache_hits: 25,
            cache_misses: 5,
            cache_evictions: 1,
            ..AccessStats::default()
        };
        let d = later.since(&earlier);
        assert_eq!(d.cache_hits, 15);
        assert_eq!(d.cache_misses, 1);
        assert_eq!(d.cache_evictions, 0, "deltas saturate at zero");
    }

    #[test]
    fn query_error_display_and_retryability() {
        assert!(QueryError::Timeout.is_retryable());
        assert!(QueryError::Transient.is_retryable());
        assert!(QueryError::RateLimited { retry_after: 3 }.is_retryable());
        assert!(!QueryError::Unavailable.is_retryable());
        assert!(QueryError::RateLimited { retry_after: 3 }
            .to_string()
            .contains("3 ticks"));
    }
}
