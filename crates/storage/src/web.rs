use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use aimq_catalog::{Json, Schema, SelectionQuery, Tuple};
use serde::{Deserialize, Serialize};

use crate::{execute, Relation};

/// Why a probe against an autonomous source failed.
///
/// The taxonomy mirrors what real Web forms do under load (see DESIGN.md,
/// "Fault model & degradation semantics"): the first three variants are
/// *retryable* — the same query may succeed moments later — while
/// [`QueryError::Unavailable`] is terminal for the session (the source is
/// down, a circuit breaker is open, or a probe budget is exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The source did not answer within its deadline.
    Timeout,
    /// A transient failure (dropped connection, 5xx); retry may succeed.
    Transient,
    /// The source is shedding load and asks the client to come back after
    /// `retry_after` virtual-clock ticks (an HTTP 429 `Retry-After`).
    RateLimited {
        /// Ticks to wait before the source will accept another query.
        retry_after: u64,
    },
    /// The source is gone for this session; retrying is pointless.
    Unavailable,
}

impl QueryError {
    /// Whether a retry of the same query can possibly succeed.
    pub fn is_retryable(self) -> bool {
        !matches!(self, QueryError::Unavailable)
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Timeout => write!(f, "source timed out"),
            QueryError::Transient => write!(f, "transient source failure"),
            QueryError::RateLimited { retry_after } => {
                write!(f, "source rate-limited (retry after {retry_after} ticks)")
            }
            QueryError::Unavailable => write!(f, "source unavailable"),
        }
    }
}

impl std::error::Error for QueryError {}

/// One page of results from a boolean probe query.
///
/// Real Web form interfaces cap the result page; `truncated` tells the
/// caller whether the page is the *complete* answer set of the query or
/// merely its first tuples. A small `tuples` with `truncated == false` is
/// an honest small answer; the same tuples with `truncated == true` mean
/// the query matched more than the source was willing to return.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPage {
    /// The satisfying tuples the source returned (possibly clipped).
    pub tuples: Vec<Tuple>,
    /// `true` when the source clipped the answer set to its page limit.
    pub truncated: bool,
}

impl QueryPage {
    /// A complete (untruncated) page.
    pub fn complete(tuples: Vec<Tuple>) -> Self {
        QueryPage {
            tuples,
            truncated: false,
        }
    }
}

/// Access meter for a Web database: how many boolean queries were issued
/// and how many tuples came back, plus the fault-tolerance counters.
///
/// The paper's efficiency measure (Section 6.3),
/// `Work/RelevantTuple = |T_Extracted| / |T_Relevant|`, needs exactly
/// `tuples_returned`; `queries_issued` additionally lets the benchmarks
/// report probing cost. The remaining counters are filled in by the
/// fault-tolerance decorators ([`crate::FaultInjectingWebDb`],
/// [`crate::ResilientWebDb`]) and by page truncation, so callers can tell
/// a clean run from a degraded one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AccessStats {
    /// Number of selection queries attempted against the source (failed
    /// attempts included — a timed-out query was still issued).
    pub queries_issued: u64,
    /// Total number of tuples returned across all queries, after any
    /// page truncation (what the caller actually saw).
    pub tuples_returned: u64,
    /// Probe attempts that ended in a [`QueryError`], including attempts
    /// later absorbed by a retry and fast-fail rejections (open breaker,
    /// exhausted probe budget).
    pub failures: u64,
    /// Re-issues of a failed query by a resilience policy.
    pub retries: u64,
    /// Queries whose result page was clipped to the source's page limit.
    pub truncated_queries: u64,
    /// Times a circuit breaker transitioned closed → open.
    pub breaker_trips: u64,
    /// Times a half-open trial probe succeeded and closed the breaker.
    pub breaker_recoveries: u64,
    /// Probes answered from a [`crate::CachedWebDb`] memo without touching
    /// the source (not counted in [`AccessStats::queries_issued`]).
    pub cache_hits: u64,
    /// Probes that missed the cache and were forwarded to the source.
    pub cache_misses: u64,
    /// Cached pages evicted to respect the cache capacity bound.
    pub cache_evictions: u64,
}

impl AccessStats {
    /// Per-field difference `self - earlier`, saturating at zero — the
    /// usual "stats delta across one engine call" computation.
    #[must_use]
    pub fn since(&self, earlier: &AccessStats) -> AccessStats {
        AccessStats {
            queries_issued: self.queries_issued.saturating_sub(earlier.queries_issued),
            tuples_returned: self.tuples_returned.saturating_sub(earlier.tuples_returned),
            failures: self.failures.saturating_sub(earlier.failures),
            retries: self.retries.saturating_sub(earlier.retries),
            truncated_queries: self
                .truncated_queries
                .saturating_sub(earlier.truncated_queries),
            breaker_trips: self.breaker_trips.saturating_sub(earlier.breaker_trips),
            breaker_recoveries: self
                .breaker_recoveries
                .saturating_sub(earlier.breaker_recoveries),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
        }
    }

    /// Per-field saturating sum of two meters, used by federating
    /// decorators that aggregate several member sources' stats into one
    /// view.
    #[must_use]
    pub fn merge(&self, other: &AccessStats) -> AccessStats {
        AccessStats {
            queries_issued: self.queries_issued.saturating_add(other.queries_issued),
            tuples_returned: self.tuples_returned.saturating_add(other.tuples_returned),
            failures: self.failures.saturating_add(other.failures),
            retries: self.retries.saturating_add(other.retries),
            truncated_queries: self
                .truncated_queries
                .saturating_add(other.truncated_queries),
            breaker_trips: self.breaker_trips.saturating_add(other.breaker_trips),
            breaker_recoveries: self
                .breaker_recoveries
                .saturating_add(other.breaker_recoveries),
            cache_hits: self.cache_hits.saturating_add(other.cache_hits),
            cache_misses: self.cache_misses.saturating_add(other.cache_misses),
            cache_evictions: self.cache_evictions.saturating_add(other.cache_evictions),
        }
    }

    /// The meter as a deterministic [`Json`] object — the single
    /// serialization path shared by the HTTP `/stats` route and the
    /// `serve-bench` report (field order is declaration order).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("queries_issued", Json::Num(self.queries_issued as f64)),
            ("tuples_returned", Json::Num(self.tuples_returned as f64)),
            ("failures", Json::Num(self.failures as f64)),
            ("retries", Json::Num(self.retries as f64)),
            (
                "truncated_queries",
                Json::Num(self.truncated_queries as f64),
            ),
            ("breaker_trips", Json::Num(self.breaker_trips as f64)),
            (
                "breaker_recoveries",
                Json::Num(self.breaker_recoveries as f64),
            ),
            ("cache_hits", Json::Num(self.cache_hits as f64)),
            ("cache_misses", Json::Num(self.cache_misses as f64)),
            ("cache_evictions", Json::Num(self.cache_evictions as f64)),
        ])
    }
}

/// Lock a stats mutex, recovering from poisoning instead of panicking:
/// the protected value is a plain counter block, always valid.
pub(crate) fn lock_stats<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // aimq-lint: allow(lock-discipline) -- generic helper; the lock family
    // is attributed at each call site, not here
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Number of counters in [`AccessStats`], and the order they occupy in a
/// [`StatsCell`]'s slot array.
const STAT_SLOTS: usize = 10;

impl AccessStats {
    fn to_slots(self) -> [u64; STAT_SLOTS] {
        [
            self.queries_issued,
            self.tuples_returned,
            self.failures,
            self.retries,
            self.truncated_queries,
            self.breaker_trips,
            self.breaker_recoveries,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
        ]
    }

    fn from_slots(s: [u64; STAT_SLOTS]) -> AccessStats {
        let [queries_issued, tuples_returned, failures, retries, truncated_queries, breaker_trips, breaker_recoveries, cache_hits, cache_misses, cache_evictions] =
            s;
        AccessStats {
            queries_issued,
            tuples_returned,
            failures,
            retries,
            truncated_queries,
            breaker_trips,
            breaker_recoveries,
            cache_hits,
            cache_misses,
            cache_evictions,
        }
    }
}

/// A shared access meter for hot probe paths: one `AtomicU64` per
/// [`AccessStats`] counter guarded by a seqlock version word, so writers
/// never park on a mutex (the single-lock `Mutex<AccessStats>` design
/// serialized every probe of every worker through one cache line's lock)
/// while [`StatsCell::snapshot`] still returns a *torn-free* stats block —
/// cross-counter invariants such as `tuples_returned` being consistent
/// with `queries_issued` hold in every snapshot, which per-counter
/// relaxed loads alone would not guarantee.
///
/// Protocol: a writer CASes the version from even to odd (spinning out
/// competing writers), applies its relaxed counter updates, and releases
/// with `version + 2`. A reader loads an even version, reads the slots,
/// and retries unless the version is unchanged afterwards. Writer
/// critical sections are a handful of uncontended atomic adds, so reader
/// retries are rare and writers spin for nanoseconds, not syscalls.
/// Every access is an atomic operation — the cell is ThreadSanitizer
/// clean by construction.
#[derive(Debug)]
pub struct StatsCell {
    /// Seqlock word: odd while a write is in progress.
    // aimq-atomic: seqlock -- version word; Acquire/Release transitions
    // fence the relaxed slot accesses between them
    version: AtomicU64,
    /// One slot per `AccessStats` field, in `to_slots` order.
    // aimq-atomic: seqlock -- data slots; ordering supplied by the
    // `version` word's Acquire/Release protocol
    slots: [AtomicU64; STAT_SLOTS],
}

impl Default for StatsCell {
    fn default() -> Self {
        StatsCell {
            version: AtomicU64::new(0),
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl StatsCell {
    /// An all-zero meter.
    pub fn new() -> Self {
        StatsCell::default()
    }

    /// Enter the write section: flip the version to odd, excluding both
    /// competing writers and in-flight readers. Returns the even version
    /// observed on entry.
    fn begin_write(&self) -> u64 {
        let mut v = self.version.load(Ordering::Relaxed);
        loop {
            if v % 2 == 1 {
                // The writer holding the odd version may have been
                // preempted; yielding beats burning the timeslice,
                // especially on single-core hosts.
                std::thread::yield_now();
                v = self.version.load(Ordering::Relaxed);
                continue;
            }
            match self
                .version
                .compare_exchange_weak(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
            {
                Ok(_) => return v,
                Err(seen) => v = seen,
            }
        }
    }

    /// Add every nonzero counter of `delta` to the meter, atomically with
    /// respect to [`StatsCell::snapshot`].
    pub fn record(&self, delta: AccessStats) {
        let v = self.begin_write();
        for (slot, d) in self.slots.iter().zip(delta.to_slots()) {
            if d != 0 {
                // aimq-atomic: seqlock -- slot write inside the odd-version window
                slot.fetch_add(d, Ordering::Relaxed);
            }
        }
        self.version.store(v + 2, Ordering::Release);
    }

    /// Zero every counter (used between experiment runs).
    pub fn reset(&self) {
        let v = self.begin_write();
        for slot in &self.slots {
            // aimq-atomic: seqlock -- slot write inside the odd-version window
            slot.store(0, Ordering::Relaxed);
        }
        self.version.store(v + 2, Ordering::Release);
    }

    /// A coherent snapshot of all counters: retries until it reads a
    /// quiescent version, so no write is ever observed half-applied.
    pub fn snapshot(&self) -> AccessStats {
        loop {
            let before = self.version.load(Ordering::Acquire);
            if before % 2 == 1 {
                std::thread::yield_now();
                continue;
            }
            let mut slots = [0u64; STAT_SLOTS];
            for (out, slot) in slots.iter_mut().zip(&self.slots) {
                // aimq-atomic: seqlock -- slot read validated by the version recheck
                *out = slot.load(Ordering::Relaxed);
            }
            std::sync::atomic::fence(Ordering::Acquire);
            if self.version.load(Ordering::Relaxed) == before {
                return AccessStats::from_slots(slots);
            }
        }
    }
}

/// The autonomous Web database interface of the paper (Section 3.1).
///
/// Implementations expose *only* the boolean query-processing model: given
/// a conjunctive selection, return the satisfying tuples, unranked. AIMQ
/// must work without altering the underlying data model — everything it
/// learns, it learns by issuing queries through this trait.
///
/// The primary access point is [`WebDatabase::try_query`]: sources are
/// *fallible* (they time out, rate-limit, truncate and disappear), and the
/// engine degrades gracefully around those failures. The infallible
/// [`WebDatabase::query`] remains as a migration shim for callers that
/// predate the fault model; it swallows errors and truncation.
///
/// Implementations must be `Send + Sync`: the serving runtime
/// (`aimq-serve`) shares one decorated source across a pool of worker
/// threads, each probing through `&self`. Every implementation in this
/// crate carries its mutable state behind `Arc<Mutex<_>>` or atomics, so
/// the bound is structural, not a burden.
pub trait WebDatabase: Send + Sync {
    /// The relation schema the database projects (Web form fields).
    fn schema(&self) -> &Schema;

    /// Evaluate a boolean selection query, returning one result page or a
    /// typed failure.
    fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError>;

    /// Legacy infallible shim: evaluate `query`, mapping any failure to an
    /// empty result and dropping the truncation flag. New code should call
    /// [`WebDatabase::try_query`] and handle degradation explicitly.
    // aimq-probe: entry -- legacy shim over try_query; access accounting lives in the implementor's AccessStats meter
    fn query(&self, query: &SelectionQuery) -> Vec<Tuple> {
        self.try_query(query)
            .map(|page| page.tuples)
            .unwrap_or_default()
    }

    /// Evaluate an ordered relaxation plan of selections, returning one
    /// result per query in plan order.
    ///
    /// The default is the plain sequential loop every caller would
    /// otherwise write — query `i+1` is issued only after query `i`
    /// resolved, and the loop stops after the first *terminal*
    /// (non-retryable) error, returning the prefix evaluated so far.
    /// Decorators inherit this default, so fault injection, retries,
    /// caching and deadlines see the exact same per-query traffic as
    /// query-at-a-time probing; only terminal sources like
    /// [`InMemoryWebDb`] override it to share evaluation work across the
    /// plan's overlapping queries (the answers must stay byte-identical).
    // aimq-probe: entry -- sequential plan loop over try_query; per-query accounting unchanged
    fn try_query_plan(&self, plan: &[SelectionQuery]) -> Vec<Result<QueryPage, QueryError>> {
        let mut out = Vec::with_capacity(plan.len());
        for q in plan {
            let result = self.try_query(q);
            let terminal = matches!(&result, Err(e) if !e.is_retryable());
            out.push(result);
            if terminal {
                break;
            }
        }
        out
    }

    /// Snapshot of the access meter. All fields are captured atomically
    /// under one lock, so `Work/RelevantTuple` derived from a snapshot is
    /// internally consistent even under concurrent probing.
    fn stats(&self) -> AccessStats;

    /// Reset the access meter (used between experiment runs).
    fn reset_stats(&self);

    /// Per-source health breakdown, when this database federates several
    /// member sources (see `FederatedWebDb`). Single-source databases
    /// return `None`; decorators forward their inner database's answer so
    /// the breakdown survives caching/resilience/deadline wrapping.
    fn source_health(&self) -> Option<Vec<crate::SourceHealth>> {
        None
    }
}

/// An in-memory [`WebDatabase`] over a [`Relation`], standing in for the
/// paper's MySQL-backed Yahoo Autos / Census deployments.
///
/// Cloning shares the underlying relation *and* the meter. The meter is a
/// [`StatsCell`], so concurrent workers probing one shared source never
/// serialize on a stats mutex.
#[derive(Debug, Clone)]
pub struct InMemoryWebDb {
    relation: Arc<Relation>,
    stats: Arc<StatsCell>,
    /// Maximum tuples returned per query (`None` = unlimited). Real Web
    /// form interfaces cap result pages; AIMQ must cope with truncation.
    result_limit: Option<usize>,
}

impl InMemoryWebDb {
    /// Wrap a relation.
    pub fn new(relation: Relation) -> Self {
        InMemoryWebDb {
            relation: Arc::new(relation),
            stats: Arc::new(StatsCell::new()),
            result_limit: None,
        }
    }

    /// Cap every query's result at `limit` tuples, simulating a form
    /// interface that only serves the first page of matches. Clipped
    /// pages are flagged via [`QueryPage::truncated`] and counted in
    /// [`AccessStats::truncated_queries`].
    #[must_use]
    pub fn with_result_limit(mut self, limit: usize) -> Self {
        self.result_limit = Some(limit);
        self
    }

    /// Borrow the wrapped relation. Only evaluation/bench code uses this
    /// (to draw ground-truth workloads); the AIMQ engine sticks to the
    /// trait surface.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Clip `tuples` to the result limit and record the query in the
    /// meter — the one shared tail of [`WebDatabase::try_query`] and the
    /// plan override, so both paths meter identically.
    fn page_from_tuples(&self, mut tuples: Vec<Tuple>) -> QueryPage {
        let truncated = match self.result_limit {
            Some(limit) if tuples.len() > limit => {
                tuples.truncate(limit);
                true
            }
            _ => false,
        };
        self.stats.record(AccessStats {
            queries_issued: 1,
            tuples_returned: tuples.len() as u64,
            truncated_queries: u64::from(truncated),
            ..AccessStats::default()
        });
        QueryPage { tuples, truncated }
    }
}

impl WebDatabase for InMemoryWebDb {
    fn schema(&self) -> &Schema {
        self.relation.schema()
    }

    fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError> {
        Ok(self.page_from_tuples(execute(&self.relation, query)))
    }

    /// Shared-plan override: one [`crate::PlanExecutor`] evaluates the
    /// whole plan, so the queries' common subexpressions (above all the
    /// base intersection every relaxed query contains) are computed once.
    /// Pages and per-query meter records are byte-identical to the
    /// default sequential loop; an in-memory source never fails, so the
    /// terminal-stop clause is vacuous here.
    fn try_query_plan(&self, plan: &[SelectionQuery]) -> Vec<Result<QueryPage, QueryError>> {
        let mut exec = crate::PlanExecutor::new(&self.relation);
        plan.iter()
            .map(|q| {
                let tuples = exec
                    .execute(q)
                    .into_iter()
                    .map(|r| self.relation.tuple(r))
                    .collect();
                Ok(self.page_from_tuples(tuples))
            })
            .collect()
    }

    fn stats(&self) -> AccessStats {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_catalog::{AttrId, Predicate, Value};

    fn db() -> InMemoryWebDb {
        let schema = Schema::builder("R")
            .categorical("Make")
            .numeric("Price")
            .build()
            .unwrap();
        let tuples: Vec<Tuple> = [("Toyota", 10000.0), ("Honda", 9000.0), ("Toyota", 7000.0)]
            .iter()
            .map(|&(m, p)| Tuple::new(&schema, vec![Value::cat(m), Value::num(p)]).unwrap())
            .collect();
        InMemoryWebDb::new(Relation::from_tuples(schema, &tuples).unwrap())
    }

    #[test]
    fn boolean_query_model() {
        let db = db();
        let q = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("Toyota"))]);
        let answers = db.query(&q);
        assert_eq!(answers.len(), 2);
        assert!(answers.iter().all(|t| q.matches(t)));
    }

    #[test]
    fn try_query_reports_complete_pages() {
        let db = db();
        let page = db.try_query(&SelectionQuery::all()).unwrap();
        assert_eq!(page.tuples.len(), 3);
        assert!(!page.truncated);
        assert_eq!(db.stats().truncated_queries, 0);
    }

    #[test]
    fn meter_counts_queries_and_tuples() {
        let db = db();
        assert_eq!(db.stats(), AccessStats::default());
        let q = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("Toyota"))]);
        db.query(&q);
        db.query(&SelectionQuery::all());
        let s = db.stats();
        assert_eq!(s.queries_issued, 2);
        assert_eq!(s.tuples_returned, 2 + 3);
        assert_eq!(s.failures, 0);
        db.reset_stats();
        assert_eq!(db.stats(), AccessStats::default());
    }

    #[test]
    fn result_limit_truncates_pages_and_counts_it() {
        let db = db().with_result_limit(1);
        let page = db.try_query(&SelectionQuery::all()).unwrap();
        assert_eq!(page.tuples.len(), 1);
        assert!(page.truncated, "clipped page must be flagged");
        let s = db.stats();
        assert_eq!(s.tuples_returned, 1);
        assert_eq!(s.truncated_queries, 1);

        // A query whose full answer fits the page is NOT truncated.
        let q = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("Honda"))]);
        let page = db.try_query(&q).unwrap();
        assert!(!page.truncated);
        assert_eq!(db.stats().truncated_queries, 1);
    }

    #[test]
    fn result_limit_exactly_at_len_is_not_truncation() {
        let db = db().with_result_limit(3);
        let page = db.try_query(&SelectionQuery::all()).unwrap();
        assert_eq!(page.tuples.len(), 3);
        assert!(!page.truncated);
        assert_eq!(db.stats().truncated_queries, 0);
    }

    #[test]
    fn clones_share_meter() {
        let db = db();
        let db2 = db.clone();
        db2.query(&SelectionQuery::all());
        assert_eq!(db.stats().queries_issued, 1);
    }

    #[test]
    fn stats_snapshot_is_single_lock_consistent() {
        // Hammer the meter from several threads; every snapshot must obey
        // the invariant `tuples_returned == 3 * queries_issued` (each
        // all-query returns all 3 tuples), which two separate relaxed
        // atomic loads would not guarantee. The meter moved from a
        // `Mutex<AccessStats>` to the seqlock `StatsCell`; this test pins
        // that the move kept snapshots torn-free.
        let db = db();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let worker = db.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    worker.query(&SelectionQuery::all());
                }
            }));
        }
        let reader = db.clone();
        let checker = std::thread::spawn(move || {
            for _ in 0..200 {
                let s = reader.stats();
                assert_eq!(
                    s.tuples_returned,
                    3 * s.queries_issued,
                    "snapshot tore: {s:?}"
                );
            }
        });
        for h in handles {
            h.join().unwrap();
        }
        checker.join().unwrap();
        let s = db.stats();
        assert_eq!(s.queries_issued, 2000);
        assert_eq!(s.tuples_returned, 6000);
    }

    #[test]
    fn stats_cell_snapshots_never_tear_across_fields() {
        // Direct cell hammering with a multi-field delta: every snapshot
        // must see `tuples_returned == 7 * queries_issued` and
        // `failures == queries_issued` exactly, or the seqlock tore.
        let cell = Arc::new(StatsCell::new());
        let delta = AccessStats {
            queries_issued: 1,
            tuples_returned: 7,
            failures: 1,
            ..AccessStats::default()
        };
        let mut writers = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            writers.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    cell.record(delta);
                }
            }));
        }
        let reader = Arc::clone(&cell);
        let checker = std::thread::spawn(move || {
            for _ in 0..500 {
                let s = reader.snapshot();
                assert_eq!(s.tuples_returned, 7 * s.queries_issued, "tore: {s:?}");
                assert_eq!(s.failures, s.queries_issued, "tore: {s:?}");
            }
        });
        for w in writers {
            w.join().unwrap();
        }
        checker.join().unwrap();
        let s = cell.snapshot();
        assert_eq!(s.queries_issued, 4000);
        assert_eq!(s.tuples_returned, 28_000);
    }

    #[test]
    fn stats_cell_reset_and_since_semantics() {
        // `since()` over StatsCell snapshots behaves exactly as it did
        // over mutex-guarded stats: deltas across a marker snapshot
        // reflect only the traffic in between.
        let cell = StatsCell::new();
        cell.record(AccessStats {
            queries_issued: 2,
            tuples_returned: 6,
            ..AccessStats::default()
        });
        let marker = cell.snapshot();
        cell.record(AccessStats {
            queries_issued: 1,
            tuples_returned: 3,
            cache_hits: 4,
            ..AccessStats::default()
        });
        let delta = cell.snapshot().since(&marker);
        assert_eq!(delta.queries_issued, 1);
        assert_eq!(delta.tuples_returned, 3);
        assert_eq!(delta.cache_hits, 4);
        cell.reset();
        assert_eq!(cell.snapshot(), AccessStats::default());
    }

    #[test]
    fn stats_delta_saturates() {
        let a = AccessStats {
            queries_issued: 5,
            ..AccessStats::default()
        };
        let b = AccessStats {
            queries_issued: 2,
            tuples_returned: 7,
            ..AccessStats::default()
        };
        let d = b.since(&a);
        assert_eq!(d.queries_issued, 0);
        assert_eq!(d.tuples_returned, 7);
    }

    #[test]
    fn stats_delta_covers_cache_counters() {
        let earlier = AccessStats {
            cache_hits: 10,
            cache_misses: 4,
            cache_evictions: 2,
            ..AccessStats::default()
        };
        let later = AccessStats {
            cache_hits: 25,
            cache_misses: 5,
            cache_evictions: 1,
            ..AccessStats::default()
        };
        let d = later.since(&earlier);
        assert_eq!(d.cache_hits, 15);
        assert_eq!(d.cache_misses, 1);
        assert_eq!(d.cache_evictions, 0, "deltas saturate at zero");
    }

    #[test]
    fn plan_override_matches_sequential_loop() {
        // The shared-plan override must be observationally identical to
        // the default per-query loop: same pages, same meter records.
        let toyota = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("Toyota"))]);
        let cheap = SelectionQuery::new(vec![Predicate {
            attr: AttrId(1),
            op: aimq_catalog::PredicateOp::Lt,
            value: Value::num(9500.0),
        }]);
        let plan = vec![
            toyota.clone(),
            SelectionQuery::all(),
            cheap.clone(),
            toyota.clone(), // duplicate probe: answered from the memo
        ];

        for limit in [None, Some(1), Some(2)] {
            let shared = match limit {
                Some(l) => db().with_result_limit(l),
                None => db(),
            };
            let sequential = shared.clone();
            sequential.reset_stats(); // clones share the meter; split below

            let batched: Vec<_> = shared.try_query_plan(&plan);
            let batch_stats = shared.stats();
            shared.reset_stats();
            let looped: Vec<_> = plan.iter().map(|q| sequential.try_query(q)).collect();
            let loop_stats = sequential.stats();

            assert_eq!(batched, looped, "limit {limit:?}");
            assert_eq!(batch_stats, loop_stats, "limit {limit:?}");
        }
    }

    #[test]
    fn default_plan_loop_runs_every_query() {
        let db = db();
        // Route through the trait's *default* method (not the override)
        // by wrapping in a pass-through implementor.
        struct PassThrough(InMemoryWebDb);
        impl WebDatabase for PassThrough {
            fn schema(&self) -> &Schema {
                self.0.schema()
            }
            // aimq-probe: entry -- test pass-through forwarding to the inner source
            fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError> {
                self.0.try_query(query)
            }
            fn stats(&self) -> AccessStats {
                self.0.stats()
            }
            fn reset_stats(&self) {
                self.0.reset_stats()
            }
        }
        let wrapped = PassThrough(db.clone());
        let plan = vec![
            SelectionQuery::all(),
            SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("Honda"))]),
        ];
        let results = wrapped.try_query_plan(&plan);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].as_ref().unwrap().tuples.len(), 3);
        assert_eq!(results[1].as_ref().unwrap().tuples.len(), 1);
        assert_eq!(db.stats().queries_issued, 2);
    }

    #[test]
    fn query_error_display_and_retryability() {
        assert!(QueryError::Timeout.is_retryable());
        assert!(QueryError::Transient.is_retryable());
        assert!(QueryError::RateLimited { retry_after: 3 }.is_retryable());
        assert!(!QueryError::Unavailable.is_retryable());
        assert!(QueryError::RateLimited { retry_after: 3 }
            .to_string()
            .contains("3 ticks"));
    }
}
