use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aimq_catalog::{Schema, SelectionQuery, Tuple};

use crate::{execute, Relation};

/// Access meter for a Web database: how many boolean queries were issued
/// and how many tuples came back.
///
/// The paper's efficiency measure (Section 6.3),
/// `Work/RelevantTuple = |T_Extracted| / |T_Relevant|`, needs exactly
/// `tuples_returned`; `queries_issued` additionally lets the benchmarks
/// report probing cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessStats {
    /// Number of selection queries executed against the source.
    pub queries_issued: u64,
    /// Total number of tuples returned across all queries.
    pub tuples_returned: u64,
}

/// The autonomous Web database interface of the paper (Section 3.1).
///
/// Implementations expose *only* the boolean query-processing model: given
/// a conjunctive selection, return the satisfying tuples, unranked. AIMQ
/// must work without altering the underlying data model — everything it
/// learns, it learns by issuing queries through this trait.
pub trait WebDatabase {
    /// The relation schema the database projects (Web form fields).
    fn schema(&self) -> &Schema;

    /// Evaluate a boolean selection query and return all satisfying tuples.
    fn query(&self, query: &SelectionQuery) -> Vec<Tuple>;

    /// Snapshot of the access meter.
    fn stats(&self) -> AccessStats;

    /// Reset the access meter (used between experiment runs).
    fn reset_stats(&self);
}

/// An in-memory [`WebDatabase`] over a [`Relation`], standing in for the
/// paper's MySQL-backed Yahoo Autos / Census deployments.
///
/// Cloning shares the underlying relation *and* the meter.
#[derive(Debug, Clone)]
pub struct InMemoryWebDb {
    relation: Arc<Relation>,
    queries: Arc<AtomicU64>,
    tuples: Arc<AtomicU64>,
    /// Maximum tuples returned per query (`None` = unlimited). Real Web
    /// form interfaces cap result pages; AIMQ must cope with truncation.
    result_limit: Option<usize>,
}

impl InMemoryWebDb {
    /// Wrap a relation.
    pub fn new(relation: Relation) -> Self {
        InMemoryWebDb {
            relation: Arc::new(relation),
            queries: Arc::new(AtomicU64::new(0)),
            tuples: Arc::new(AtomicU64::new(0)),
            result_limit: None,
        }
    }

    /// Cap every query's result at `limit` tuples, simulating a form
    /// interface that only serves the first page of matches.
    #[must_use]
    pub fn with_result_limit(mut self, limit: usize) -> Self {
        self.result_limit = Some(limit);
        self
    }

    /// Borrow the wrapped relation. Only evaluation/bench code uses this
    /// (to draw ground-truth workloads); the AIMQ engine sticks to the
    /// trait surface.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }
}

impl WebDatabase for InMemoryWebDb {
    fn schema(&self) -> &Schema {
        self.relation.schema()
    }

    fn query(&self, query: &SelectionQuery) -> Vec<Tuple> {
        let mut result = execute(&self.relation, query);
        if let Some(limit) = self.result_limit {
            result.truncate(limit);
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.tuples
            .fetch_add(result.len() as u64, Ordering::Relaxed);
        result
    }

    fn stats(&self) -> AccessStats {
        AccessStats {
            queries_issued: self.queries.load(Ordering::Relaxed),
            tuples_returned: self.tuples.load(Ordering::Relaxed),
        }
    }

    fn reset_stats(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.tuples.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_catalog::{AttrId, Predicate, Value};

    fn db() -> InMemoryWebDb {
        let schema = Schema::builder("R")
            .categorical("Make")
            .numeric("Price")
            .build()
            .unwrap();
        let tuples: Vec<Tuple> = [("Toyota", 10000.0), ("Honda", 9000.0), ("Toyota", 7000.0)]
            .iter()
            .map(|&(m, p)| Tuple::new(&schema, vec![Value::cat(m), Value::num(p)]).unwrap())
            .collect();
        InMemoryWebDb::new(Relation::from_tuples(schema, &tuples).unwrap())
    }

    #[test]
    fn boolean_query_model() {
        let db = db();
        let q = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("Toyota"))]);
        let answers = db.query(&q);
        assert_eq!(answers.len(), 2);
        assert!(answers.iter().all(|t| q.matches(t)));
    }

    #[test]
    fn meter_counts_queries_and_tuples() {
        let db = db();
        assert_eq!(db.stats(), AccessStats::default());
        let q = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("Toyota"))]);
        db.query(&q);
        db.query(&SelectionQuery::all());
        let s = db.stats();
        assert_eq!(s.queries_issued, 2);
        assert_eq!(s.tuples_returned, 2 + 3);
        db.reset_stats();
        assert_eq!(db.stats(), AccessStats::default());
    }

    #[test]
    fn result_limit_truncates_pages() {
        let db = db().with_result_limit(1);
        let answers = db.query(&SelectionQuery::all());
        assert_eq!(answers.len(), 1);
        assert_eq!(db.stats().tuples_returned, 1);
    }

    #[test]
    fn clones_share_meter() {
        let db = db();
        let db2 = db.clone();
        db2.query(&SelectionQuery::all());
        assert_eq!(db.stats().queries_issued, 1);
    }
}
