//! CSV import/export for relations — the bridge from this reproduction to
//! *real* data: dump any relation for inspection, or load a crawled
//! dataset (the paper's Yahoo Autos / UCI Census extracts were exactly
//! such files) into a [`Relation`] and run the full AIMQ pipeline on it.
//!
//! The format is RFC-4180-style: a header row of attribute names, comma
//! separators, optional double-quoted fields with `""` escaping, LF or
//! CRLF line endings. Empty fields are SQL NULL.

use std::fmt;
use std::io::{BufRead, Write};

use aimq_catalog::{Domain, Schema, Tuple, Value};

use crate::{Relation, RelationBuilder};

/// Errors raised while reading CSV into a relation.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header row does not match the schema's attribute names.
    HeaderMismatch {
        /// Attribute names the schema declares.
        expected: Vec<String>,
        /// Names found in the file's header row.
        actual: Vec<String>,
    },
    /// A data row has the wrong number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// The schema's arity.
        expected: usize,
        /// Fields found on the line.
        actual: usize,
    },
    /// A numeric attribute holds an unparseable value.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The attribute's name.
        attribute: String,
        /// The unparseable text.
        value: String,
    },
    /// Structural CSV error (unterminated quote).
    UnterminatedQuote {
        /// 1-based line number.
        line: usize,
    },
    /// Tuple failed schema validation.
    Catalog(aimq_catalog::CatalogError),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::HeaderMismatch { expected, actual } => {
                write!(f, "header {actual:?} does not match schema {expected:?}")
            }
            CsvError::FieldCount {
                line,
                expected,
                actual,
            } => {
                write!(f, "line {line}: expected {expected} fields, got {actual}")
            }
            CsvError::BadNumber {
                line,
                attribute,
                value,
            } => {
                write!(
                    f,
                    "line {line}: attribute {attribute} expects a number, got {value:?}"
                )
            }
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
            CsvError::Catalog(e) => write!(f, "invalid tuple: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<aimq_catalog::CatalogError> for CsvError {
    fn from(e: aimq_catalog::CatalogError) -> Self {
        CsvError::Catalog(e)
    }
}

/// Write `relation` as CSV (header + one row per tuple).
pub fn write_csv<W: Write>(relation: &Relation, out: &mut W) -> std::io::Result<()> {
    let schema = relation.schema();
    let header: Vec<String> = schema
        .attributes()
        .iter()
        .map(|a| escape(a.name()))
        .collect();
    writeln!(out, "{}", header.join(","))?;
    for tuple in relation.tuples() {
        let row: Vec<String> = tuple
            .values()
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Cat(s) => escape(s),
                Value::Num(n) => {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        format!("{}", *n as i64)
                    } else {
                        format!("{n}")
                    }
                }
            })
            .collect();
        writeln!(out, "{}", row.join(","))?;
    }
    Ok(())
}

/// Read CSV into a relation with the given schema. The header must list
/// the schema's attribute names in order.
pub fn read_csv<R: BufRead>(schema: &Schema, input: R) -> Result<Relation, CsvError> {
    let mut lines = input.lines();
    let header_line = match lines.next() {
        Some(l) => l?,
        None => {
            return Err(CsvError::HeaderMismatch {
                expected: attr_names(schema),
                actual: Vec::new(),
            })
        }
    };
    let header = parse_record(&header_line, 1)?;
    let expected = attr_names(schema);
    if header != expected {
        return Err(CsvError::HeaderMismatch {
            expected,
            actual: header,
        });
    }

    let mut builder: RelationBuilder = Relation::builder(schema.clone());
    for (i, line) in lines.enumerate() {
        let line_no = i + 2; // 1-based, after the header
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = parse_record(&line, line_no)?;
        if fields.len() != schema.arity() {
            return Err(CsvError::FieldCount {
                line: line_no,
                expected: schema.arity(),
                actual: fields.len(),
            });
        }
        let values: Vec<Value> = fields
            .into_iter()
            .enumerate()
            .map(|(col, field)| -> Result<Value, CsvError> {
                if field.is_empty() {
                    return Ok(Value::Null);
                }
                let attr = &schema.attributes()[col]; // aimq-lint: allow(indexing) -- col < arity: the record arity was just validated
                match attr.domain() {
                    Domain::Categorical => Ok(Value::Cat(field)),
                    Domain::Numeric => field.trim().parse::<f64>().map(Value::Num).map_err(|_| {
                        CsvError::BadNumber {
                            line: line_no,
                            attribute: attr.name().to_owned(),
                            value: field,
                        }
                    }),
                }
            })
            .collect::<Result<_, _>>()?;
        builder.push(&Tuple::new(schema, values)?)?;
    }
    Ok(builder.build())
}

fn attr_names(schema: &Schema) -> Vec<String> {
    schema
        .attributes()
        .iter()
        .map(|a| a.name().to_owned())
        .collect()
}

/// Quote a field when it contains separators, quotes or newlines.
fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Split one CSV record (no embedded newlines — relations never hold
/// multi-line values) into fields, honoring quotes.
fn parse_record(line: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    let mut quoted_field = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                ',' => {
                    fields.push(std::mem::take(&mut field));
                    quoted_field = false;
                }
                '"' if field.is_empty() && !quoted_field => {
                    in_quotes = true;
                    quoted_field = true;
                }
                '\r' => {} // tolerate CRLF
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: line_no });
    }
    fields.push(field);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_catalog::AttrId;
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::builder("CarDB")
            .categorical("Make")
            .categorical("Model")
            .numeric("Price")
            .build()
            .unwrap()
    }

    fn relation() -> Relation {
        let s = schema();
        let tuples = vec![
            Tuple::new(
                &s,
                vec![
                    Value::cat("Toyota"),
                    Value::cat("Camry"),
                    Value::num(10000.0),
                ],
            )
            .unwrap(),
            Tuple::new(
                &s,
                vec![
                    Value::cat("Ford"),
                    Value::cat("F-350, XL"),
                    Value::num(25000.5),
                ],
            )
            .unwrap(),
            Tuple::new(&s, vec![Value::Null, Value::cat("Say \"hi\""), Value::Null]).unwrap(),
        ];
        Relation::from_tuples(s, &tuples).unwrap()
    }

    #[test]
    fn round_trip_preserves_tuples() {
        let r = relation();
        let mut buf = Vec::new();
        write_csv(&r, &mut buf).unwrap();
        let back = read_csv(r.schema(), buf.as_slice()).unwrap();
        assert_eq!(
            r.tuples().collect::<Vec<_>>(),
            back.tuples().collect::<Vec<_>>()
        );
    }

    #[test]
    fn escaping_commas_and_quotes() {
        let r = relation();
        let mut buf = Vec::new();
        write_csv(&r, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"F-350, XL\""));
        assert!(text.contains("\"Say \"\"hi\"\"\""));
    }

    #[test]
    fn empty_fields_are_null() {
        let csv = "Make,Model,Price\n,Camry,\n";
        let r = read_csv(&schema(), csv.as_bytes()).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.value(0, AttrId(0)).is_null());
        assert!(r.value(0, AttrId(2)).is_null());
        assert_eq!(r.value(0, AttrId(1)), Value::cat("Camry"));
    }

    #[test]
    fn header_mismatch_rejected() {
        let csv = "Brand,Model,Price\nToyota,Camry,1\n";
        assert!(matches!(
            read_csv(&schema(), csv.as_bytes()),
            Err(CsvError::HeaderMismatch { .. })
        ));
    }

    #[test]
    fn bad_number_reported_with_location() {
        let csv = "Make,Model,Price\nToyota,Camry,cheap\n";
        match read_csv(&schema(), csv.as_bytes()) {
            Err(CsvError::BadNumber {
                line,
                attribute,
                value,
            }) => {
                assert_eq!(line, 2);
                assert_eq!(attribute, "Price");
                assert_eq!(value, "cheap");
            }
            other => panic!("expected BadNumber, got {other:?}"),
        }
    }

    #[test]
    fn field_count_mismatch_rejected() {
        let csv = "Make,Model,Price\nToyota,Camry\n";
        assert!(matches!(
            read_csv(&schema(), csv.as_bytes()),
            Err(CsvError::FieldCount {
                line: 2,
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let csv = "Make,Model,Price\n\"Toyota,Camry,1\n";
        assert!(matches!(
            read_csv(&schema(), csv.as_bytes()),
            Err(CsvError::UnterminatedQuote { line: 2 })
        ));
    }

    #[test]
    fn crlf_and_trailing_blank_lines_tolerated() {
        let csv = "Make,Model,Price\r\nToyota,Camry,9500\r\n\r\n";
        let r = read_csv(&schema(), csv.as_bytes()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, AttrId(2)), Value::num(9500.0));
    }

    proptest! {
        #[test]
        fn arbitrary_strings_round_trip(
            rows in prop::collection::vec((".{1,20}", ".{1,20}", -1e9f64..1e9), 0..25)
        ) {
            let s = schema();
            // Strip newlines: relations here are single-line records.
            let tuples: Vec<Tuple> = rows
                .iter()
                .map(|(a, b, n)| {
                    let clean = |x: &str| x.replace(['\n', '\r'], " ");
                    Tuple::new(
                        &s,
                        vec![Value::cat(clean(a)), Value::cat(clean(b)), Value::num(*n)],
                    )
                    .unwrap()
                })
                .collect();
            let r = Relation::from_tuples(s.clone(), &tuples).unwrap();
            let mut buf = Vec::new();
            write_csv(&r, &mut buf).unwrap();
            let back = read_csv(&s, buf.as_slice()).unwrap();
            prop_assert_eq!(
                r.tuples().collect::<Vec<_>>(),
                back.tuples().collect::<Vec<_>>()
            );
        }
    }
}
