use aimq_catalog::{AttrId, CatalogError, Domain, Result, Schema, Tuple, Value};
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{Column, Dictionary, FacetTree, NULL_CODE};

/// Index of a tuple within a [`Relation`].
pub type RowId = u32;

/// An immutable, dictionary-encoded, columnar relation instance.
///
/// This is the "owned data" view used by the dataset generators, the mined
/// sample, and the evaluation harness. The AIMQ query engine itself never
/// touches a `Relation` directly — it goes through the
/// [`WebDatabase`](crate::WebDatabase) facade, which enforces the boolean
/// query model and meters access.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    columns: Vec<Column>,
    /// Inverted index per attribute: for categorical attributes,
    /// `index[attr][code]` lists the rows holding that code. Numeric
    /// attributes have an empty outer entry.
    inverted: Vec<Vec<Vec<RowId>>>,
    /// Sorted index per attribute: for numeric attributes, `(value, row)`
    /// pairs in ascending value order, enabling binary-searched range
    /// predicates. Categorical attributes have an empty entry.
    sorted_numeric: Vec<Vec<(f64, RowId)>>,
    /// Facet tree per attribute: for numeric attributes, a bucketed tree
    /// over the sorted index answering position ranges in ascending
    /// *row-id* order (the posting-list executor's input contract).
    /// `None` for categorical attributes.
    facets: Vec<Option<FacetTree>>,
}

impl Relation {
    /// Start building a relation for `schema`.
    pub fn builder(schema: Schema) -> RelationBuilder {
        let columns = schema
            .attributes()
            .iter()
            .map(|a| match a.domain() {
                Domain::Categorical => Column::Categorical {
                    codes: Vec::new(),
                    dict: Dictionary::new(),
                },
                Domain::Numeric => Column::Numeric(Vec::new()),
            })
            .collect();
        RelationBuilder { schema, columns }
    }

    /// Convenience: build a relation directly from tuples.
    pub fn from_tuples(schema: Schema, tuples: &[Tuple]) -> Result<Self> {
        let mut b = Relation::builder(schema);
        for t in tuples {
            b.push(t)?;
        }
        Ok(b.build())
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// `true` when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column storing attribute `attr`.
    pub fn column(&self, attr: AttrId) -> &Column {
        &self.columns[attr.index()] // aimq-lint: allow(indexing) -- columns is arity-sized; AttrId and rows are minted by this relation
    }

    /// Decode row `row` into an owned [`Tuple`].
    pub fn tuple(&self, row: RowId) -> Tuple {
        let values = self.columns.iter().map(|c| c.value(row as usize)).collect();
        Tuple::from_values_unchecked(values)
    }

    /// Decode the value at (`row`, `attr`).
    pub fn value(&self, row: RowId, attr: AttrId) -> Value {
        self.columns[attr.index()].value(row as usize) // aimq-lint: allow(indexing) -- columns is arity-sized; AttrId and rows are minted by this relation
    }

    /// Dictionary code at (`row`, `attr`) for categorical attributes.
    pub fn code(&self, row: RowId, attr: AttrId) -> Option<u32> {
        self.columns[attr.index()].code(row as usize) // aimq-lint: allow(indexing) -- columns is arity-sized; AttrId and rows are minted by this relation
    }

    /// Iterate over all row ids.
    pub fn rows(&self) -> impl Iterator<Item = RowId> {
        0..self.len() as RowId
    }

    /// Iterate over all tuples (decoding each row).
    pub fn tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.rows().map(|r| self.tuple(r))
    }

    /// Rows whose categorical attribute `attr` holds `code`, via the
    /// inverted index. Empty for unknown codes or numeric attributes.
    pub fn rows_with_code(&self, attr: AttrId, code: u32) -> &[RowId] {
        self.inverted
            .get(attr.index())
            .and_then(|idx| idx.get(code as usize))
            .map_or(&[], Vec::as_slice)
    }

    /// Rows whose categorical attribute `attr` holds the string `value`.
    pub fn rows_with_value(&self, attr: AttrId, value: &str) -> &[RowId] {
        match self
            .column(attr)
            .dictionary()
            .and_then(|d| d.code_of(value))
        {
            Some(code) => self.rows_with_code(attr, code),
            None => &[],
        }
    }

    /// Rows whose numeric attribute `attr` lies in `[lo, hi)`, via the
    /// sorted index (binary search on both bounds). Rows come back in
    /// ascending *value* order. Empty for categorical attributes. Pass
    /// `f64::NEG_INFINITY` / `f64::INFINITY` for open bounds.
    pub fn rows_in_range(&self, attr: AttrId, lo: f64, hi: f64) -> &[(f64, RowId)] {
        let index = match self.sorted_numeric.get(attr.index()) {
            Some(idx) => idx.as_slice(),
            None => return &[],
        };
        let start = index.partition_point(|&(v, _)| v < lo);
        let end = index.partition_point(|&(v, _)| v < hi);
        &index[start..end] // aimq-lint: allow(indexing) -- partition_point bounds: start <= end <= len
    }

    /// The full value-ascending `(value, row)` index of numeric attribute
    /// `attr` (NaN/null rows excluded at build time). Empty for
    /// categorical or out-of-range attributes.
    pub fn numeric_sorted(&self, attr: AttrId) -> &[(f64, RowId)] {
        self.sorted_numeric
            .get(attr.index())
            .map_or(&[], Vec::as_slice)
    }

    /// The facet tree over numeric attribute `attr`'s sorted index, or
    /// `None` for categorical or out-of-range attributes.
    pub fn facet_tree(&self, attr: AttrId) -> Option<&FacetTree> {
        self.facets.get(attr.index()).and_then(Option::as_ref)
    }

    /// A uniform random sample of `n` rows *without replacement* (Section
    /// 6.2: "Using simple random sampling without replacement we
    /// constructed three subsets of CarDB"). Returns a new `Relation` with
    /// freshly built dictionaries and indexes. If `n >= len`, clones the
    /// relation's rows in shuffled order.
    pub fn random_sample(&self, n: usize, seed: u64) -> Relation {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rows: Vec<RowId> = self.rows().collect();
        rows.shuffle(&mut rng);
        rows.truncate(n.min(rows.len()));
        self.project_rows(&rows)
    }

    /// Build a new relation containing exactly `rows` (in the given order).
    pub fn project_rows(&self, rows: &[RowId]) -> Relation {
        let mut b = Relation::builder(self.schema.clone());
        for &r in rows {
            // Tuples drawn from `self` validate against `self.schema` by
            // construction; a failed push is impossible, so the row is
            // flagged in debug builds rather than panicking in release.
            let pushed = b.push(&self.tuple(r));
            debug_assert!(pushed.is_ok(), "projecting own tuple failed: {pushed:?}");
        }
        b.build()
    }
}

/// Builder accumulating tuples into dictionary-encoded columns.
#[derive(Debug)]
pub struct RelationBuilder {
    schema: Schema,
    columns: Vec<Column>,
}

impl RelationBuilder {
    /// Append one tuple, validating it against the schema.
    pub fn push(&mut self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(CatalogError::ArityMismatch {
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        // Validate all values before mutating any column so a bad tuple
        // cannot leave the builder with ragged columns.
        for (i, v) in tuple.values().iter().enumerate() {
            let attr = &self.schema.attributes()[i]; // aimq-lint: allow(indexing) -- i < arity by the enumerate over a validated tuple
            let ok = matches!(
                (attr.domain(), v),
                (_, Value::Null)
                    | (Domain::Categorical, Value::Cat(_))
                    | (Domain::Numeric, Value::Num(_))
            );
            if !ok {
                return Err(CatalogError::DomainMismatch {
                    attribute: attr.name().to_owned(),
                    expected: attr.domain().name(),
                    actual: v.type_name(),
                });
            }
        }
        for (i, v) in tuple.values().iter().enumerate() {
            // aimq-lint: allow(indexing) -- i < arity by the enumerate over a validated tuple
            match (&mut self.columns[i], v) {
                (Column::Categorical { codes, dict }, Value::Cat(s)) => {
                    codes.push(dict.intern(s));
                }
                (Column::Categorical { codes, .. }, Value::Null) => codes.push(NULL_CODE),
                (Column::Numeric(vs), Value::Num(n)) => vs.push(*n),
                (Column::Numeric(vs), Value::Null) => vs.push(f64::NAN),
                // Excluded by the validation loop above; propagated as an
                // error (not a panic) to keep storage panic-free.
                (col, v) => {
                    let attr = &self.schema.attributes()[i]; // aimq-lint: allow(indexing) -- i < arity by the enumerate over a validated tuple
                    debug_assert!(false, "validated tuple mismatched {col:?}");
                    return Err(CatalogError::DomainMismatch {
                        attribute: attr.name().to_owned(),
                        expected: attr.domain().name(),
                        actual: v.type_name(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of tuples pushed so far.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// `true` when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish the relation, building the inverted and sorted indexes.
    pub fn build(self) -> Relation {
        let inverted = self
            .columns
            .iter()
            .map(|col| match col {
                Column::Categorical { codes, dict } => {
                    let mut idx: Vec<Vec<RowId>> = vec![Vec::new(); dict.len()];
                    for (row, &code) in codes.iter().enumerate() {
                        if code != NULL_CODE {
                            idx[code as usize].push(row as RowId); // aimq-lint: allow(indexing) -- code < cardinality by dictionary interning
                        }
                    }
                    idx
                }
                Column::Numeric(_) => Vec::new(),
            })
            .collect();
        let sorted_numeric: Vec<Vec<(f64, RowId)>> = self
            .columns
            .iter()
            .map(|col| match col {
                Column::Numeric(values) => {
                    let mut idx: Vec<(f64, RowId)> = values
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| !v.is_nan())
                        .map(|(row, &v)| (v, row as RowId))
                        .collect();
                    idx.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                    idx
                }
                Column::Categorical { .. } => Vec::new(),
            })
            .collect();
        let facets = self
            .columns
            .iter()
            .zip(&sorted_numeric)
            .map(|(col, idx)| match col {
                Column::Numeric(_) => Some(FacetTree::build(idx.as_slice())),
                Column::Categorical { .. } => None,
            })
            .collect();
        Relation {
            schema: self.schema,
            columns: self.columns,
            inverted,
            sorted_numeric,
            facets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::builder("CarDB")
            .categorical("Make")
            .categorical("Model")
            .numeric("Price")
            .build()
            .unwrap()
    }

    fn car(make: &str, model: &str, price: f64) -> Tuple {
        Tuple::new(
            &schema(),
            vec![Value::cat(make), Value::cat(model), Value::num(price)],
        )
        .unwrap()
    }

    fn sample_relation() -> Relation {
        Relation::from_tuples(
            schema(),
            &[
                car("Toyota", "Camry", 10000.0),
                car("Honda", "Accord", 9500.0),
                car("Toyota", "Corolla", 8000.0),
                car("Toyota", "Camry", 12000.0),
                car("Ford", "Focus", 7000.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_and_decode_round_trip() {
        let r = sample_relation();
        assert_eq!(r.len(), 5);
        assert_eq!(r.tuple(0), car("Toyota", "Camry", 10000.0));
        assert_eq!(r.tuple(4), car("Ford", "Focus", 7000.0));
        assert_eq!(r.value(1, AttrId(0)), Value::cat("Honda"));
        assert_eq!(r.value(2, AttrId(2)), Value::num(8000.0));
    }

    #[test]
    fn dictionary_codes_shared_within_column() {
        let r = sample_relation();
        assert_eq!(r.code(0, AttrId(0)), r.code(2, AttrId(0))); // both Toyota
        assert_eq!(r.code(0, AttrId(1)), r.code(3, AttrId(1))); // both Camry
        assert_ne!(r.code(0, AttrId(0)), r.code(1, AttrId(0)));
    }

    #[test]
    fn inverted_index_finds_rows() {
        let r = sample_relation();
        let toyota_rows = r.rows_with_value(AttrId(0), "Toyota");
        assert_eq!(toyota_rows, &[0, 2, 3]);
        assert_eq!(r.rows_with_value(AttrId(0), "BMW"), &[] as &[RowId]);
        let camry_code = r
            .column(AttrId(1))
            .dictionary()
            .unwrap()
            .code_of("Camry")
            .unwrap();
        assert_eq!(r.rows_with_code(AttrId(1), camry_code), &[0, 3]);
    }

    #[test]
    fn tuples_iterator_yields_all_rows() {
        let r = sample_relation();
        let tuples: Vec<Tuple> = r.tuples().collect();
        assert_eq!(tuples.len(), 5);
        assert_eq!(tuples[1], car("Honda", "Accord", 9500.0));
    }

    #[test]
    fn random_sample_without_replacement() {
        let r = sample_relation();
        let s = r.random_sample(3, 42);
        assert_eq!(s.len(), 3);
        // Every sampled tuple exists in the source.
        let originals: Vec<Tuple> = r.tuples().collect();
        for t in s.tuples() {
            assert!(originals.contains(&t));
        }
        // No duplicates beyond source multiplicity: sample of len >= source
        // is a permutation.
        let full = r.random_sample(10, 7);
        assert_eq!(full.len(), 5);
        let mut a: Vec<String> = full.tuples().map(|t| format!("{t:?}")).collect();
        let mut b: Vec<String> = r.tuples().map(|t| format!("{t:?}")).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn random_sample_is_deterministic_per_seed() {
        let r = sample_relation();
        let s1: Vec<Tuple> = r.random_sample(3, 9).tuples().collect();
        let s2: Vec<Tuple> = r.random_sample(3, 9).tuples().collect();
        assert_eq!(s1, s2);
    }

    #[test]
    fn builder_rejects_bad_tuples_without_corruption() {
        let mut b = Relation::builder(schema());
        b.push(&car("Toyota", "Camry", 10000.0)).unwrap();
        let bad = Tuple::from_values_unchecked(vec![Value::num(1.0)]);
        assert!(b.push(&bad).is_err());
        let bad_domain = Tuple::from_values_unchecked(vec![
            Value::num(1.0),
            Value::cat("Camry"),
            Value::num(1.0),
        ]);
        assert!(b.push(&bad_domain).is_err());
        let r = b.build();
        assert_eq!(r.len(), 1); // failed pushes left no partial row
        assert_eq!(r.tuple(0), car("Toyota", "Camry", 10000.0));
    }

    #[test]
    fn nulls_survive_round_trip() {
        let s = schema();
        let t = Tuple::new(&s, vec![Value::Null, Value::cat("Camry"), Value::Null]).unwrap();
        let r = Relation::from_tuples(s, std::slice::from_ref(&t)).unwrap();
        assert_eq!(r.tuple(0), t);
        assert_eq!(r.code(0, AttrId(0)), None);
    }

    #[test]
    fn project_rows_preserves_order() {
        let r = sample_relation();
        let p = r.project_rows(&[4, 0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.tuple(0), car("Ford", "Focus", 7000.0));
        assert_eq!(p.tuple(1), car("Toyota", "Camry", 10000.0));
    }

    #[test]
    fn numeric_range_index_binary_search() {
        let r = sample_relation();
        // Prices: 10000, 9500, 8000, 12000, 7000.
        let hits: Vec<f64> = r
            .rows_in_range(AttrId(2), 8000.0, 10000.0)
            .iter()
            .map(|&(v, _)| v)
            .collect();
        assert_eq!(hits, vec![8000.0, 9500.0]);
        // Open bounds cover everything, in ascending order.
        let all = r.rows_in_range(AttrId(2), f64::NEG_INFINITY, f64::INFINITY);
        assert_eq!(all.len(), 5);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
        // Categorical attributes have no numeric index.
        assert!(r.rows_in_range(AttrId(0), 0.0, 1e9).is_empty());
        // Empty range.
        assert!(r.rows_in_range(AttrId(2), 100.0, 100.0).is_empty());
    }

    #[test]
    fn numeric_index_skips_nulls() {
        let s = schema();
        let t1 = Tuple::new(&s, vec![Value::cat("A"), Value::cat("B"), Value::Null]).unwrap();
        let t2 = Tuple::new(&s, vec![Value::cat("A"), Value::cat("B"), Value::num(5.0)]).unwrap();
        let r = Relation::from_tuples(s, &[t1, t2]).unwrap();
        let hits = r.rows_in_range(AttrId(2), f64::NEG_INFINITY, f64::INFINITY);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], (5.0, 1));
    }

    #[test]
    fn empty_relation() {
        let r = Relation::builder(schema()).build();
        assert!(r.is_empty());
        assert_eq!(r.tuples().count(), 0);
    }
}
