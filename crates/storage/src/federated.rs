//! Federated scatter-gather over several autonomous sources.
//!
//! The paper's setting is plural — autonomous web data*bases* — and this
//! module makes the reproduction match it: [`FederatedWebDb`] presents N
//! heterogeneous member sources (disjoint or overlapping fragments,
//! per-source result limits, per-source fault profiles and seeds,
//! optional attribute renames via a [`SchemaMapping`]) as one
//! [`WebDatabase`]. Every selection probe is *scattered* to all members,
//! the returned pages are *gathered*, deduplicated by full tuple
//! identity, and merged into one deterministic page (canonical value
//! order), so Algorithm 1 runs over the federation unchanged.
//!
//! Fault isolation is per member: each source carries its own resilience
//! stack ([`crate::FaultInjectingWebDb`] → [`crate::ResilientWebDb`] →
//! [`crate::CachedWebDb`], unchanged), so one member's open circuit
//! breaker or exhausted probe budget never poisons the others. All member
//! stacks ride one shared [`VirtualClock`], which also drives *hedged
//! probes*: when a member's probe fails — or straggles past the
//! configured hedge delay — the federator re-issues the probe to that
//! member's overlapping *mirror* source after waiting out the delay.
//!
//! Partial-failure semantics form a small lattice (see DESIGN.md,
//! "Federation & partial-failure semantics"):
//!
//! * every member answered untruncated → a complete page;
//! * a member failed (and its hedge did not recover a page) or any page
//!   was clipped → a `truncated` page, which Algorithm 1 reports as
//!   [`Completeness::Partial`](https://docs.rs) degradation;
//! * fewer than [`FederationPolicy::quorum`] members answered → the
//!   scatter fails as a whole, with [`QueryError::Unavailable`] only
//!   when every member error was terminal.
//!
//! Per-member outcomes (probes, failures, contributed tuples, hedges,
//! breaker state) are recorded in a [`SourceHealth`] table surfaced
//! through [`WebDatabase::source_health`], which the engine snapshots
//! around each call into `DegradationReport::sources`.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, Mutex};

use aimq_catalog::{AttrId, Domain, Json, Predicate, Schema, SelectionQuery, Tuple, Value};
use serde::{Deserialize, Serialize};

use crate::web::lock_stats;
use crate::{
    AccessStats, CachedWebDb, FaultInjectingWebDb, FaultProfile, InMemoryWebDb, QueryError,
    QueryPage, Relation, ResilientWebDb, RetryPolicy, VirtualClock, WebDatabase,
    DEFAULT_CACHE_CAPACITY,
};

/// Maps the federation schema onto one member's local schema: an
/// autonomous member may rename attributes and present them in a
/// different order. Queries are rewritten on the way out
/// ([`SchemaMapping::map_query`]) and tuples on the way back
/// ([`SchemaMapping::map_tuple_back`]), so the rest of the federation
/// never sees the member's attribute space.
#[derive(Debug, Clone)]
pub struct SchemaMapping {
    source_schema: Schema,
    /// `to_source[f]` = member-side position of federation attribute `f`.
    to_source: Vec<usize>,
}

impl SchemaMapping {
    /// A mapping onto `source_schema` where `to_source[f]` gives the
    /// member-side position of federation attribute `f`. Returns `None`
    /// unless `to_source` is a permutation of the member schema's
    /// positions.
    pub fn new(source_schema: Schema, to_source: Vec<usize>) -> Option<SchemaMapping> {
        let arity = source_schema.arity();
        if to_source.len() != arity {
            return None;
        }
        let mut seen = vec![false; arity];
        for &pos in &to_source {
            match seen.get_mut(pos) {
                Some(slot) if !*slot => *slot = true,
                Some(_) | None => return None,
            }
        }
        Some(SchemaMapping {
            source_schema,
            to_source,
        })
    }

    /// A rename-only mapping: the member keeps the federation's attribute
    /// order and domains but suffixes every attribute name (e.g. `Make`
    /// → `Make_src3`). `relation_name` names the member-side relation.
    pub fn renamed_with_suffix(
        federation: &Schema,
        relation_name: &str,
        suffix: &str,
    ) -> Option<SchemaMapping> {
        let mut builder = Schema::builder(relation_name);
        for attr in federation.attributes() {
            let name = format!("{}{}", attr.name(), suffix);
            builder = match attr.domain() {
                Domain::Categorical => builder.categorical(name),
                Domain::Numeric => builder.numeric(name),
            };
        }
        let schema = builder.build().ok()?;
        SchemaMapping::new(schema, (0..federation.arity()).collect())
    }

    /// The member-side schema.
    pub fn source_schema(&self) -> &Schema {
        &self.source_schema
    }

    /// Rewrite a federation-side query into the member's attribute space.
    pub fn map_query(&self, query: &SelectionQuery) -> SelectionQuery {
        let predicates = query
            .predicates()
            .iter()
            .map(|p| Predicate {
                attr: AttrId(
                    self.to_source
                        .get(p.attr.index())
                        .copied()
                        .unwrap_or(p.attr.index()),
                ),
                op: p.op,
                value: p.value.clone(),
            })
            .collect();
        SelectionQuery::new(predicates)
    }

    /// Rewrite a member-side tuple back into federation attribute order.
    /// A malformed member tuple (wrong arity) passes through unchanged —
    /// unreachable for mappings built by [`SchemaMapping::new`] over the
    /// member's own relation.
    pub fn map_tuple_back(&self, tuple: &Tuple) -> Tuple {
        let source_values = tuple.values();
        let mut values = Vec::with_capacity(self.to_source.len());
        for &pos in &self.to_source {
            match source_values.get(pos) {
                Some(v) => values.push(v.clone()),
                None => return tuple.clone(),
            }
        }
        Tuple::from_values_unchecked(values)
    }
}

/// Configuration of one simulated member source for
/// [`FederatedWebDb::shard`].
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// Display name used in per-source health reports.
    pub name: String,
    /// Fault profile injected underneath the member's resilience stack.
    pub profile: FaultProfile,
    /// Seed of the member's fault schedule.
    pub fault_seed: u64,
    /// Per-query result-page cap (`None` = unlimited), simulating a form
    /// interface that serves only the first page of matches.
    pub result_limit: Option<usize>,
    /// Attribute-name suffix this member uses (schema heterogeneity);
    /// `None` keeps the federation schema verbatim.
    pub rename_suffix: Option<String>,
}

impl SourceSpec {
    /// A benign, unlimited source named `name` with the federation's
    /// schema verbatim.
    pub fn benign(name: impl Into<String>) -> SourceSpec {
        SourceSpec {
            name: name.into(),
            profile: FaultProfile::none(),
            fault_seed: 0,
            result_limit: None,
            rename_suffix: None,
        }
    }

    /// `n` benign sources named `s0..s{n-1}` with distinct fault seeds.
    pub fn benign_fleet(n: usize) -> Vec<SourceSpec> {
        (0..n)
            .map(|i| SourceSpec {
                fault_seed: i as u64,
                ..SourceSpec::benign(format!("s{i}"))
            })
            .collect()
    }
}

/// Scatter-gather knobs of a [`FederatedWebDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FederationPolicy {
    /// Virtual-clock ticks a member probe may take before it counts as a
    /// straggler; a straggling or failed probe is re-issued to the
    /// member's mirror after this delay (`None` disables hedging).
    pub hedge_delay: Option<u64>,
    /// Minimum successful member probes for a scatter to produce a page;
    /// below the quorum the whole scatter fails.
    pub quorum: usize,
    /// Retry/breaker policy applied to every member (jitter seeds are
    /// decorrelated per member).
    pub retry: RetryPolicy,
    /// Per-member probe-cache capacity, in pages.
    pub cache_capacity: usize,
}

impl Default for FederationPolicy {
    fn default() -> Self {
        FederationPolicy {
            hedge_delay: Some(4),
            quorum: 1,
            retry: RetryPolicy::default(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// Health and contribution counters of one federation member, as recorded
/// by the federator (post-resilience: a probe a member's retry layer
/// absorbed is a success here).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceHealth {
    /// Member name (stable across snapshots).
    pub name: String,
    /// Scatter probes issued to this member (hedge re-probes excluded).
    // aimq-arith: counter -- monotone event tally
    pub probes_attempted: u64,
    /// Scatter probes that surfaced a failure after the member's own
    /// retries and breaker.
    // aimq-arith: counter -- monotone event tally
    pub probes_failed: u64,
    /// Distinct merged tuples this member was the first to return.
    // aimq-arith: counter -- monotone event tally
    pub tuples_contributed: u64,
    /// Hedge probes fired because this member straggled or failed.
    // aimq-arith: counter -- monotone event tally
    pub hedges_fired: u64,
    /// Hedge probes fired for this member whose mirror returned a page.
    // aimq-arith: counter -- monotone event tally
    pub hedges_won: u64,
    /// Whether the member's circuit breaker was open at snapshot time.
    pub breaker_open: bool,
}

impl SourceHealth {
    /// Per-counter difference `self - earlier`, saturating at zero;
    /// `breaker_open` keeps the later (current) state. The engine uses
    /// this to scope the per-source breakdown to one call.
    #[must_use]
    pub fn since(&self, earlier: &SourceHealth) -> SourceHealth {
        SourceHealth {
            name: self.name.clone(),
            probes_attempted: self
                .probes_attempted
                .saturating_sub(earlier.probes_attempted),
            probes_failed: self.probes_failed.saturating_sub(earlier.probes_failed),
            tuples_contributed: self
                .tuples_contributed
                .saturating_sub(earlier.tuples_contributed),
            hedges_fired: self.hedges_fired.saturating_sub(earlier.hedges_fired),
            hedges_won: self.hedges_won.saturating_sub(earlier.hedges_won),
            breaker_open: self.breaker_open,
        }
    }

    /// The member's health counters as a deterministic [`Json`] object,
    /// embedded by `DegradationReport::to_json` and the HTTP `/stats`
    /// route.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("probes_attempted", Json::Num(self.probes_attempted as f64)),
            ("probes_failed", Json::Num(self.probes_failed as f64)),
            (
                "tuples_contributed",
                Json::Num(self.tuples_contributed as f64),
            ),
            ("hedges_fired", Json::Num(self.hedges_fired as f64)),
            ("hedges_won", Json::Num(self.hedges_won as f64)),
            ("breaker_open", Json::Bool(self.breaker_open)),
        ])
    }
}

impl fmt::Display for SourceHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: probes={} failed={} contributed={} hedges={}/{}{}",
            self.name,
            self.probes_attempted,
            self.probes_failed,
            self.tuples_contributed,
            self.hedges_won,
            self.hedges_fired,
            if self.breaker_open {
                " breaker-open"
            } else {
                ""
            }
        )
    }
}

/// One pre-built federation member: a named stack plus its optional
/// schema mapping and breaker view. Built by [`FederatedWebDb::shard`],
/// or by hand for custom stacks.
pub struct FederatedSource {
    /// Display name used in health reports.
    pub name: String,
    /// The member's (already decorated) database stack.
    pub db: Arc<dyn WebDatabase>,
    /// Rewrites queries/tuples when the member's schema differs.
    pub mapping: Option<SchemaMapping>,
    /// Reads the member's breaker state, when its stack exposes one.
    pub breaker_probe: Option<Box<dyn Fn() -> bool + Send + Sync>>,
}

impl fmt::Debug for FederatedSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FederatedSource")
            .field("name", &self.name)
            .field("mapped", &self.mapping.is_some())
            .finish()
    }
}

/// A federation of autonomous member sources behind one [`WebDatabase`].
///
/// Cloning shares the members, the clock and the health table. The type
/// is `Send + Sync` (members behind `Arc`, health behind a mutex), so it
/// serves unchanged behind `aimq-serve`'s shared `Arc<dyn WebDatabase>`.
#[derive(Clone)]
pub struct FederatedWebDb {
    schema: Schema,
    members: Arc<Vec<FederatedSource>>,
    /// `mirrors[i]` = index of the member holding a replica of member
    /// `i`'s primary fragment (the hedge target); `None` = no mirror.
    mirrors: Arc<Vec<Option<usize>>>,
    policy: FederationPolicy,
    clock: Arc<VirtualClock>,
    // aimq-lock: family(federation-state) -- guards the per-member health
    // counters; released before every member probe
    health: Arc<Mutex<Vec<SourceHealth>>>,
}

impl fmt::Debug for FederatedWebDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FederatedWebDb")
            .field("members", &self.members)
            .field("policy", &self.policy)
            .finish()
    }
}

impl FederatedWebDb {
    /// Federate pre-built member stacks. `mirrors[i]` names the member
    /// holding a replica of member `i`'s primary fragment (its hedge
    /// target); pass all-`None` to disable hedging structurally. Returns
    /// `None` for an empty federation.
    pub fn new(
        schema: Schema,
        sources: Vec<FederatedSource>,
        mirrors: Vec<Option<usize>>,
        policy: FederationPolicy,
        clock: Arc<VirtualClock>,
    ) -> Option<FederatedWebDb> {
        if sources.is_empty() {
            return None;
        }
        let health = sources
            .iter()
            .map(|s| SourceHealth {
                name: s.name.clone(),
                ..SourceHealth::default()
            })
            .collect();
        let mut mirrors = mirrors;
        mirrors.resize(sources.len(), None);
        Some(FederatedWebDb {
            schema,
            members: Arc::new(sources),
            mirrors: Arc::new(mirrors),
            policy,
            clock,
            health: Arc::new(Mutex::new(health)),
        })
    }

    /// Shard `relation` into `specs.len()` simulated member sources with
    /// `replication`-way overlapping fragments, each behind the standard
    /// resilience stack (fault injection → retry/breaker → cache), all
    /// riding one shared [`VirtualClock`].
    ///
    /// Row `r` belongs to fragment `r mod n`; member `i` serves fragments
    /// `{i, i+1, …, i+replication-1} (mod n)`. With `replication ≥ 2`
    /// member `i`'s primary fragment is also held by member `i-1`, which
    /// becomes its hedge mirror. Returns `None` for an empty spec list or
    /// a member whose renamed schema cannot be built.
    pub fn shard(
        relation: &Relation,
        specs: &[SourceSpec],
        replication: usize,
        policy: FederationPolicy,
    ) -> Option<FederatedWebDb> {
        let n = specs.len();
        if n == 0 {
            return None;
        }
        let replication = replication.clamp(1, n);
        let clock = Arc::new(VirtualClock::new());
        let schema = relation.schema().clone();
        let mut sources = Vec::with_capacity(n);
        let mut mirrors = Vec::with_capacity(n);
        for (i, spec) in specs.iter().enumerate() {
            // Member i's rows: fragment ids within `replication` wrapping
            // steps of i.
            let tuples: Vec<Tuple> = relation
                .rows()
                .filter(|&r| (r as usize % n + n - i) % n < replication)
                .map(|r| relation.tuple(r))
                .collect();
            let mapping = match &spec.rename_suffix {
                Some(suffix) => Some(SchemaMapping::renamed_with_suffix(
                    &schema,
                    &format!("{}@{}", schema.name(), spec.name),
                    suffix,
                )?),
                None => None,
            };
            let member_schema = match &mapping {
                Some(m) => m.source_schema().clone(),
                None => schema.clone(),
            };
            let fragment = Relation::from_tuples(member_schema, &tuples).ok()?;
            let mut base = InMemoryWebDb::new(fragment);
            if let Some(limit) = spec.result_limit {
                base = base.with_result_limit(limit);
            }
            let faulty = FaultInjectingWebDb::new(base, spec.profile, spec.fault_seed);
            // Decorrelate the members' jitter streams deterministically.
            let retry = RetryPolicy {
                jitter_seed: policy
                    .retry
                    .jitter_seed
                    .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ..policy.retry
            };
            let resilient = ResilientWebDb::with_clock(faulty, retry, Arc::clone(&clock));
            let breaker_view = resilient.clone();
            let cached = CachedWebDb::new(resilient, policy.cache_capacity);
            sources.push(FederatedSource {
                name: spec.name.clone(),
                db: Arc::new(cached),
                mapping,
                breaker_probe: Some(Box::new(move || breaker_view.breaker_open())),
            });
            mirrors.push((replication >= 2 && n >= 2).then(|| (i + n - 1) % n));
        }
        FederatedWebDb::new(schema, sources, mirrors, policy, clock)
    }

    /// The shared session clock (hedge delays and member backoffs all
    /// advance it).
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The scatter-gather policy.
    pub fn policy(&self) -> &FederationPolicy {
        &self.policy
    }

    /// Number of member sources.
    pub fn source_count(&self) -> usize {
        self.members.len()
    }

    /// Per-member health snapshot: scatter outcomes plus current breaker
    /// state. Counter order matches member order and is stable.
    pub fn federation_report(&self) -> Vec<SourceHealth> {
        let mut snapshot = {
            // aimq-lock: use(federation-state)
            lock_stats(&self.health).clone()
        };
        for (i, h) in snapshot.iter_mut().enumerate() {
            h.breaker_open = self
                .members
                .get(i)
                .and_then(|m| m.breaker_probe.as_ref())
                .is_some_and(|probe| probe());
        }
        snapshot
    }

    /// Run `mutate` over member `i`'s health counters under the state
    /// lock (never held across a probe).
    fn with_health(&self, i: usize, mutate: impl FnOnce(&mut SourceHealth)) {
        // aimq-lock: use(federation-state)
        let mut health = lock_stats(&self.health);
        if let Some(h) = health.get_mut(i) {
            mutate(h);
        }
    }

    /// Issue one (schema-mapped) probe against a member's stack and map
    /// the resulting page back into the federation's attribute space.
    // aimq-probe: entry -- per-member scatter probe; raw access is metered in the member stack's AccessStats, outcomes in the federation-state health table
    fn probe_member(
        &self,
        member: &FederatedSource,
        query: &SelectionQuery,
    ) -> Result<QueryPage, QueryError> {
        match &member.mapping {
            Some(mapping) => {
                let mapped = mapping.map_query(query);
                let page = member.db.try_query(&mapped)?;
                Ok(QueryPage {
                    tuples: page
                        .tuples
                        .iter()
                        .map(|t| mapping.map_tuple_back(t))
                        .collect(),
                    truncated: page.truncated,
                })
            }
            None => member.db.try_query(query),
        }
    }

    /// Fold one member page into the merged answer: dedup by full tuple
    /// identity (the value vector), crediting each distinct tuple to the
    /// first member that returned it.
    fn merge_page(
        &self,
        contributor: usize,
        page: QueryPage,
        seen: &mut BTreeSet<Vec<Value>>,
        merged: &mut Vec<Tuple>,
    ) {
        let mut fresh: u64 = 0;
        for tuple in page.tuples {
            if seen.insert(tuple.values().to_vec()) {
                merged.push(tuple);
                fresh = fresh.saturating_add(1);
            }
        }
        if fresh > 0 {
            self.with_health(contributor, |h| {
                h.tuples_contributed = h.tuples_contributed.saturating_add(fresh);
            });
        }
    }

    /// Re-issue `query` to member `i`'s mirror. `wait_out_delay` pays the
    /// hedge delay on the clock first (a failed original fires after the
    /// delay; a straggler already consumed it). Returns `true` when the
    /// mirror returned a page — the hedge *won* and member `i`'s primary
    /// fragment is covered through the replica.
    fn hedge(
        &self,
        i: usize,
        query: &SelectionQuery,
        seen: &mut BTreeSet<Vec<Value>>,
        merged: &mut Vec<Tuple>,
        truncated: &mut bool,
        wait_out_delay: bool,
    ) -> bool {
        let Some(delay) = self.policy.hedge_delay else {
            return false;
        };
        let Some(mirror_ix) = self.mirrors.get(i).copied().flatten() else {
            return false;
        };
        let Some(mirror) = self.members.get(mirror_ix) else {
            return false;
        };
        if mirror_ix == i {
            return false;
        }
        if wait_out_delay {
            self.clock.advance(delay);
        }
        self.with_health(i, |h| {
            h.hedges_fired = h.hedges_fired.saturating_add(1);
        });
        match self.probe_member(mirror, query) {
            Ok(page) => {
                self.with_health(i, |h| {
                    h.hedges_won = h.hedges_won.saturating_add(1);
                });
                *truncated |= page.truncated;
                self.merge_page(mirror_ix, page, seen, merged);
                true
            }
            Err(QueryError::Timeout)
            | Err(QueryError::Transient)
            | Err(QueryError::RateLimited { .. })
            | Err(QueryError::Unavailable) => false,
        }
    }
}

impl WebDatabase for FederatedWebDb {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Scatter `query` to every member, gather and dedup the pages, and
    /// merge them in canonical value order (a total, deterministic order:
    /// dedup leaves no equal value vectors).
    fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError> {
        let mut merged: Vec<Tuple> = Vec::new();
        let mut seen: BTreeSet<Vec<Value>> = BTreeSet::new();
        let mut successes: usize = 0;
        let mut truncated = false;
        let mut last_retryable: Option<QueryError> = None;

        for i in 0..self.members.len() {
            let Some(member) = self.members.get(i) else {
                break;
            };
            let before = self.clock.now();
            let outcome = self.probe_member(member, query);
            let elapsed = self.clock.now().saturating_sub(before);
            let failed = outcome.is_err();
            self.with_health(i, |h| {
                h.probes_attempted = h.probes_attempted.saturating_add(1);
                if failed {
                    h.probes_failed = h.probes_failed.saturating_add(1);
                }
            });
            match outcome {
                Ok(page) => {
                    successes += 1;
                    truncated |= page.truncated;
                    self.merge_page(i, page, &mut seen, &mut merged);
                    // Straggler hedge: the member answered, but only
                    // after backoffs pushed virtual time past the hedge
                    // delay — a real hedged request would have fired, so
                    // fire it (the merge dedups any overlap).
                    let straggled = self.policy.hedge_delay.is_some_and(|delay| elapsed > delay);
                    if straggled {
                        self.hedge(i, query, &mut seen, &mut merged, &mut truncated, false);
                    }
                }
                Err(error) => {
                    if error.is_retryable() {
                        last_retryable = Some(error);
                    }
                    let rescued =
                        self.hedge(i, query, &mut seen, &mut merged, &mut truncated, true);
                    if rescued {
                        // The mirror covered member i's primary fragment;
                        // the scatter still counts it toward the quorum.
                        successes += 1;
                    } else {
                        // Fragment potentially missing from the merge.
                        truncated = true;
                    }
                }
            }
        }

        // Quorum gate: below it the scatter fails as a whole. The error
        // is terminal only when every member error was — a single
        // retryable failure means a later identical scatter may succeed.
        if successes < self.policy.quorum.max(1) {
            return Err(last_retryable.unwrap_or(QueryError::Unavailable));
        }
        merged.sort_by(|a, b| a.values().cmp(b.values()));
        Ok(QueryPage {
            tuples: merged,
            truncated,
        })
    }

    /// Aggregate access meter: the per-field saturating sum of every
    /// member stack's stats.
    fn stats(&self) -> AccessStats {
        let mut total = AccessStats::default();
        for member in self.members.iter() {
            total = total.merge(&member.db.stats());
        }
        total
    }

    fn reset_stats(&self) {
        for member in self.members.iter() {
            member.db.reset_stats();
        }
        // aimq-lock: use(federation-state)
        let mut health = lock_stats(&self.health);
        for h in health.iter_mut() {
            let name = std::mem::take(&mut h.name);
            *h = SourceHealth {
                name,
                ..SourceHealth::default()
            };
        }
    }

    fn source_health(&self) -> Option<Vec<SourceHealth>> {
        Some(self.federation_report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_catalog::PredicateOp;

    fn schema() -> Schema {
        Schema::builder("R")
            .categorical("Make")
            .categorical("Model")
            .numeric("Price")
            .build()
            .unwrap()
    }

    /// 24 distinct tuples in sorted value order (so the single-source
    /// baseline returns pages in the federator's canonical merge order).
    fn relation() -> Relation {
        let s = schema();
        let mut tuples: Vec<Tuple> = Vec::new();
        for (mi, make) in ["Ford", "Honda", "Toyota"].iter().enumerate() {
            for (di, model) in ["A", "B"].iter().enumerate() {
                for k in 0..4 {
                    tuples.push(
                        Tuple::new(
                            &s,
                            vec![
                                Value::cat(*make),
                                Value::cat(*model),
                                Value::num(1000.0 * (1 + mi * 8 + di * 4 + k) as f64),
                            ],
                        )
                        .unwrap(),
                    );
                }
            }
        }
        tuples.sort_by(|a, b| a.values().cmp(b.values()));
        Relation::from_tuples(s, &tuples).unwrap()
    }

    fn make_query(make: &str) -> SelectionQuery {
        SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat(make))])
    }

    #[test]
    fn schema_mapping_rejects_non_permutations() {
        let s = schema();
        assert!(SchemaMapping::new(s.clone(), vec![0, 1]).is_none());
        assert!(SchemaMapping::new(s.clone(), vec![0, 1, 1]).is_none());
        assert!(SchemaMapping::new(s.clone(), vec![0, 1, 3]).is_none());
        assert!(SchemaMapping::new(s, vec![2, 0, 1]).is_some());
    }

    #[test]
    fn schema_mapping_roundtrips_queries_and_tuples() {
        let fed = schema();
        // Member stores (Price', Make', Model') — renamed AND permuted.
        let member = Schema::builder("M")
            .numeric("Price_m")
            .categorical("Make_m")
            .categorical("Model_m")
            .build()
            .unwrap();
        // Federation attrs (Make, Model, Price) live at member positions
        // (1, 2, 0).
        let mapping = SchemaMapping::new(member.clone(), vec![1, 2, 0]).unwrap();
        let q = SelectionQuery::new(vec![
            Predicate::eq(AttrId(0), Value::cat("Toyota")),
            Predicate {
                attr: AttrId(2),
                op: PredicateOp::Lt,
                value: Value::num(9000.0),
            },
        ]);
        let mapped = mapping.map_query(&q);
        assert_eq!(mapped.predicates()[0].attr, AttrId(1));
        assert_eq!(mapped.predicates()[1].attr, AttrId(0));

        let member_tuple = Tuple::new(
            &member,
            vec![Value::num(8000.0), Value::cat("Toyota"), Value::cat("A")],
        )
        .unwrap();
        let back = mapping.map_tuple_back(&member_tuple);
        assert_eq!(
            back.values(),
            Tuple::new(
                &fed,
                vec![Value::cat("Toyota"), Value::cat("A"), Value::num(8000.0)]
            )
            .unwrap()
            .values()
        );
        assert!(q.matches(&back));
    }

    #[test]
    fn renamed_suffix_mapping_preserves_order_and_domains() {
        let fed = schema();
        let mapping = SchemaMapping::renamed_with_suffix(&fed, "R@s1", "_s1").unwrap();
        let m = mapping.source_schema();
        assert_eq!(m.arity(), fed.arity());
        assert_eq!(m.attributes()[0].name(), "Make_s1");
        assert_eq!(m.attributes()[2].name(), "Price_s1");
        assert_eq!(m.attributes()[2].domain(), Domain::Numeric);
    }

    #[test]
    fn fault_free_scatter_equals_single_source_in_canonical_order() {
        let relation = relation();
        let baseline = InMemoryWebDb::new(relation.clone());
        for sources in [1usize, 2, 3, 5] {
            let fed = FederatedWebDb::shard(
                &relation,
                &SourceSpec::benign_fleet(sources),
                2,
                FederationPolicy::default(),
            )
            .unwrap();
            for q in [
                SelectionQuery::all(),
                make_query("Toyota"),
                make_query("Honda"),
                make_query("None"),
            ] {
                let merged = fed.try_query(&q).unwrap();
                let single = baseline.try_query(&q).unwrap();
                assert_eq!(
                    merged.tuples, single.tuples,
                    "sources={sources} query={q:?}"
                );
                assert!(!merged.truncated);
            }
        }
    }

    #[test]
    fn renamed_members_are_transparent_to_the_federation() {
        let relation = relation();
        let baseline = InMemoryWebDb::new(relation.clone());
        let specs: Vec<SourceSpec> = (0..3)
            .map(|i| SourceSpec {
                rename_suffix: Some(format!("_s{i}")),
                ..SourceSpec::benign(format!("s{i}"))
            })
            .collect();
        let fed = FederatedWebDb::shard(&relation, &specs, 2, FederationPolicy::default()).unwrap();
        assert_eq!(fed.schema(), relation.schema());
        let q = make_query("Toyota");
        assert_eq!(
            fed.try_query(&q).unwrap().tuples,
            baseline.try_query(&q).unwrap().tuples
        );
    }

    #[test]
    fn scatter_dedups_overlapping_fragments() {
        let relation = relation();
        // Full replication: every member holds every row.
        let fed = FederatedWebDb::shard(
            &relation,
            &SourceSpec::benign_fleet(4),
            4,
            FederationPolicy::default(),
        )
        .unwrap();
        let page = fed.try_query(&SelectionQuery::all()).unwrap();
        assert_eq!(page.tuples.len(), relation.len(), "dedup by tuple identity");
        let report = fed.federation_report();
        let contributed: u64 = report.iter().map(|h| h.tuples_contributed).sum();
        assert_eq!(contributed, relation.len() as u64);
        // First member in scatter order gets the credit under full
        // replication.
        assert_eq!(report[0].tuples_contributed, relation.len() as u64);
    }

    #[test]
    fn one_dead_member_degrades_to_truncated_not_error() {
        let relation = relation();
        let mut specs = SourceSpec::benign_fleet(4);
        specs[1].profile = FaultProfile {
            unavailable_probability: 1.0,
            ..FaultProfile::none()
        };
        // Disjoint fragments and no hedging: member 1's fragment is
        // simply missing.
        let fed = FederatedWebDb::shard(
            &relation,
            &specs,
            1,
            FederationPolicy {
                hedge_delay: None,
                ..FederationPolicy::default()
            },
        )
        .unwrap();
        let page = fed.try_query(&SelectionQuery::all()).unwrap();
        assert!(page.truncated, "missing fragment must be reported");
        assert!(page.tuples.len() < relation.len());
        let report = fed.federation_report();
        assert_eq!(report[1].probes_failed, 1);
        assert_eq!(report[1].tuples_contributed, 0);
        assert!(report.iter().all(|h| h.probes_attempted == 1));
    }

    #[test]
    fn hedge_to_mirror_recovers_a_dead_members_fragment() {
        let relation = relation();
        let mut specs = SourceSpec::benign_fleet(3);
        specs[2].profile = FaultProfile {
            unavailable_probability: 1.0,
            ..FaultProfile::none()
        };
        // replication 2: member 2's primary fragment is mirrored on
        // member 1, so the hedge recovers it and the merge is complete.
        let fed = FederatedWebDb::shard(
            &relation,
            &specs,
            2,
            FederationPolicy {
                hedge_delay: Some(2),
                ..FederationPolicy::default()
            },
        )
        .unwrap();
        let clock_before = fed.clock().now();
        let page = fed.try_query(&SelectionQuery::all()).unwrap();
        assert_eq!(page.tuples.len(), relation.len(), "hedge covers the gap");
        assert!(!page.truncated, "rescued fragment is not a truncation");
        let report = fed.federation_report();
        assert_eq!(report[2].probes_failed, 1);
        assert_eq!(report[2].hedges_fired, 1);
        assert_eq!(report[2].hedges_won, 1);
        assert!(
            fed.clock().now() >= clock_before + 2,
            "the hedge waits out its delay on the virtual clock"
        );
    }

    #[test]
    fn quorum_failure_fails_the_scatter_with_honest_error() {
        let relation = relation();
        let mut specs = SourceSpec::benign_fleet(2);
        for spec in &mut specs {
            spec.profile = FaultProfile {
                unavailable_probability: 1.0,
                ..FaultProfile::none()
            };
        }
        let fed = FederatedWebDb::shard(
            &relation,
            &specs,
            1,
            FederationPolicy {
                hedge_delay: None,
                ..FederationPolicy::default()
            },
        )
        .unwrap();
        // All members terminally dead → Unavailable.
        assert_eq!(
            fed.try_query(&SelectionQuery::all()),
            Err(QueryError::Unavailable)
        );

        // A transiently-failing fleet surfaces a retryable error instead.
        let mut specs = SourceSpec::benign_fleet(2);
        for spec in &mut specs {
            spec.profile = FaultProfile {
                transient_probability: 1.0,
                ..FaultProfile::none()
            };
        }
        let fed = FederatedWebDb::shard(
            &relation,
            &specs,
            1,
            FederationPolicy {
                hedge_delay: None,
                retry: RetryPolicy {
                    max_retries: 0,
                    breaker_threshold: 0,
                    ..RetryPolicy::default()
                },
                ..FederationPolicy::default()
            },
        )
        .unwrap();
        assert_eq!(
            fed.try_query(&SelectionQuery::all()),
            Err(QueryError::Transient)
        );
    }

    #[test]
    fn member_isolation_one_open_breaker_never_poisons_others() {
        let relation = relation();
        let mut specs = SourceSpec::benign_fleet(3);
        specs[0].profile = FaultProfile {
            transient_probability: 1.0,
            ..FaultProfile::none()
        };
        let fed = FederatedWebDb::shard(
            &relation,
            &specs,
            1,
            FederationPolicy {
                hedge_delay: None,
                retry: RetryPolicy {
                    max_retries: 0,
                    breaker_threshold: 2,
                    breaker_cooldown: 1_000_000,
                    ..RetryPolicy::default()
                },
                ..FederationPolicy::default()
            },
        )
        .unwrap();
        for _ in 0..5 {
            let page = fed.try_query(&SelectionQuery::all()).unwrap();
            assert!(page.truncated);
        }
        let report = fed.federation_report();
        assert!(report[0].breaker_open, "dead member's breaker opens");
        assert!(!report[1].breaker_open && !report[2].breaker_open);
        assert_eq!(report[1].probes_failed, 0);
        assert_eq!(report[2].probes_failed, 0);
        // Healthy members answered every scatter.
        assert_eq!(report[1].probes_attempted, 5);
    }

    #[test]
    fn reset_stats_zeroes_health_but_keeps_names() {
        let relation = relation();
        let fed = FederatedWebDb::shard(
            &relation,
            &SourceSpec::benign_fleet(2),
            1,
            FederationPolicy::default(),
        )
        .unwrap();
        fed.try_query(&SelectionQuery::all()).unwrap();
        assert!(fed.stats().queries_issued > 0);
        fed.reset_stats();
        assert_eq!(fed.stats(), AccessStats::default());
        let report = fed.federation_report();
        assert_eq!(report[0].name, "s0");
        assert_eq!(report[0].probes_attempted, 0);
    }

    #[test]
    fn result_limited_members_mark_the_merge_truncated() {
        let relation = relation();
        let mut specs = SourceSpec::benign_fleet(2);
        specs[0].result_limit = Some(2);
        specs[1].result_limit = Some(2);
        let fed = FederatedWebDb::shard(
            &relation,
            &specs,
            1,
            FederationPolicy {
                hedge_delay: None,
                ..FederationPolicy::default()
            },
        )
        .unwrap();
        let page = fed.try_query(&SelectionQuery::all()).unwrap();
        assert!(page.truncated);
        assert_eq!(page.tuples.len(), 4);
    }

    #[test]
    fn source_health_since_is_a_saturating_delta() {
        let earlier = SourceHealth {
            name: "s0".into(),
            probes_attempted: 5,
            probes_failed: 1,
            tuples_contributed: 100,
            hedges_fired: 2,
            hedges_won: 2,
            breaker_open: true,
        };
        let later = SourceHealth {
            name: "s0".into(),
            probes_attempted: 9,
            probes_failed: 1,
            tuples_contributed: 150,
            hedges_fired: 3,
            hedges_won: 2,
            breaker_open: false,
        };
        let d = later.since(&earlier);
        assert_eq!(d.probes_attempted, 4);
        assert_eq!(d.probes_failed, 0);
        assert_eq!(d.tuples_contributed, 50);
        assert_eq!(d.hedges_fired, 1);
        assert!(!d.breaker_open, "breaker state is the later snapshot's");
        // Reversed order saturates at zero instead of wrapping.
        assert_eq!(earlier.since(&later).probes_attempted, 0);
    }

    #[test]
    fn concurrent_scatters_agree_with_serial_and_never_tear() {
        // TSan smoke target: many threads scattering through one shared
        // federation must produce byte-identical pages (benign members,
        // so fault ordinals don't matter) and a coherent health table.
        let relation = relation();
        let fed = FederatedWebDb::shard(
            &relation,
            &SourceSpec::benign_fleet(4),
            2,
            FederationPolicy::default(),
        )
        .unwrap();
        let queries = [
            SelectionQuery::all(),
            make_query("Toyota"),
            make_query("Honda"),
            make_query("Ford"),
        ];
        let serial: Vec<QueryPage> = queries.iter().map(|q| fed.try_query(q).unwrap()).collect();
        fed.reset_stats();
        let mut handles = Vec::new();
        for w in 0..4 {
            let fed = fed.clone();
            let queries = queries.clone();
            let serial = serial.clone();
            handles.push(std::thread::spawn(move || {
                for r in 0..25 {
                    let i = (w + r) % queries.len();
                    assert_eq!(fed.try_query(&queries[i]).unwrap(), serial[i]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let report = fed.federation_report();
        let scatters: u64 = report.iter().map(|h| h.probes_attempted).sum();
        assert_eq!(scatters, 4 * 25 * 4, "every scatter hits every member");
        assert_eq!(report.iter().map(|h| h.probes_failed).sum::<u64>(), 0);
    }

    #[test]
    fn federation_is_send_sync_behind_arc_dyn() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FederatedWebDb>();
        let relation = relation();
        let fed: Arc<dyn WebDatabase> = Arc::new(
            FederatedWebDb::shard(
                &relation,
                &SourceSpec::benign_fleet(2),
                2,
                FederationPolicy::default(),
            )
            .unwrap(),
        );
        assert!(fed.source_health().is_some());
        assert!(fed.try_query(&SelectionQuery::all()).is_ok());
    }
}
