//! Facet tree over a value-sorted numeric index.
//!
//! The sorted index `[(value, row)]` answers a range predicate with two
//! binary searches, but the rows it yields come back in *value* order —
//! useless for the posting-list set algebra in [`crate::postings`], which
//! needs row-id-sorted lists to intersect. Re-sorting the slice per query
//! is O(m log m) on every probe; wide relaxation ranges pay it over and
//! over.
//!
//! The facet tree (after MeiliDB/milli's facet-range search) trades a
//! modest amount of build-time memory for O(edges) range evaluation: leaf
//! buckets of consecutive sorted positions and internal nodes of fanout
//! `F` each precompute the *row-id-sorted* union of the positions they
//! cover. A range `[start, end)` in position space decomposes into O(log)
//! whole nodes plus at most `2·bucket` partial-edge positions; the node
//! lists and the sorted edge entries k-way merge into one sorted result
//! without ever touching the interior positions individually.
//!
//! Position bounds themselves come from `partition_point` over the sorted
//! index (see `crate::postings`); the tree is deliberately ignorant of
//! values — it only maps position ranges to sorted row sets.

use crate::postings::union_kway;
use crate::RowId;

/// Leaf bucket width in sorted positions. Small enough that partial-edge
/// scans stay cheap, large enough that the per-level memory overhead
/// (each level re-stores every covered row id once) stays near
/// `n / bucket` list headers.
const DEFAULT_BUCKET: usize = 64;

/// Internal-node fanout: each level-`l+1` node unions `F` level-`l`
/// nodes. With bucket 64 and fanout 8 a 100k-row attribute is 5 levels.
const DEFAULT_FANOUT: usize = 8;

/// A static facet tree over one numeric attribute's value-sorted index.
///
/// Node `i` of level `l` covers positions `[i·span, (i+1)·span)` with
/// `span = bucket · fanout^l` (the last node of a level may cover fewer)
/// and stores the row ids of those positions in ascending row-id order.
/// The top level always holds a single root covering every position.
#[derive(Debug, Clone)]
pub struct FacetTree {
    /// Row id at each value-sorted position (the leaf ordering).
    rows_by_position: Vec<RowId>,
    /// Leaf bucket width in positions.
    bucket: usize,
    /// Internal-node fanout.
    fanout: usize,
    /// `levels[l][i]`: ascending row ids covered by node `i` of level `l`.
    /// Level 0 holds the leaf buckets; the last level holds one root.
    /// Empty when the attribute has no indexed positions.
    levels: Vec<Vec<Vec<RowId>>>,
}

impl FacetTree {
    /// Build a tree over `sorted`, the value-ascending `(value, row)`
    /// index of one numeric attribute, with the default shape.
    pub fn build(sorted: &[(f64, RowId)]) -> FacetTree {
        FacetTree::with_shape(sorted, DEFAULT_BUCKET, DEFAULT_FANOUT)
    }

    /// Build with an explicit `bucket` width and `fanout` (both clamped
    /// to sane minimums: bucket ≥ 1, fanout ≥ 2).
    pub fn with_shape(sorted: &[(f64, RowId)], bucket: usize, fanout: usize) -> FacetTree {
        let bucket = bucket.max(1);
        let fanout = fanout.max(2);
        let rows_by_position: Vec<RowId> = sorted.iter().map(|&(_, row)| row).collect();
        let mut levels: Vec<Vec<Vec<RowId>>> = Vec::new();
        if !rows_by_position.is_empty() {
            let mut current: Vec<Vec<RowId>> = rows_by_position
                .chunks(bucket)
                .map(|chunk| {
                    let mut rows = chunk.to_vec();
                    rows.sort_unstable();
                    rows
                })
                .collect();
            loop {
                let width = current.len();
                levels.push(current);
                if width <= 1 {
                    break;
                }
                let below = levels.last().map(Vec::as_slice).unwrap_or(&[]);
                current = below
                    .chunks(fanout)
                    .map(|nodes| {
                        let slices: Vec<&[RowId]> = nodes.iter().map(Vec::as_slice).collect();
                        union_kway(&slices)
                    })
                    .collect();
            }
        }
        FacetTree {
            rows_by_position,
            bucket,
            fanout,
            levels,
        }
    }

    /// Number of indexed positions (rows with a non-null value).
    pub fn len(&self) -> usize {
        self.rows_by_position.len()
    }

    /// `true` when the attribute has no indexed positions.
    pub fn is_empty(&self) -> bool {
        self.rows_by_position.is_empty()
    }

    /// The row ids at value-sorted positions `[start, end)`, returned in
    /// ascending *row-id* order. Bounds are clamped to the index length;
    /// an empty or inverted range yields an empty list.
    ///
    /// Decomposition invariant: every position in the range is covered by
    /// exactly one contributed node or edge entry, so the merged output
    /// is an exact, duplicate-free row set.
    pub fn rows_in_positions(&self, start: usize, end: usize) -> Vec<RowId> {
        let n = self.rows_by_position.len();
        let start = start.min(n);
        let end = end.min(n);
        if start >= end {
            return Vec::new();
        }
        // Whole-index fast path: the root already holds the full union.
        if start == 0 && end == n {
            if let Some(root) = self.levels.last().and_then(|level| level.first()) {
                return root.clone();
            }
        }
        let mut node_lists: Vec<&[RowId]> = Vec::new();
        let mut edge_rows: Vec<RowId> = Vec::new();
        let mut pos = start;
        while pos < end {
            if pos.is_multiple_of(self.bucket) && pos + self.bucket <= end {
                // Climb to the widest node aligned at `pos` that still
                // fits inside the range.
                let mut level = 0usize;
                let mut span = self.bucket;
                while level + 1 < self.levels.len() {
                    let wider = span.saturating_mul(self.fanout);
                    if pos.is_multiple_of(wider) && pos.saturating_add(wider) <= end {
                        level += 1;
                        span = wider;
                    } else {
                        break;
                    }
                }
                if let Some(rows) = self
                    .levels
                    .get(level)
                    .and_then(|nodes| nodes.get(pos / span))
                {
                    node_lists.push(rows);
                    pos += span;
                    continue;
                }
            }
            // Partial-edge position: contribute the single row.
            if let Some(&row) = self.rows_by_position.get(pos) {
                edge_rows.push(row);
            }
            pos += 1;
        }
        edge_rows.sort_unstable();
        node_lists.push(&edge_rows);
        union_kway(&node_lists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: slice the position range and sort by row id.
    fn naive(sorted: &[(f64, RowId)], start: usize, end: usize) -> Vec<RowId> {
        let end = end.min(sorted.len());
        let start = start.min(end);
        let mut rows: Vec<RowId> = sorted
            .get(start..end)
            .unwrap_or(&[])
            .iter()
            .map(|&(_, row)| row)
            .collect();
        rows.sort_unstable();
        rows
    }

    /// A value-sorted index whose row ids are deliberately scrambled
    /// relative to position order.
    fn index(n: usize) -> Vec<(f64, RowId)> {
        (0..n)
            .map(|i| (i as f64, ((i * 7919 + 13) % n) as RowId))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = FacetTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.rows_in_positions(0, 10).is_empty());
    }

    #[test]
    fn single_bucket_tree_answers_everything() {
        let idx = index(5);
        let t = FacetTree::with_shape(&idx, 64, 8);
        assert_eq!(t.rows_in_positions(0, 5), naive(&idx, 0, 5));
        assert_eq!(t.rows_in_positions(1, 4), naive(&idx, 1, 4));
        assert_eq!(t.rows_in_positions(2, 2), Vec::<RowId>::new());
    }

    #[test]
    fn ranges_agree_with_naive_slice_across_shapes() {
        for n in [1usize, 7, 63, 64, 65, 200, 513] {
            let idx = index(n);
            for (bucket, fanout) in [(4, 2), (8, 4), (64, 8), (3, 3)] {
                let t = FacetTree::with_shape(&idx, bucket, fanout);
                for &(start, end) in &[
                    (0usize, n),
                    (0, n / 2),
                    (n / 3, n),
                    (1, n.saturating_sub(1)),
                    (n / 4, 3 * n / 4),
                    (5, 6),
                    (0, 0),
                    (n, n),
                ] {
                    assert_eq!(
                        t.rows_in_positions(start, end),
                        naive(&idx, start, end),
                        "n={n} bucket={bucket} fanout={fanout} range=[{start},{end})"
                    );
                }
            }
        }
    }

    #[test]
    fn bounds_are_clamped() {
        let idx = index(10);
        let t = FacetTree::with_shape(&idx, 4, 2);
        assert_eq!(t.rows_in_positions(0, 999), naive(&idx, 0, 10));
        assert_eq!(t.rows_in_positions(8, 999), naive(&idx, 8, 10));
        assert!(t.rows_in_positions(50, 60).is_empty());
        assert!(t.rows_in_positions(6, 3).is_empty());
    }

    #[test]
    fn output_is_sorted_and_duplicate_free() {
        let idx = index(129);
        let t = FacetTree::with_shape(&idx, 8, 4);
        let rows = t.rows_in_positions(3, 121);
        assert!(rows.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(rows.len(), 121 - 3);
    }

    #[test]
    fn degenerate_shapes_are_clamped() {
        let idx = index(20);
        let t = FacetTree::with_shape(&idx, 0, 0);
        assert_eq!(t.rows_in_positions(0, 20), naive(&idx, 0, 20));
        assert_eq!(t.rows_in_positions(7, 13), naive(&idx, 7, 13));
    }
}
