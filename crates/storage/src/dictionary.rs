// aimq-lint: allow(hashmap) -- import for the insert-only interning index below
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// An order-of-insertion string dictionary mapping categorical values to
/// dense `u32` codes.
///
/// Every categorical column owns one. Codes are dense (`0..len`), so
/// downstream consumers (TANE partitions, supertuple bags, similarity
/// matrices) can use plain `Vec`s indexed by code instead of hash maps.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dictionary {
    values: Vec<String>,
    /// Insert-only interning index; codes come from insertion order in
    /// `values` and the map's iteration order is never observed.
    // aimq-lint: allow(hashmap) -- insert-only lookup; ordering comes from `values`
    index: HashMap<String, u32>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Code for `value`, inserting it if unseen.
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&code) = self.index.get(value) {
            return code;
        }
        // aimq-lint: allow(panic) -- hard capacity limit: 2^32 distinct strings cannot fit in memory, and wrapping codes would silently corrupt every consumer
        let code = u32::try_from(self.values.len()).expect("dictionary exceeds u32 codes");
        self.values.push(value.to_owned());
        self.index.insert(value.to_owned(), code);
        code
    }

    /// Code for `value` if present.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// String for `code` if in range.
    pub fn value_of(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no values have been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All values in code order.
    pub fn values(&self) -> &[String] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut d = Dictionary::new();
        let a = d.intern("Ford");
        let b = d.intern("Toyota");
        let a2 = d.intern("Ford");
        assert_eq!(a, a2);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn lookup_round_trips() {
        let mut d = Dictionary::new();
        for (i, v) in ["a", "b", "c"].iter().enumerate() {
            let code = d.intern(v);
            assert_eq!(code as usize, i);
        }
        for code in 0..3u32 {
            let v = d.value_of(code).unwrap().to_owned();
            assert_eq!(d.code_of(&v), Some(code));
        }
        assert_eq!(d.code_of("missing"), None);
        assert_eq!(d.value_of(99), None);
    }

    #[test]
    fn values_in_code_order() {
        let mut d = Dictionary::new();
        d.intern("z");
        d.intern("a");
        d.intern("m");
        assert_eq!(d.values(), &["z", "a", "m"]);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
