//! Client-side resilience policy for fallible autonomous sources.
//!
//! [`ResilientWebDb`] wraps any [`WebDatabase`] with bounded retry +
//! exponential backoff (deterministic jitter), a consecutive-failure
//! circuit breaker and a per-session probe budget. All waiting happens on
//! a [`VirtualClock`] — a monotone tick counter, never the wall clock —
//! so retry schedules are exactly replayable and tests need no sleeping.
//!
//! Time model: one *tick* is an abstract probe interval. Backoff advances
//! the clock by the wait it would impose; while the breaker is open, each
//! rejected probe advances the clock by one tick, so the breaker
//! half-opens after `breaker_cooldown` rejected probes (or earlier, if
//! backoff elsewhere moved the clock forward).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use aimq_catalog::{Schema, SelectionQuery};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::web::lock_stats;
use crate::{AccessStats, QueryError, QueryPage, WebDatabase};

/// A monotone virtual clock counting abstract ticks.
///
/// Shared by reference; advancing is wait-free.
#[derive(Debug, Default)]
pub struct VirtualClock {
    // aimq-atomic: counter -- wait-free monotone tick tally; readers only
    // need an eventually-current value
    ticks: AtomicU64,
}

impl VirtualClock {
    /// A clock at tick zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Advance by `ticks`.
    pub fn advance(&self, ticks: u64) {
        self.ticks.fetch_add(ticks, Ordering::Relaxed);
    }
}

/// Retry, backoff, breaker and budget knobs of [`ResilientWebDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum re-issues of one failed query (0 = fail on first error).
    pub max_retries: u32,
    /// Backoff before the first retry, in ticks; doubles per attempt.
    pub base_backoff: u64,
    /// Ceiling on the exponential backoff, in ticks.
    pub max_backoff: u64,
    /// Maximum deterministic jitter added to each backoff, in ticks
    /// (drawn from the seeded policy RNG; 0 disables jitter).
    pub max_jitter: u64,
    /// Seed of the jitter stream (replayable runs fix this).
    pub jitter_seed: u64,
    /// Consecutive failed attempts that open the circuit breaker.
    pub breaker_threshold: u32,
    /// Ticks the breaker stays open before half-opening.
    pub breaker_cooldown: u64,
    /// Cap on total attempts against the source per session (`None` =
    /// unlimited). Exhaustion fails fast with
    /// [`QueryError::Unavailable`].
    pub probe_budget: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: 1,
            max_backoff: 16,
            max_jitter: 1,
            jitter_seed: 0,
            breaker_threshold: 8,
            breaker_cooldown: 32,
            probe_budget: None,
        }
    }
}

/// Resilience outcome counters, separate from the raw access meter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Failed attempts that were re-issued.
    // aimq-arith: counter -- monotone event tally; compared against the probe budget
    pub retries: u64,
    /// Closed → open breaker transitions.
    // aimq-arith: counter -- monotone event tally
    pub breaker_trips: u64,
    /// Half-open trial probes that succeeded and closed the breaker.
    // aimq-arith: counter -- monotone event tally
    pub breaker_recoveries: u64,
    /// Probes rejected without touching the source (open breaker or
    /// exhausted budget).
    // aimq-arith: counter -- monotone event tally
    pub fast_failures: u64,
    /// Total attempts issued against the inner source.
    // aimq-arith: counter -- monotone event tally; compared against the probe budget
    pub attempts: u64,
}

#[derive(Debug)]
struct ResilientState {
    rng: StdRng,
    // aimq-arith: counter -- u32 failure streak; with breaker_threshold == 0 it is never reset, so wrap is reachable
    consecutive_failures: u32,
    /// `Some(tick)` while the breaker is open; half-opens at `tick`.
    open_until: Option<u64>,
    /// `true` between a half-open admission and the trial probe's verdict:
    /// the next success counts as a recovery, the next failure re-opens
    /// the breaker immediately with a fresh cooldown.
    half_open: bool,
    report: ResilienceReport,
}

/// A [`WebDatabase`] decorator implementing the client half of the fault
/// model: retry with backoff and jitter over a [`VirtualClock`], a
/// consecutive-failure circuit breaker, and a per-session probe budget.
///
/// Cloning shares the inner database, the clock and all policy state.
#[derive(Debug, Clone)]
pub struct ResilientWebDb<D> {
    inner: D,
    policy: RetryPolicy,
    clock: Arc<VirtualClock>,
    // aimq-lock: family(resilient-state) -- guards breaker/budget/report
    // bookkeeping; released before every probe of the inner database
    state: Arc<Mutex<ResilientState>>,
}

impl<D: WebDatabase> ResilientWebDb<D> {
    /// Wrap `inner` under `policy` with a fresh clock at tick zero.
    pub fn new(inner: D, policy: RetryPolicy) -> Self {
        Self::with_clock(inner, policy, Arc::new(VirtualClock::new()))
    }

    /// Wrap `inner` sharing an existing clock (several wrappers can ride
    /// one session timeline).
    pub fn with_clock(inner: D, policy: RetryPolicy, clock: Arc<VirtualClock>) -> Self {
        ResilientWebDb {
            inner,
            policy,
            clock,
            state: Arc::new(Mutex::new(ResilientState {
                rng: StdRng::seed_from_u64(policy.jitter_seed),
                consecutive_failures: 0,
                open_until: None,
                half_open: false,
                report: ResilienceReport::default(),
            })),
        }
    }

    /// The session clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Borrow the wrapped database.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Snapshot of the resilience counters.
    pub fn report(&self) -> ResilienceReport {
        lock_stats(&self.state).report
    }

    /// `true` while the breaker is open (cooldown not yet elapsed).
    pub fn breaker_open(&self) -> bool {
        let state = lock_stats(&self.state);
        state
            .open_until
            .is_some_and(|until| self.clock.now() < until)
    }

    /// Backoff + jitter before retry number `attempt` (1-based), honoring
    /// a rate-limit hint when present.
    fn wait_for(&self, state: &mut ResilientState, attempt: u32, error: QueryError) -> u64 {
        let base = if let QueryError::RateLimited { retry_after } = error {
            retry_after.max(1)
        } else {
            let exp = self
                .policy
                .base_backoff
                .saturating_mul(1u64 << attempt.saturating_sub(1).min(62));
            exp.clamp(1, self.policy.max_backoff.max(1))
        };
        let jitter = if self.policy.max_jitter > 0 {
            state.rng.random_range(0..=self.policy.max_jitter)
        } else {
            0
        };
        base + jitter
    }

    /// Record a failed attempt; trips the breaker at the threshold. A
    /// failed half-open trial re-opens the breaker immediately with a
    /// fresh cooldown — the source has not proven itself healthy, so it
    /// does not get `breaker_threshold` fresh failures of grace.
    fn note_failure(&self, state: &mut ResilientState) {
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        if self.policy.breaker_threshold == 0 {
            return;
        }
        let failed_trial = std::mem::take(&mut state.half_open);
        if (failed_trial || state.consecutive_failures >= self.policy.breaker_threshold)
            && state.open_until.is_none()
        {
            state.open_until = Some(self.clock.now() + self.policy.breaker_cooldown);
            state.report.breaker_trips = state.report.breaker_trips.saturating_add(1);
        }
    }
}

impl<D: WebDatabase> WebDatabase for ResilientWebDb<D> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    // aimq-probe: entry -- retry/breaker wrapper; every attempt and rejection is metered in ResilienceReport
    fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError> {
        let mut attempt: u32 = 0;
        loop {
            {
                let mut state = lock_stats(&self.state);
                // Fast-fail while the breaker is open; each rejection
                // advances virtual time one tick (see module docs).
                if let Some(until) = state.open_until {
                    if self.clock.now() < until {
                        state.report.fast_failures = state.report.fast_failures.saturating_add(1);
                        drop(state);
                        self.clock.advance(1);
                        return Err(QueryError::Unavailable);
                    }
                    // Cooldown elapsed: half-open, admit one trial.
                    state.open_until = None;
                    state.consecutive_failures = 0;
                    state.half_open = true;
                }
                // Probe budget is spent per attempt, retries included.
                if let Some(budget) = self.policy.probe_budget {
                    if state.report.attempts >= budget {
                        state.report.fast_failures = state.report.fast_failures.saturating_add(1);
                        return Err(QueryError::Unavailable);
                    }
                }
                state.report.attempts = state.report.attempts.saturating_add(1);
            }

            match self.inner.try_query(query) {
                Ok(page) => {
                    let mut state = lock_stats(&self.state);
                    state.consecutive_failures = 0;
                    if std::mem::take(&mut state.half_open) {
                        state.report.breaker_recoveries =
                            state.report.breaker_recoveries.saturating_add(1);
                    }
                    return Ok(page);
                }
                Err(error) => {
                    let mut state = lock_stats(&self.state);
                    self.note_failure(&mut state);
                    let breaker_opened = state.open_until.is_some();
                    if !error.is_retryable() || attempt >= self.policy.max_retries || breaker_opened
                    {
                        return Err(error);
                    }
                    attempt += 1;
                    state.report.retries = state.report.retries.saturating_add(1);
                    let wait = self.wait_for(&mut state, attempt, error);
                    drop(state);
                    self.clock.advance(wait);
                }
            }
        }
    }

    fn stats(&self) -> AccessStats {
        let inner = self.inner.stats();
        let state = lock_stats(&self.state);
        AccessStats {
            retries: inner.retries.saturating_add(state.report.retries),
            failures: inner.failures.saturating_add(state.report.fast_failures),
            breaker_trips: inner
                .breaker_trips
                .saturating_add(state.report.breaker_trips),
            breaker_recoveries: inner
                .breaker_recoveries
                .saturating_add(state.report.breaker_recoveries),
            ..inner
        }
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
        lock_stats(&self.state).report = ResilienceReport::default();
    }

    fn source_health(&self) -> Option<Vec<crate::SourceHealth>> {
        self.inner.source_health()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultInjectingWebDb, FaultProfile, InMemoryWebDb, RateLimitWindow, Relation};
    use aimq_catalog::{Schema, Tuple, Value};

    fn base_db() -> InMemoryWebDb {
        let schema = Schema::builder("R")
            .categorical("Make")
            .numeric("Price")
            .build()
            .unwrap();
        let tuples: Vec<Tuple> = (0..6)
            .map(|i| {
                Tuple::new(
                    &schema,
                    vec![Value::cat("Toyota"), Value::num(1000.0 * f64::from(i))],
                )
                .unwrap()
            })
            .collect();
        InMemoryWebDb::new(Relation::from_tuples(schema, &tuples).unwrap())
    }

    fn flaky_db(seed: u64) -> FaultInjectingWebDb<InMemoryWebDb> {
        FaultInjectingWebDb::new(base_db(), FaultProfile::flaky(), seed)
    }

    #[test]
    fn retries_absorb_transient_failures() {
        let db = ResilientWebDb::new(flaky_db(42), RetryPolicy::default());
        let mut failures = 0usize;
        for _ in 0..300 {
            if db.try_query(&SelectionQuery::all()).is_err() {
                failures += 1;
            }
        }
        // P(4 consecutive 10% failures) = 1e-4; over 300 queries the
        // expected number of surfaced failures is ~0.03.
        assert_eq!(failures, 0, "retries should absorb a 10% flaky source");
        let r = db.report();
        assert!(r.retries > 0, "some retries must have happened");
        assert_eq!(db.stats().retries, r.retries);
    }

    #[test]
    fn backoff_advances_virtual_clock_only() {
        let db = ResilientWebDb::new(flaky_db(7), RetryPolicy::default());
        for _ in 0..200 {
            let _ = db.try_query(&SelectionQuery::all());
        }
        let r = db.report();
        assert!(r.retries > 0);
        assert!(
            db.clock().now() >= r.retries,
            "each retry waits at least one tick"
        );
    }

    #[test]
    fn rate_limit_hint_drives_backoff() {
        let profile = FaultProfile {
            rate_limit: Some(RateLimitWindow {
                period: 1,
                burst: 1,
                retry_after: 10,
            }),
            ..FaultProfile::none()
        };
        let inner = FaultInjectingWebDb::new(base_db(), profile, 1);
        let policy = RetryPolicy {
            max_jitter: 0,
            ..RetryPolicy::default()
        };
        let db = ResilientWebDb::new(inner, policy);
        // Query 0 succeeds; query 1 hits the burst, waits ≥ 10 ticks,
        // then the retry (ordinal 2) succeeds.
        assert!(db.try_query(&SelectionQuery::all()).is_ok());
        let before = db.clock().now();
        assert!(db.try_query(&SelectionQuery::all()).is_ok());
        assert!(db.clock().now() - before >= 10);
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_half_opens() {
        let dead = FaultInjectingWebDb::new(
            base_db(),
            FaultProfile {
                transient_probability: 1.0,
                ..FaultProfile::none()
            },
            1,
        );
        let policy = RetryPolicy {
            max_retries: 10,
            breaker_threshold: 3,
            breaker_cooldown: 4,
            ..RetryPolicy::default()
        };
        let db = ResilientWebDb::new(dead, policy);
        // First query: 3 consecutive failures trip the breaker mid-retry.
        assert!(db.try_query(&SelectionQuery::all()).is_err());
        assert!(db.breaker_open());
        assert_eq!(db.report().breaker_trips, 1);
        // While open: fast Unavailable without touching the source.
        let attempts_before = db.report().attempts;
        for _ in 0..4 {
            assert_eq!(
                db.try_query(&SelectionQuery::all()),
                Err(QueryError::Unavailable)
            );
        }
        assert_eq!(db.report().attempts, attempts_before);
        // Rejections advanced the clock past the cooldown: half-open
        // admits a trial again (which fails and re-trips eventually).
        assert!(!db.breaker_open());
        let _ = db.try_query(&SelectionQuery::all());
        assert!(db.report().attempts > attempts_before);
    }

    #[test]
    fn breaker_recovers_when_source_heals() {
        // A 50% source with no retries trips a threshold-2 breaker over
        // and over; half-opening must keep admitting trials, so successes
        // keep flowing.
        let flaky = FaultInjectingWebDb::new(
            base_db(),
            FaultProfile {
                transient_probability: 0.5,
                ..FaultProfile::none()
            },
            9,
        );
        let policy = RetryPolicy {
            max_retries: 0,
            breaker_threshold: 2,
            breaker_cooldown: 2,
            ..RetryPolicy::default()
        };
        let db = ResilientWebDb::new(flaky, policy);
        let mut successes = 0usize;
        for _ in 0..200 {
            if db.try_query(&SelectionQuery::all()).is_ok() {
                successes += 1;
            }
        }
        assert!(successes > 0, "breaker must keep half-opening");
        assert!(db.report().breaker_trips > 0);
    }

    /// An inner source that plays a fixed fail/succeed script, front
    /// first; once the script runs dry every probe succeeds. Gives the
    /// half-open tests fully deterministic fault timing.
    struct ScriptedDb {
        inner: InMemoryWebDb,
        script: Mutex<std::collections::VecDeque<bool>>,
    }

    impl ScriptedDb {
        fn failing_first(failures: &[bool]) -> Self {
            ScriptedDb {
                inner: base_db(),
                script: Mutex::new(failures.iter().copied().collect()),
            }
        }
    }

    impl WebDatabase for ScriptedDb {
        fn schema(&self) -> &Schema {
            self.inner.schema()
        }

        fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError> {
            let fail = lock_stats(&self.script).pop_front().unwrap_or(false);
            if fail {
                Err(QueryError::Transient)
            } else {
                self.inner.try_query(query)
            }
        }

        fn stats(&self) -> AccessStats {
            self.inner.stats()
        }

        fn reset_stats(&self) {
            self.inner.reset_stats();
        }
    }

    fn half_open_policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            max_jitter: 0,
            breaker_threshold: 2,
            breaker_cooldown: 3,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn half_open_success_closes_breaker_and_counts_recovery() {
        // Two failures trip the threshold-2 breaker; the half-open trial
        // succeeds, which must close the breaker and count one recovery.
        let db = ResilientWebDb::new(ScriptedDb::failing_first(&[true, true]), half_open_policy());
        assert!(db.try_query(&SelectionQuery::all()).is_err());
        assert!(db.try_query(&SelectionQuery::all()).is_err());
        assert!(db.breaker_open());
        assert_eq!(db.report().breaker_trips, 1);
        // Three fast-fails walk the clock through the cooldown.
        for _ in 0..3 {
            assert_eq!(
                db.try_query(&SelectionQuery::all()),
                Err(QueryError::Unavailable)
            );
        }
        assert!(!db.breaker_open());
        // Half-open trial: succeeds, breaker closes, recovery counted.
        assert!(db.try_query(&SelectionQuery::all()).is_ok());
        assert!(!db.breaker_open());
        assert_eq!(db.report().breaker_recoveries, 1);
        assert_eq!(db.stats().breaker_recoveries, 1);
        // Steady state: subsequent probes flow without fast-fails.
        let fast_failures = db.report().fast_failures;
        assert!(db.try_query(&SelectionQuery::all()).is_ok());
        assert_eq!(db.report().fast_failures, fast_failures);
        // A recovery is not a second trip.
        assert_eq!(db.report().breaker_trips, 1);
    }

    #[test]
    fn half_open_failure_reopens_with_fresh_cooldown() {
        // Two failures trip the breaker; the half-open trial fails too,
        // which must re-open the breaker *immediately* (no threshold-2
        // grace) with a fresh cooldown, and count no recovery.
        let db = ResilientWebDb::new(
            ScriptedDb::failing_first(&[true, true, true]),
            half_open_policy(),
        );
        assert!(db.try_query(&SelectionQuery::all()).is_err());
        assert!(db.try_query(&SelectionQuery::all()).is_err());
        assert_eq!(db.report().breaker_trips, 1);
        for _ in 0..3 {
            assert_eq!(
                db.try_query(&SelectionQuery::all()),
                Err(QueryError::Unavailable)
            );
        }
        assert!(!db.breaker_open());
        // Half-open trial fails: single failure re-trips the breaker.
        assert_eq!(
            db.try_query(&SelectionQuery::all()),
            Err(QueryError::Transient)
        );
        assert!(db.breaker_open(), "failed trial must re-open the breaker");
        assert_eq!(db.report().breaker_trips, 2);
        assert_eq!(db.report().breaker_recoveries, 0);
        // Fresh cooldown: three more rejections before the next trial,
        // which succeeds (script exhausted) and finally recovers.
        for _ in 0..3 {
            assert_eq!(
                db.try_query(&SelectionQuery::all()),
                Err(QueryError::Unavailable)
            );
        }
        assert!(db.try_query(&SelectionQuery::all()).is_ok());
        assert_eq!(db.report().breaker_recoveries, 1);
        assert!(!db.breaker_open());
    }

    #[test]
    fn probe_budget_exhaustion_fails_fast() {
        let db = ResilientWebDb::new(
            base_db(),
            RetryPolicy {
                probe_budget: Some(3),
                ..RetryPolicy::default()
            },
        );
        for _ in 0..3 {
            assert!(db.try_query(&SelectionQuery::all()).is_ok());
        }
        assert_eq!(
            db.try_query(&SelectionQuery::all()),
            Err(QueryError::Unavailable)
        );
        // The inner source never saw the 4th query.
        assert_eq!(db.inner().stats().queries_issued, 3);
        assert_eq!(db.stats().failures, 1);
    }

    #[test]
    fn same_seeds_replay_identical_sessions() {
        let run = || {
            let db = ResilientWebDb::new(
                FaultInjectingWebDb::new(base_db(), FaultProfile::hostile(), 42),
                RetryPolicy {
                    jitter_seed: 5,
                    ..RetryPolicy::default()
                },
            );
            let mut log = Vec::new();
            for _ in 0..150 {
                log.push(format!("{:?}", db.try_query(&SelectionQuery::all())));
            }
            log.push(format!("{:?} clock={}", db.report(), db.clock().now()));
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unavailable_is_not_retried() {
        let dead = FaultInjectingWebDb::new(
            base_db(),
            FaultProfile {
                unavailable_probability: 1.0,
                ..FaultProfile::none()
            },
            1,
        );
        let db = ResilientWebDb::new(dead, RetryPolicy::default());
        assert_eq!(
            db.try_query(&SelectionQuery::all()),
            Err(QueryError::Unavailable)
        );
        assert_eq!(db.report().retries, 0);
        assert_eq!(db.report().attempts, 1);
    }
}
