//! Posting-list set algebra and the shared relaxation-plan executor.
//!
//! Algorithm 1 compiles one imprecise query into dozens of heavily
//! overlapping relaxed selections: every relaxed query of a base tuple's
//! plan is the tuple query minus a few predicates, so consecutive plan
//! entries share almost all of their conjuncts. Evaluating each query
//! independently (the legacy driver-and-verify path in
//! `crate::executor`) re-pays the shared work on every probe.
//!
//! This module evaluates selections as *set algebra over posting lists*:
//!
//! * every categorical equality predicate maps to its inverted-index
//!   posting list (ascending row ids by construction);
//! * every numeric attribute's combined range predicates map, via
//!   `partition_point` over the value-sorted index, to a position range
//!   answered row-id-sorted by the attribute's [`crate::FacetTree`];
//! * a conjunction is the galloping intersection of its per-attribute
//!   term lists, folded in ascending attribute order.
//!
//! Every predicate class reduces to an *exact* row set (type-mismatched,
//! non-equality-on-categorical and null/NaN-valued predicates are
//! provably empty), so no per-row verification pass remains and results
//! are byte-identical to a full scan.
//!
//! [`PlanExecutor`] adds the sharing layer: terms and every intersection
//! *prefix* (in the canonical attribute fold order) are memoized across
//! the queries of one plan, so the common base intersection `Qpr` is
//! evaluated exactly once and each relaxed query only pays its delta.
//! [`ExecStats`] meters the sharing for tests and benchmarks.

use std::collections::BTreeMap;

use aimq_catalog::{AttrId, Domain, Predicate, PredicateOp, SelectionQuery};

use crate::{Relation, RowId};

/// Intersect two ascending, duplicate-free row-id lists by galloping
/// (exponential search) through the larger one.
///
/// For each element of the smaller list the cursor in the larger list
/// advances by doubling probes followed by a binary search inside the
/// overshot window, so the cost is `O(m · log(n/m))` — near-linear in
/// the smaller list when the lists' densities differ, degrading
/// gracefully to a merge when they are similar.
pub fn intersect_gallop(a: &[RowId], b: &[RowId]) -> Vec<RowId> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    let mut rest = large;
    for &x in small {
        if rest.is_empty() {
            break;
        }
        // Gallop: double the probe width until the window's last element
        // reaches `x` (or the list ends), then binary-search the window.
        let mut width = 1usize;
        while rest.get(width - 1).is_some_and(|&y| y < x) {
            width <<= 1;
        }
        let window = rest.get(..width.min(rest.len())).unwrap_or(rest);
        let skip = window.partition_point(|&y| y < x);
        rest = rest.get(skip..).unwrap_or(&[]);
        if let Some(&y) = rest.first() {
            if y == x {
                out.push(x);
                rest = rest.get(1..).unwrap_or(&[]);
            }
        }
    }
    out
}

/// K-way merge union of ascending row-id lists into one ascending,
/// duplicate-free list.
pub fn union_kway(lists: &[&[RowId]]) -> Vec<RowId> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut cursors = vec![0usize; lists.len()];
    let mut heap: BinaryHeap<Reverse<(RowId, usize)>> = lists
        .iter()
        .enumerate()
        .filter_map(|(i, list)| list.first().map(|&row| Reverse((row, i))))
        .collect();
    let mut out = Vec::with_capacity(lists.iter().map(|l| l.len()).sum());
    while let Some(Reverse((row, i))) = heap.pop() {
        if out.last() != Some(&row) {
            out.push(row);
        }
        let next = cursors.get(i).map_or(0, |&c| c + 1);
        if let Some(cursor) = cursors.get_mut(i) {
            *cursor = next;
        }
        if let Some(&row) = lists.get(i).and_then(|list| list.get(next)) {
            heap.push(Reverse((row, i)));
        }
    }
    out
}

/// Sharing meters of a [`PlanExecutor`]: how much term and intersection
/// work the plan's queries shared. `prefix_memo_hits` growing while
/// `intersections_computed` stands still is the executor-level proof
/// that a repeated subexpression — the `Qpr` base intersection above
/// all — was evaluated exactly once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Queries evaluated through [`PlanExecutor::execute`].
    // aimq-arith: counter -- sharing meter, read by tests/benches only
    pub queries_executed: u64,
    /// Per-attribute terms materialized into posting lists (term-memo
    /// misses).
    // aimq-arith: counter -- sharing meter, read by tests/benches only
    pub terms_evaluated: u64,
    /// Terms answered by the term memo without re-evaluation.
    // aimq-arith: counter -- sharing meter, read by tests/benches only
    pub term_memo_hits: u64,
    /// Pairwise intersections actually computed (prefix-memo misses).
    // aimq-arith: counter -- sharing meter, read by tests/benches only
    pub intersections_computed: u64,
    /// Fold prefixes answered by the shared-prefix memo — subexpressions
    /// (including whole queries) this plan did *not* re-evaluate.
    // aimq-arith: counter -- sharing meter, read by tests/benches only
    pub prefix_memo_hits: u64,
}

/// Evaluates the queries of one relaxation plan over a shared
/// subexpression DAG.
///
/// Each query canonicalizes into per-attribute predicate groups
/// ("terms") folded in ascending attribute order. Two memo layers make
/// the plan's overlap free:
///
/// 1. **Term memo** — a term (one attribute's full predicate group)
///    evaluates to a posting list once, however many queries contain it.
/// 2. **Prefix memo** — every fold prefix `t₁ ∩ t₂ ∩ … ∩ tᵢ` is
///    memoized under its term-id sequence. Queries sharing a prefix
///    (every relaxed query shares its leading terms with the base
///    query) reuse the stored intersection and only intersect their
///    delta; a query whose full term sequence was already folded — the
///    base query re-probed, or a duplicate plan entry — costs nothing.
///
/// Lists live in an arena; memo values are arena indexes, so sharing a
/// subexpression never copies it. The executor borrows its relation and
/// is scoped to one plan — cross-plan caching belongs to
/// [`crate::CachedWebDb`] at the source boundary.
#[derive(Debug)]
pub struct PlanExecutor<'a> {
    relation: &'a Relation,
    /// Arena of evaluated row lists (terms and intersections).
    arena: Vec<Vec<RowId>>,
    /// Term memo: canonical per-attribute predicate group → arena index.
    terms: BTreeMap<Vec<Predicate>, usize>,
    /// Prefix memo: term arena-index sequence (canonical fold order) →
    /// arena index of the intersection.
    prefixes: BTreeMap<Vec<usize>, usize>,
    stats: ExecStats,
}

impl<'a> PlanExecutor<'a> {
    /// An executor over `relation` with empty memos.
    pub fn new(relation: &'a Relation) -> Self {
        PlanExecutor {
            relation,
            arena: Vec::new(),
            terms: BTreeMap::new(),
            prefixes: BTreeMap::new(),
            stats: ExecStats::default(),
        }
    }

    /// The sharing meters accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Evaluate one selection, returning matching row ids in ascending
    /// order — byte-identical to a full scan with
    /// [`SelectionQuery::matches`].
    pub fn execute(&mut self, query: &SelectionQuery) -> Vec<RowId> {
        self.stats.queries_executed = self.stats.queries_executed.saturating_add(1);

        // Canonical per-attribute term grouping: ascending attribute
        // order aligns fold prefixes across the plan's queries.
        let mut groups: BTreeMap<AttrId, Vec<Predicate>> = BTreeMap::new();
        for p in query.canonicalize().predicates() {
            groups.entry(p.attr).or_default().push(p.clone());
        }
        if groups.is_empty() {
            // No predicates: every row matches.
            return self.relation.rows().collect();
        }

        let mut prefix: Vec<usize> = Vec::with_capacity(groups.len());
        let mut current: Option<usize> = None;
        for (_, group) in groups {
            let term = self.term_list(group);
            prefix.push(term);
            current = Some(match self.prefixes.get(&prefix) {
                Some(&idx) => {
                    self.stats.prefix_memo_hits = self.stats.prefix_memo_hits.saturating_add(1);
                    idx
                }
                None => {
                    let idx = match current {
                        // A one-term prefix *is* its term: alias, don't copy.
                        None => term,
                        Some(acc) => {
                            self.stats.intersections_computed =
                                self.stats.intersections_computed.saturating_add(1);
                            let merged = intersect_gallop(
                                self.arena.get(acc).map_or(&[], Vec::as_slice),
                                self.arena.get(term).map_or(&[], Vec::as_slice),
                            );
                            self.arena.push(merged);
                            self.arena.len() - 1
                        }
                    };
                    self.prefixes.insert(prefix.clone(), idx);
                    idx
                }
            });
        }
        current
            .and_then(|idx| self.arena.get(idx))
            .cloned()
            .unwrap_or_default()
    }

    /// Arena index of the evaluated term for one attribute's canonical
    /// predicate group, via the term memo.
    fn term_list(&mut self, group: Vec<Predicate>) -> usize {
        if let Some(&idx) = self.terms.get(&group) {
            self.stats.term_memo_hits = self.stats.term_memo_hits.saturating_add(1);
            return idx;
        }
        self.stats.terms_evaluated = self.stats.terms_evaluated.saturating_add(1);
        let rows = evaluate_term(self.relation, &group);
        self.arena.push(rows);
        let idx = self.arena.len() - 1;
        self.terms.insert(group, idx);
        idx
    }
}

/// One-shot evaluation of a single selection through the postings path
/// (a throwaway [`PlanExecutor`]; plans should share one executor).
pub fn execute_query(relation: &Relation, query: &SelectionQuery) -> Vec<RowId> {
    PlanExecutor::new(relation).execute(query)
}

/// Evaluate one attribute's predicate group to its exact ascending row
/// set.
///
/// Exactness case analysis against [`Predicate::matches`]:
///
/// * attribute out of schema range → no tuple value → empty;
/// * null-valued predicate → null tuple values never satisfy anything
///   and non-null values never equal null → empty;
/// * **categorical attribute**: only `Eq` with a categorical value can
///   match (range operators and numeric constants fall to the `matches`
///   catch-all `false`); nulls are excluded from postings at build time,
///   two different equality constants are contradictory → empty;
/// * **numeric attribute**: only numeric constants can match; `NaN`
///   constants satisfy no IEEE comparison and equal no non-null decoded
///   value → empty; finite/infinite constants map to a position range
///   over the value-sorted (NaN-free) index via `partition_point`, with
///   `Eq v` the band `[first ≥ v, first > v)` — exact for `±0.0`
///   (IEEE comparisons are monotone over the `total_cmp` order and
///   collapse the zero pair exactly as `Value`'s equality does) and for
///   `±∞` (no `next_up` widening, unlike the legacy driver).
fn evaluate_term(relation: &Relation, group: &[Predicate]) -> Vec<RowId> {
    let Some(attribute) = relation
        .schema()
        .attributes()
        .get(group.first().map(|p| p.attr.index()).unwrap_or(usize::MAX))
    else {
        return Vec::new();
    };
    if group.iter().any(|p| p.value.is_null()) {
        return Vec::new();
    }
    match attribute.domain() {
        Domain::Categorical => {
            let mut value: Option<&str> = None;
            for p in group {
                let (PredicateOp::Eq, Some(cat)) = (p.op, p.value.as_cat()) else {
                    return Vec::new();
                };
                match value {
                    Some(v) if v != cat => return Vec::new(),
                    _ => value = Some(cat),
                }
            }
            let attr = group.first().map(|p| p.attr);
            match (attr, value) {
                (Some(attr), Some(cat)) => relation.rows_with_value(attr, cat).to_vec(),
                _ => Vec::new(),
            }
        }
        Domain::Numeric => {
            let Some(attr) = group.first().map(|p| p.attr) else {
                return Vec::new();
            };
            let index = relation.numeric_sorted(attr);
            let mut start = 0usize;
            let mut end = index.len();
            for p in group {
                let Some(v) = p.value.as_num() else {
                    return Vec::new();
                };
                if v.is_nan() {
                    return Vec::new();
                }
                // `partition_point` with IEEE comparisons: monotone over
                // the NaN-free `total_cmp` order, exact at ±0.0 and ±∞.
                match p.op {
                    PredicateOp::Ge => start = start.max(index.partition_point(|&(x, _)| x < v)),
                    PredicateOp::Gt => start = start.max(index.partition_point(|&(x, _)| x <= v)),
                    PredicateOp::Lt => end = end.min(index.partition_point(|&(x, _)| x < v)),
                    PredicateOp::Le => end = end.min(index.partition_point(|&(x, _)| x <= v)),
                    PredicateOp::Eq => {
                        start = start.max(index.partition_point(|&(x, _)| x < v));
                        end = end.min(index.partition_point(|&(x, _)| x <= v));
                    }
                }
            }
            if start >= end {
                return Vec::new();
            }
            match relation.facet_tree(attr) {
                Some(tree) => tree.rows_in_positions(start, end),
                None => {
                    // No tree (categorical attr can't reach here; defensive):
                    // sort the sliced positions directly.
                    let mut rows: Vec<RowId> = index
                        .get(start..end)
                        .unwrap_or(&[])
                        .iter()
                        .map(|&(_, row)| row)
                        .collect();
                    rows.sort_unstable();
                    rows
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_catalog::{Schema, Tuple, Value};
    use proptest::prelude::*;

    #[test]
    fn gallop_intersection_basics() {
        assert_eq!(intersect_gallop(&[], &[1, 2, 3]), Vec::<RowId>::new());
        assert_eq!(intersect_gallop(&[1, 2, 3], &[]), Vec::<RowId>::new());
        assert_eq!(
            intersect_gallop(&[1, 3, 5], &[2, 4, 6]),
            Vec::<RowId>::new()
        );
        assert_eq!(intersect_gallop(&[1, 2, 3], &[1, 2, 3]), vec![1, 2, 3]);
        assert_eq!(
            intersect_gallop(&[2, 4, 9, 100], &[0, 2, 5, 9, 10, 11, 12, 99, 100, 101]),
            vec![2, 9, 100]
        );
    }

    #[test]
    fn union_kway_basics() {
        assert_eq!(union_kway(&[]), Vec::<RowId>::new());
        assert_eq!(union_kway(&[&[], &[]]), Vec::<RowId>::new());
        assert_eq!(union_kway(&[&[1, 3], &[2, 4]]), vec![1, 2, 3, 4]);
        assert_eq!(
            union_kway(&[&[1, 2, 3], &[2, 3, 4], &[0, 4]]),
            vec![0, 1, 2, 3, 4]
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn gallop_matches_reference_intersection(
            a in prop::collection::vec(0u32..200, 0..80),
            b in prop::collection::vec(0u32..200, 0..80),
        ) {
            let (mut a, mut b) = (a, b);
            a.sort_unstable(); a.dedup();
            b.sort_unstable(); b.dedup();
            let expect: Vec<RowId> = a.iter().copied().filter(|x| b.contains(x)).collect();
            prop_assert_eq!(intersect_gallop(&a, &b), expect);
        }

        #[test]
        fn union_matches_reference_union(
            lists in prop::collection::vec(prop::collection::vec(0u32..100, 0..30), 0..6),
        ) {
            let sorted: Vec<Vec<RowId>> = lists
                .iter()
                .map(|l| { let mut l = l.clone(); l.sort_unstable(); l.dedup(); l })
                .collect();
            let slices: Vec<&[RowId]> = sorted.iter().map(Vec::as_slice).collect();
            let mut expect: Vec<RowId> = sorted.iter().flatten().copied().collect();
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(union_kway(&slices), expect);
        }
    }

    fn relation() -> Relation {
        let schema = Schema::builder("CarDB")
            .categorical("Make")
            .categorical("Model")
            .numeric("Year")
            .numeric("Price")
            .build()
            .unwrap();
        let rows = [
            ("Toyota", "Camry", 2000.0, 10000.0),
            ("Toyota", "Camry", 1998.0, 7000.0),
            ("Honda", "Accord", 2001.0, 11000.0),
            ("Toyota", "Corolla", 2000.0, 8500.0),
            ("Ford", "Focus", 2002.0, 9000.0),
            ("Honda", "Civic", 1999.0, 6500.0),
        ];
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|&(mk, md, y, p)| {
                Tuple::new(
                    &schema,
                    vec![Value::cat(mk), Value::cat(md), Value::num(y), Value::num(p)],
                )
                .unwrap()
            })
            .collect();
        Relation::from_tuples(schema, &tuples).unwrap()
    }

    fn scan(r: &Relation, q: &SelectionQuery) -> Vec<RowId> {
        r.rows().filter(|&i| q.matches(&r.tuple(i))).collect()
    }

    #[test]
    fn executor_matches_scan_on_mixed_queries() {
        let r = relation();
        let queries = [
            SelectionQuery::all(),
            SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("Toyota"))]),
            SelectionQuery::new(vec![
                Predicate::eq(AttrId(0), Value::cat("Toyota")),
                Predicate::eq(AttrId(1), Value::cat("Camry")),
            ]),
            SelectionQuery::new(vec![
                Predicate::eq(AttrId(0), Value::cat("Honda")),
                Predicate {
                    attr: AttrId(3),
                    op: PredicateOp::Ge,
                    value: Value::num(7000.0),
                },
                Predicate {
                    attr: AttrId(3),
                    op: PredicateOp::Lt,
                    value: Value::num(11000.0),
                },
            ]),
            // Contradictions and type mismatches are exactly empty.
            SelectionQuery::new(vec![
                Predicate::eq(AttrId(0), Value::cat("Toyota")),
                Predicate::eq(AttrId(0), Value::cat("Honda")),
            ]),
            SelectionQuery::new(vec![Predicate::eq(AttrId(2), Value::cat("2000"))]),
            SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::num(1.0))]),
            SelectionQuery::new(vec![Predicate::eq(AttrId(99), Value::cat("x"))]),
            SelectionQuery::new(vec![Predicate {
                attr: AttrId(3),
                op: PredicateOp::Lt,
                value: Value::num(f64::NAN),
            }]),
            SelectionQuery::new(vec![Predicate::eq(AttrId(3), Value::Null)]),
        ];
        let mut exec = PlanExecutor::new(&r);
        for q in &queries {
            // Out-of-schema attributes would panic the scan; they are
            // exactly empty by the executor's contract.
            let expect = if q.predicates().iter().all(|p| p.attr.index() < 4) {
                scan(&r, q)
            } else {
                Vec::new()
            };
            assert_eq!(exec.execute(q), expect, "query {q:?}");
            assert_eq!(execute_query(&r, q), expect, "one-shot {q:?}");
        }
    }

    #[test]
    fn shared_plan_evaluates_base_intersection_exactly_once() {
        let r = relation();
        let base = SelectionQuery::new(vec![
            Predicate::eq(AttrId(0), Value::cat("Toyota")),
            Predicate::eq(AttrId(1), Value::cat("Camry")),
            Predicate::eq(AttrId(2), Value::num(2000.0)),
        ]);
        // Algorithm 1's plan shape: the base query, then relaxations
        // dropping one attribute each, then the base query again (a
        // re-probe after relaxation — the redundancy the DAG absorbs).
        let plan = [
            base.clone(),
            base.relax(&[AttrId(2)]),
            base.relax(&[AttrId(1)]),
            base.relax(&[AttrId(0)]),
            base.clone(),
        ];
        let mut exec = PlanExecutor::new(&r);
        let results: Vec<Vec<RowId>> = plan.iter().map(|q| exec.execute(q)).collect();
        for (q, rows) in plan.iter().zip(&results) {
            assert_eq!(rows, &scan(&r, q));
        }
        assert_eq!(results[0], results[4], "re-probed base identical");

        let stats = exec.stats();
        assert_eq!(stats.queries_executed, 5);
        // Three distinct terms: Make, Model, Year.
        assert_eq!(stats.terms_evaluated, 3);
        // Intersections: base folds Make∩Model then ∩Year (2);
        // relax(Year) = Make∩Model is a prefix hit; relax(Model) folds
        // Make∩Year (1); relax(Make) folds Model∩Year (1); the re-probed
        // base is a pure prefix hit. The base intersection was computed
        // exactly once.
        assert_eq!(stats.intersections_computed, 4);
        let before = stats.prefix_memo_hits;
        let again = exec.execute(&base);
        assert_eq!(again, results[0]);
        let after = exec.stats();
        assert_eq!(
            after.intersections_computed, 4,
            "re-probing Qpr computes nothing new"
        );
        assert!(after.prefix_memo_hits > before);
    }

    #[test]
    fn permuted_and_duplicated_predicates_share_terms() {
        let r = relation();
        let a = Predicate::eq(AttrId(0), Value::cat("Toyota"));
        let b = Predicate {
            attr: AttrId(3),
            op: PredicateOp::Lt,
            value: Value::num(9000.0),
        };
        let q1 = SelectionQuery::new(vec![a.clone(), b.clone()]);
        let q2 = SelectionQuery::new(vec![b.clone(), a.clone(), a.clone()]);
        let mut exec = PlanExecutor::new(&r);
        let r1 = exec.execute(&q1);
        let r2 = exec.execute(&q2);
        assert_eq!(r1, r2);
        assert_eq!(r1, scan(&r, &q1));
        let stats = exec.stats();
        assert_eq!(stats.terms_evaluated, 2, "permutation shares both terms");
        assert_eq!(stats.intersections_computed, 1);
        assert_eq!(stats.prefix_memo_hits, 2, "q2 is a whole-prefix replay");
    }

    #[test]
    fn numeric_edge_values_are_exact() {
        let schema = Schema::builder("R").numeric("X").build().unwrap();
        let values = [f64::NEG_INFINITY, -1.0, -0.0, 0.0, 1.0, f64::INFINITY];
        let tuples: Vec<Tuple> = values
            .iter()
            .map(|&v| Tuple::new(&schema, vec![Value::num(v)]).unwrap())
            .collect();
        let r = Relation::from_tuples(schema, &tuples).unwrap();
        for op in [
            PredicateOp::Eq,
            PredicateOp::Lt,
            PredicateOp::Le,
            PredicateOp::Gt,
            PredicateOp::Ge,
        ] {
            for &v in &values {
                let q = SelectionQuery::new(vec![Predicate {
                    attr: AttrId(0),
                    op,
                    value: Value::num(v),
                }]);
                assert_eq!(
                    execute_query(&r, &q),
                    scan(&r, &q),
                    "op {op:?} constant {v}"
                );
            }
        }
    }
}
