#![warn(missing_docs)]

//! # aimq-storage
//!
//! The storage substrate of the AIMQ reproduction: an in-memory,
//! dictionary-encoded column store plus the *autonomous Web database*
//! facade the paper assumes.
//!
//! The paper's setting (Section 3.1) imposes two constraints that shape
//! this crate:
//!
//! 1. the relation `R` supports only the **boolean query processing
//!    model** — a tuple either satisfies a conjunctive selection or it does
//!    not; no ranking, no similarity operators; and
//! 2. the database is **autonomous**: AIMQ may not alter its data model and
//!    can only learn statistics by *probing* it with ordinary queries.
//!
//! Accordingly, the full-featured [`Relation`] (random access, dictionary
//! codes, samples) is available only to the code that *owns* data — the
//! dataset generators and the mining pipeline working on a probed sample —
//! while the query engine in the `aimq` crate talks to the source through
//! the deliberately narrow [`WebDatabase`] trait, whose implementations
//! meter every query and every tuple returned (the `Work` measure of
//! Section 6.3 is exactly this meter).
//!
//! Categorical values are dictionary-encoded (`u32` codes) at load time;
//! TANE partitions, supertuple bags and ROCK neighbor sets all operate on
//! codes rather than strings.
//!
//! Because real autonomous sources fail constantly, the boundary is
//! *fallible*: [`WebDatabase::try_query`] returns a [`QueryPage`] (tuples
//! plus a truncation flag) or a typed [`QueryError`]. Two decorators
//! compose on top of any source: [`FaultInjectingWebDb`] replays a seeded,
//! deterministic fault schedule (the evaluation's `none`/`flaky`/`hostile`
//! profiles), and [`ResilientWebDb`] implements bounded retry with
//! exponential backoff + jitter over a [`VirtualClock`], a
//! consecutive-failure circuit breaker, and a per-session probe budget.
//! A third decorator, [`CachedWebDb`], memoizes successful complete pages
//! keyed on the canonicalized query, so repeated probes never touch the
//! source (and never charge the probe budget — stack it outermost). See
//! DESIGN.md, "Fault model & degradation semantics" and "Probe caching &
//! dedup semantics".

mod cache;
mod column;
mod csv;
mod dictionary;
mod executor;
mod facet;
mod fault;
mod federated;
mod postings;
mod relation;
mod resilient;
mod sampler;
mod web;

pub use cache::{CachedWebDb, DEFAULT_CACHE_CAPACITY, DEFAULT_CACHE_STRIPES};
pub use column::{Column, NULL_CODE};
pub use csv::{read_csv, write_csv, CsvError};
pub use dictionary::Dictionary;
pub use executor::{access_path, execute, execute_rows, execute_rows_legacy, AccessPath};
pub use facet::FacetTree;
pub use fault::{FaultInjectingWebDb, FaultProfile, RateLimitWindow, TruncationPolicy};
pub use federated::{
    FederatedSource, FederatedWebDb, FederationPolicy, SchemaMapping, SourceHealth, SourceSpec,
};
pub use postings::{execute_query, intersect_gallop, union_kway, ExecStats, PlanExecutor};
pub use relation::{Relation, RelationBuilder, RowId};
pub use resilient::{ResilienceReport, ResilientWebDb, RetryPolicy, VirtualClock};
pub use sampler::{probe_by_spanning_queries, random_sample, ProbeError};
pub use web::{AccessStats, InMemoryWebDb, QueryError, QueryPage, StatsCell, WebDatabase};
