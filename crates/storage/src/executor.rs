use aimq_catalog::{AttrId, PredicateOp, SelectionQuery, Tuple};

use crate::{Relation, RowId};

/// Evaluate a boolean conjunctive selection over a relation, returning
/// matching row ids in ascending order.
///
/// Since the posting-list rewrite this routes through
/// [`crate::postings`]: every predicate class reduces to an exact sorted
/// row set (inverted postings for categorical equality, facet-tree
/// position ranges for numeric bounds) and the conjunction is a galloping
/// intersection — no per-row verification pass. Output is byte-identical
/// to the legacy driver-and-verify path, which is retained as
/// [`execute_rows_legacy`] for differential testing. Plans of overlapping
/// queries should share a [`crate::PlanExecutor`] instead of calling this
/// per query.
pub fn execute_rows(relation: &Relation, query: &SelectionQuery) -> Vec<RowId> {
    crate::postings::execute_query(relation, query)
}

/// The index path [`execute_rows_legacy`] drives a query from, exposed so
/// tests can pin access-path determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Drive from a categorical equality posting list on this attribute.
    Categorical(AttrId),
    /// Drive from the sorted numeric index on this attribute.
    NumericRange(AttrId),
    /// Some attribute's combined bounds are provably empty — the whole
    /// conjunction short-circuits without touching any index.
    EmptyBounds(AttrId),
    /// No indexable predicate: verify every row.
    FullScan,
}

/// Pick the driver [`execute_rows_legacy`] would use for `query`.
///
/// Candidates are gathered from the *canonicalized* predicate list and
/// ties in candidate size break deterministically by
/// `(len, attr, driver kind)` — categorical before numeric — so a query
/// and any predicate permutation of it scan the same index path and
/// report the same probe/scan work.
pub fn access_path(relation: &Relation, query: &SelectionQuery) -> AccessPath {
    // (len, attr index, kind) candidate keys; kind 0 = categorical
    // posting, 1 = numeric range.
    let mut best: Option<(usize, usize, u8)> = None;
    let canon = query.canonicalize();

    for p in canon.predicates() {
        if p.op != PredicateOp::Eq {
            continue;
        }
        if let Some(cat) = p.value.as_cat() {
            let key = (
                relation.rows_with_value(p.attr, cat).len(),
                p.attr.index(),
                0,
            );
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
    }

    let mut numeric_attrs: Vec<AttrId> = canon
        .predicates()
        .iter()
        .filter(|p| p.value.as_num().is_some())
        .map(|p| p.attr)
        .collect();
    numeric_attrs.sort_unstable();
    numeric_attrs.dedup();
    for attr in numeric_attrs {
        match combined_bounds(&canon, attr) {
            Some(NumericBounds::Empty) => return AccessPath::EmptyBounds(attr),
            Some(NumericBounds::Range(lo, hi)) => {
                let key = (relation.rows_in_range(attr, lo, hi).len(), attr.index(), 1);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            None => {}
        }
    }

    match best {
        Some((_, attr, 0)) => AccessPath::Categorical(AttrId(attr)),
        Some((_, attr, _)) => AccessPath::NumericRange(AttrId(attr)),
        None => AccessPath::FullScan,
    }
}

/// The pre-rewrite driver-and-verify executor, retained for differential
/// testing against the posting-list path.
///
/// Access-path selection: the executor considers
///
/// * every equality predicate on a categorical attribute (inverted-index
///   posting list), and
/// * every numeric attribute's combined range bounds (sorted-index binary
///   search),
///
/// drives from the smallest candidate set (ties broken by
/// [`access_path`]'s deterministic key), and verifies the remaining
/// predicates row by row. Queries with no indexable predicate fall back
/// to a full scan; a provably-empty combined bound short-circuits the
/// whole conjunction.
///
/// Known inexactness, inherited and kept for fidelity: the half-open
/// numeric driver can never yield rows valued `+∞` (`x < ∞` excludes
/// them), so differential tests against this path use finite data values;
/// the postings path is exact there.
pub fn execute_rows_legacy(relation: &Relation, query: &SelectionQuery) -> Vec<RowId> {
    enum Driver<'a> {
        Categorical(&'a [RowId]),
        Numeric(&'a [(f64, RowId)]),
    }

    // Candidates keyed for the deterministic (len, attr, kind) tie-break;
    // built from the canonicalized query so predicate permutations take
    // identical paths (see `access_path`, which mirrors this selection).
    let canon = query.canonicalize();
    let mut candidates: Vec<((usize, usize, u8), Driver)> = Vec::new();

    // Categorical equality postings.
    for p in canon.predicates() {
        if p.op != PredicateOp::Eq {
            continue;
        }
        if let Some(cat) = p.value.as_cat() {
            let rows = relation.rows_with_value(p.attr, cat);
            candidates.push(((rows.len(), p.attr.index(), 0), Driver::Categorical(rows)));
        }
    }

    // Numeric range bounds, combined per attribute.
    let mut numeric_attrs: Vec<AttrId> = canon
        .predicates()
        .iter()
        .filter(|p| p.value.as_num().is_some())
        .map(|p| p.attr)
        .collect();
    numeric_attrs.sort_unstable();
    numeric_attrs.dedup();
    for attr in numeric_attrs {
        match combined_bounds(&canon, attr) {
            // Provably empty (contradictory or NaN bounds): nothing can
            // match — don't walk any index or the verify loop.
            Some(NumericBounds::Empty) => return Vec::new(),
            Some(NumericBounds::Range(lo, hi)) => {
                let rows = relation.rows_in_range(attr, lo, hi);
                candidates.push(((rows.len(), attr.index(), 1), Driver::Numeric(rows)));
            }
            None => {}
        }
    }

    let best = candidates.into_iter().min_by_key(|&(key, _)| key);

    let verify = |row: RowId| query.matches(&relation.tuple(row));
    match best {
        Some((_, Driver::Categorical(rows))) => {
            rows.iter().copied().filter(|&r| verify(r)).collect()
        }
        Some((_, Driver::Numeric(rows))) => {
            let mut out: Vec<RowId> = rows
                .iter()
                .map(|&(_, r)| r)
                .filter(|&r| verify(r))
                .collect();
            out.sort_unstable();
            out
        }
        None => relation.rows().filter(|&r| verify(r)).collect(),
    }
}

/// Combined `[lo, hi)` driver bounds implied by `query`'s numeric
/// predicates on `attr`.
enum NumericBounds {
    /// Drive from this half-open range (a *superset* of the matches —
    /// every predicate is re-verified, so `>`/`=`/`<=` are widened).
    Range(f64, f64),
    /// The bounds are provably empty: contradictory (`lo >= hi`, which
    /// includes the half-open `Ge v ∧ Lt v` case) or NaN-valued (no IEEE
    /// comparison admits NaN, so such a predicate matches nothing).
    Empty,
}

/// `None` when `query` has no numeric predicate on `attr`.
fn combined_bounds(query: &SelectionQuery, attr: AttrId) -> Option<NumericBounds> {
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    let mut found = false;
    for p in query.predicates() {
        if p.attr != attr {
            continue;
        }
        let Some(v) = p.value.as_num() else { continue };
        found = true;
        // `lo.max(NaN)` would silently keep `lo`, widening the driver to
        // the full relation for a predicate that can match nothing.
        if v.is_nan() {
            return Some(NumericBounds::Empty);
        }
        match p.op {
            PredicateOp::Ge | PredicateOp::Gt => lo = lo.max(v),
            PredicateOp::Lt => hi = hi.min(v),
            PredicateOp::Le => hi = hi.min(v.next_up()),
            PredicateOp::Eq => {
                lo = lo.max(v);
                hi = hi.min(v.next_up());
            }
        }
    }
    match found {
        // `lo == hi` is the provably-empty half-open range (`Ge v ∧ Lt
        // v`), not a drivable one.
        true if lo < hi => Some(NumericBounds::Range(lo, hi)),
        true => Some(NumericBounds::Empty),
        false => None,
    }
}

/// Evaluate a selection and decode the matching tuples.
pub fn execute(relation: &Relation, query: &SelectionQuery) -> Vec<Tuple> {
    execute_rows(relation, query)
        .into_iter()
        .map(|r| relation.tuple(r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_catalog::{AttrId, Predicate, Schema, Value};
    use proptest::prelude::*;

    fn relation() -> Relation {
        let schema = Schema::builder("CarDB")
            .categorical("Make")
            .categorical("Model")
            .numeric("Year")
            .numeric("Price")
            .build()
            .unwrap();
        let rows = [
            ("Toyota", "Camry", 2000.0, 10000.0),
            ("Toyota", "Camry", 1998.0, 7000.0),
            ("Honda", "Accord", 2001.0, 11000.0),
            ("Toyota", "Corolla", 2000.0, 8500.0),
            ("Ford", "Focus", 2002.0, 9000.0),
            ("Honda", "Civic", 1999.0, 6500.0),
        ];
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|&(mk, md, y, p)| {
                Tuple::new(
                    &schema,
                    vec![Value::cat(mk), Value::cat(md), Value::num(y), Value::num(p)],
                )
                .unwrap()
            })
            .collect();
        Relation::from_tuples(schema, &tuples).unwrap()
    }

    #[test]
    fn equality_selection_uses_index() {
        let r = relation();
        let q = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("Toyota"))]);
        assert_eq!(execute_rows(&r, &q), vec![0, 1, 3]);
        assert_eq!(execute_rows_legacy(&r, &q), vec![0, 1, 3]);
    }

    #[test]
    fn conjunction_of_categorical_and_numeric() {
        let r = relation();
        let q = SelectionQuery::new(vec![
            Predicate::eq(AttrId(0), Value::cat("Toyota")),
            Predicate {
                attr: AttrId(3),
                op: PredicateOp::Lt,
                value: Value::num(9000.0),
            },
        ]);
        assert_eq!(execute_rows(&r, &q), vec![1, 3]);
        assert_eq!(execute_rows_legacy(&r, &q), vec![1, 3]);
    }

    #[test]
    fn numeric_only_query_uses_range_index() {
        let r = relation();
        let q = SelectionQuery::new(vec![Predicate {
            attr: AttrId(2),
            op: PredicateOp::Ge,
            value: Value::num(2001.0),
        }]);
        assert_eq!(execute_rows(&r, &q), vec![2, 4]);
        assert_eq!(execute_rows_legacy(&r, &q), vec![2, 4]);
    }

    #[test]
    fn numeric_band_query() {
        let r = relation();
        // Price in [7000, 9000) — the engine's bucket-band shape.
        let q = SelectionQuery::new(vec![
            Predicate {
                attr: AttrId(3),
                op: PredicateOp::Ge,
                value: Value::num(7000.0),
            },
            Predicate {
                attr: AttrId(3),
                op: PredicateOp::Lt,
                value: Value::num(9000.0),
            },
        ]);
        assert_eq!(execute_rows(&r, &q), vec![1, 3]);
        assert_eq!(execute_rows_legacy(&r, &q), vec![1, 3]);
    }

    #[test]
    fn numeric_equality_via_bounds() {
        let r = relation();
        let q = SelectionQuery::new(vec![Predicate::eq(AttrId(3), Value::num(8500.0))]);
        assert_eq!(execute_rows(&r, &q), vec![3]);
        assert_eq!(execute_rows_legacy(&r, &q), vec![3]);
    }

    #[test]
    fn contradictory_bounds_return_empty() {
        let r = relation();
        let q = SelectionQuery::new(vec![
            Predicate {
                attr: AttrId(3),
                op: PredicateOp::Ge,
                value: Value::num(10000.0),
            },
            Predicate {
                attr: AttrId(3),
                op: PredicateOp::Lt,
                value: Value::num(8000.0),
            },
        ]);
        assert!(execute_rows(&r, &q).is_empty());
        assert!(execute_rows_legacy(&r, &q).is_empty());
        assert_eq!(access_path(&r, &q), AccessPath::EmptyBounds(AttrId(3)));
    }

    #[test]
    fn touching_bounds_short_circuit_to_empty() {
        let r = relation();
        // `Ge v ∧ Lt v`: lo == hi, a provably-empty half-open range that
        // used to reach rows_in_range instead of short-circuiting.
        let q = SelectionQuery::new(vec![
            Predicate {
                attr: AttrId(3),
                op: PredicateOp::Ge,
                value: Value::num(9000.0),
            },
            Predicate {
                attr: AttrId(3),
                op: PredicateOp::Lt,
                value: Value::num(9000.0),
            },
        ]);
        assert!(execute_rows(&r, &q).is_empty());
        assert!(execute_rows_legacy(&r, &q).is_empty());
        // The short-circuit fires even when another driver is available.
        let q_with_cat = SelectionQuery::new(vec![
            Predicate::eq(AttrId(0), Value::cat("Toyota")),
            Predicate {
                attr: AttrId(3),
                op: PredicateOp::Ge,
                value: Value::num(9000.0),
            },
            Predicate {
                attr: AttrId(3),
                op: PredicateOp::Lt,
                value: Value::num(9000.0),
            },
        ]);
        assert!(execute_rows_legacy(&r, &q_with_cat).is_empty());
        assert_eq!(
            access_path(&r, &q_with_cat),
            AccessPath::EmptyBounds(AttrId(3))
        );
    }

    #[test]
    fn nan_bounds_are_empty_not_full_scans() {
        let r = relation();
        // `lo.max(NaN)` used to keep `lo`, widening the driver to the
        // whole relation for a predicate that matches nothing.
        for op in [
            PredicateOp::Eq,
            PredicateOp::Lt,
            PredicateOp::Le,
            PredicateOp::Gt,
            PredicateOp::Ge,
        ] {
            let q = SelectionQuery::new(vec![Predicate {
                attr: AttrId(3),
                op,
                value: Value::num(f64::NAN),
            }]);
            assert!(execute_rows(&r, &q).is_empty(), "{op:?}");
            assert!(execute_rows_legacy(&r, &q).is_empty(), "{op:?}");
            assert_eq!(access_path(&r, &q), AccessPath::EmptyBounds(AttrId(3)));
        }
    }

    #[test]
    fn permuted_predicates_take_identical_access_paths() {
        let r = relation();
        // Toyota (3 rows) and Year >= 1998 covers all 6 — Make wins.
        let a = Predicate::eq(AttrId(0), Value::cat("Toyota"));
        let b = Predicate::eq(AttrId(1), Value::cat("Camry"));
        let c = Predicate {
            attr: AttrId(2),
            op: PredicateOp::Ge,
            value: Value::num(1998.0),
        };
        let perms: [Vec<Predicate>; 4] = [
            vec![a.clone(), b.clone(), c.clone()],
            vec![c.clone(), b.clone(), a.clone()],
            vec![b.clone(), c.clone(), a.clone()],
            vec![b.clone(), a.clone(), c.clone(), a.clone()],
        ];
        let paths: Vec<AccessPath> = perms
            .iter()
            .map(|p| access_path(&r, &SelectionQuery::new(p.clone())))
            .collect();
        assert!(
            paths.iter().all(|&p| p == paths[0]),
            "permutations disagreed: {paths:?}"
        );
        assert_eq!(paths[0], AccessPath::Categorical(AttrId(1))); // Camry: 2 rows
                                                                  // Equal-size ties break by attribute then kind: Honda postings
                                                                  // (2 rows, attr 0) vs Camry postings (2 rows, attr 1).
        let tie = SelectionQuery::new(vec![
            Predicate::eq(AttrId(1), Value::cat("Camry")),
            Predicate::eq(AttrId(0), Value::cat("Honda")),
        ]);
        assert_eq!(access_path(&r, &tie), AccessPath::Categorical(AttrId(0)));
    }

    #[test]
    fn empty_query_matches_everything() {
        let r = relation();
        assert_eq!(execute_rows(&r, &SelectionQuery::all()).len(), r.len());
        assert_eq!(
            execute_rows_legacy(&r, &SelectionQuery::all()).len(),
            r.len()
        );
        assert_eq!(
            access_path(&r, &SelectionQuery::all()),
            AccessPath::FullScan
        );
    }

    #[test]
    fn no_matches_is_empty_not_error() {
        let r = relation();
        let q = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("BMW"))]);
        assert!(execute(&r, &q).is_empty());
        assert!(execute_rows_legacy(&r, &q).is_empty());
    }

    #[test]
    fn picks_most_selective_driver() {
        let r = relation();
        let q = SelectionQuery::new(vec![
            Predicate::eq(AttrId(0), Value::cat("Toyota")),
            Predicate::eq(AttrId(1), Value::cat("Camry")),
        ]);
        assert_eq!(execute_rows(&r, &q), vec![0, 1]);
        assert_eq!(execute_rows_legacy(&r, &q), vec![0, 1]);
    }

    #[test]
    fn decoded_execute_matches_row_ids() {
        let r = relation();
        let q = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("Honda"))]);
        let tuples = execute(&r, &q);
        let rows = execute_rows(&r, &q);
        assert_eq!(tuples.len(), rows.len());
        for (t, &row) in tuples.iter().zip(&rows) {
            assert_eq!(*t, r.tuple(row));
        }
    }

    /// Reference implementation: full scan.
    fn scan(r: &Relation, q: &SelectionQuery) -> Vec<RowId> {
        r.rows().filter(|&i| q.matches(&r.tuple(i))).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn index_paths_agree_with_full_scan(
            rows in prop::collection::vec((0u32..4, 0.0f64..100.0), 1..60),
            make in 0u32..4,
            lo in 0.0f64..100.0,
            width in 0.0f64..60.0,
            op_pick in 0u8..5,
        ) {
            let schema = Schema::builder("R")
                .categorical("Make")
                .numeric("Price")
                .build()
                .unwrap();
            let tuples: Vec<Tuple> = rows
                .iter()
                .map(|&(m, p)| {
                    Tuple::new(&schema, vec![Value::cat(format!("m{m}")), Value::num(p)])
                        .unwrap()
                })
                .collect();
            let r = Relation::from_tuples(schema, &tuples).unwrap();

            let op = [PredicateOp::Ge, PredicateOp::Gt, PredicateOp::Le, PredicateOp::Lt, PredicateOp::Eq][op_pick as usize];
            let q = SelectionQuery::new(vec![
                Predicate::eq(AttrId(0), Value::cat(format!("m{make}"))),
                Predicate { attr: AttrId(1), op, value: Value::num(lo) },
                Predicate { attr: AttrId(1), op: PredicateOp::Lt, value: Value::num(lo + width) },
            ]);
            let expect = scan(&r, &q);
            prop_assert_eq!(&execute_rows(&r, &q), &expect);
            prop_assert_eq!(&execute_rows_legacy(&r, &q), &expect);

            // Numeric-only query too (forces the range driver).
            let q = SelectionQuery::new(vec![
                Predicate { attr: AttrId(1), op, value: Value::num(lo) },
            ]);
            let expect = scan(&r, &q);
            prop_assert_eq!(&execute_rows(&r, &q), &expect);
            prop_assert_eq!(&execute_rows_legacy(&r, &q), &expect);
        }

        #[test]
        fn non_finite_predicate_values_agree_with_full_scan(
            rows in prop::collection::vec(0.0f64..100.0, 1..40),
            bound_pick in 0u8..4,
            op_pick in 0u8..5,
        ) {
            let schema = Schema::builder("R").numeric("X").build().unwrap();
            let tuples: Vec<Tuple> = rows
                .iter()
                .map(|&x| Tuple::new(&schema, vec![Value::num(x)]).unwrap())
                .collect();
            let r = Relation::from_tuples(schema, &tuples).unwrap();

            // Non-finite constants: NaN drivers must be empty, infinities
            // must not widen into full scans of non-matching rows.
            let v = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 50.0][bound_pick as usize];
            let op = [PredicateOp::Ge, PredicateOp::Gt, PredicateOp::Le, PredicateOp::Lt, PredicateOp::Eq][op_pick as usize];
            let q = SelectionQuery::new(vec![
                Predicate { attr: AttrId(0), op, value: Value::num(v) },
            ]);
            let expect = scan(&r, &q);
            prop_assert_eq!(&execute_rows(&r, &q), &expect);
            // Data values stay finite, so the legacy half-open driver is
            // exact here too (its +∞-data blind spot never triggers).
            prop_assert_eq!(&execute_rows_legacy(&r, &q), &expect);
        }
    }
}
