use aimq_catalog::{AttrId, PredicateOp, SelectionQuery, Tuple};

use crate::{Relation, RowId};

/// Evaluate a boolean conjunctive selection over a relation, returning
/// matching row ids in ascending order.
///
/// Access-path selection: the executor considers
///
/// * every equality predicate on a categorical attribute (inverted-index
///   posting list), and
/// * every numeric attribute's combined range bounds (sorted-index binary
///   search),
///
/// drives from the smallest candidate set, and verifies the remaining
/// predicates row by row. Queries with no indexable predicate fall back
/// to a full scan. This mirrors what a form-based Web database does and
/// keeps relaxation experiments fast: AIMQ's relaxed queries keep at
/// least one selective constraint until the final steps.
pub fn execute_rows(relation: &Relation, query: &SelectionQuery) -> Vec<RowId> {
    enum Driver<'a> {
        Categorical(&'a [RowId]),
        Numeric(&'a [(f64, RowId)]),
    }

    let mut candidates: Vec<(usize, Driver)> = Vec::new();

    // Categorical equality postings.
    for p in query.predicates() {
        if p.op != PredicateOp::Eq {
            continue;
        }
        if let Some(cat) = p.value.as_cat() {
            let rows = relation.rows_with_value(p.attr, cat);
            candidates.push((rows.len(), Driver::Categorical(rows)));
        }
    }

    // Numeric range bounds, combined per attribute.
    let mut numeric_attrs: Vec<AttrId> = query
        .predicates()
        .iter()
        .filter(|p| p.value.as_num().is_some())
        .map(|p| p.attr)
        .collect();
    numeric_attrs.sort_unstable();
    numeric_attrs.dedup();
    for attr in numeric_attrs {
        if let Some((lo, hi)) = combined_bounds(query, attr) {
            let rows = relation.rows_in_range(attr, lo, hi);
            candidates.push((rows.len(), Driver::Numeric(rows)));
        }
    }

    let best = candidates.into_iter().min_by_key(|&(len, _)| len);

    let verify = |row: RowId| query.matches(&relation.tuple(row));
    match best {
        Some((_, Driver::Categorical(rows))) => {
            rows.iter().copied().filter(|&r| verify(r)).collect()
        }
        Some((_, Driver::Numeric(rows))) => {
            let mut out: Vec<RowId> = rows
                .iter()
                .map(|&(_, r)| r)
                .filter(|&r| verify(r))
                .collect();
            out.sort_unstable();
            out
        }
        None => relation.rows().filter(|&r| verify(r)).collect(),
    }
}

/// Conservative `[lo, hi)` bounds implied by `query`'s numeric predicates
/// on `attr`. The driver only needs a *superset* of the matches (every
/// predicate is re-verified), so `>`/`=`/`<=` are widened to the nearest
/// half-open range.
fn combined_bounds(query: &SelectionQuery, attr: AttrId) -> Option<(f64, f64)> {
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    let mut found = false;
    for p in query.predicates() {
        if p.attr != attr {
            continue;
        }
        let Some(v) = p.value.as_num() else { continue };
        found = true;
        match p.op {
            PredicateOp::Ge | PredicateOp::Gt => lo = lo.max(v),
            PredicateOp::Lt => hi = hi.min(v),
            PredicateOp::Le => hi = hi.min(v.next_up()),
            PredicateOp::Eq => {
                lo = lo.max(v);
                hi = hi.min(v.next_up());
            }
        }
    }
    (found && lo <= hi).then_some((lo, hi))
}

/// Evaluate a selection and decode the matching tuples.
pub fn execute(relation: &Relation, query: &SelectionQuery) -> Vec<Tuple> {
    execute_rows(relation, query)
        .into_iter()
        .map(|r| relation.tuple(r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_catalog::{AttrId, Predicate, Schema, Value};
    use proptest::prelude::*;

    fn relation() -> Relation {
        let schema = Schema::builder("CarDB")
            .categorical("Make")
            .categorical("Model")
            .numeric("Year")
            .numeric("Price")
            .build()
            .unwrap();
        let rows = [
            ("Toyota", "Camry", 2000.0, 10000.0),
            ("Toyota", "Camry", 1998.0, 7000.0),
            ("Honda", "Accord", 2001.0, 11000.0),
            ("Toyota", "Corolla", 2000.0, 8500.0),
            ("Ford", "Focus", 2002.0, 9000.0),
            ("Honda", "Civic", 1999.0, 6500.0),
        ];
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|&(mk, md, y, p)| {
                Tuple::new(
                    &schema,
                    vec![Value::cat(mk), Value::cat(md), Value::num(y), Value::num(p)],
                )
                .unwrap()
            })
            .collect();
        Relation::from_tuples(schema, &tuples).unwrap()
    }

    #[test]
    fn equality_selection_uses_index() {
        let r = relation();
        let q = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("Toyota"))]);
        assert_eq!(execute_rows(&r, &q), vec![0, 1, 3]);
    }

    #[test]
    fn conjunction_of_categorical_and_numeric() {
        let r = relation();
        let q = SelectionQuery::new(vec![
            Predicate::eq(AttrId(0), Value::cat("Toyota")),
            Predicate {
                attr: AttrId(3),
                op: PredicateOp::Lt,
                value: Value::num(9000.0),
            },
        ]);
        assert_eq!(execute_rows(&r, &q), vec![1, 3]);
    }

    #[test]
    fn numeric_only_query_uses_range_index() {
        let r = relation();
        let q = SelectionQuery::new(vec![Predicate {
            attr: AttrId(2),
            op: PredicateOp::Ge,
            value: Value::num(2001.0),
        }]);
        assert_eq!(execute_rows(&r, &q), vec![2, 4]);
    }

    #[test]
    fn numeric_band_query() {
        let r = relation();
        // Price in [7000, 9000) — the engine's bucket-band shape.
        let q = SelectionQuery::new(vec![
            Predicate {
                attr: AttrId(3),
                op: PredicateOp::Ge,
                value: Value::num(7000.0),
            },
            Predicate {
                attr: AttrId(3),
                op: PredicateOp::Lt,
                value: Value::num(9000.0),
            },
        ]);
        assert_eq!(execute_rows(&r, &q), vec![1, 3]);
    }

    #[test]
    fn numeric_equality_via_bounds() {
        let r = relation();
        let q = SelectionQuery::new(vec![Predicate::eq(AttrId(3), Value::num(8500.0))]);
        assert_eq!(execute_rows(&r, &q), vec![3]);
    }

    #[test]
    fn contradictory_bounds_return_empty() {
        let r = relation();
        let q = SelectionQuery::new(vec![
            Predicate {
                attr: AttrId(3),
                op: PredicateOp::Ge,
                value: Value::num(10000.0),
            },
            Predicate {
                attr: AttrId(3),
                op: PredicateOp::Lt,
                value: Value::num(8000.0),
            },
        ]);
        assert!(execute_rows(&r, &q).is_empty());
    }

    #[test]
    fn empty_query_matches_everything() {
        let r = relation();
        assert_eq!(execute_rows(&r, &SelectionQuery::all()).len(), r.len());
    }

    #[test]
    fn no_matches_is_empty_not_error() {
        let r = relation();
        let q = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("BMW"))]);
        assert!(execute(&r, &q).is_empty());
    }

    #[test]
    fn picks_most_selective_driver() {
        let r = relation();
        let q = SelectionQuery::new(vec![
            Predicate::eq(AttrId(0), Value::cat("Toyota")),
            Predicate::eq(AttrId(1), Value::cat("Camry")),
        ]);
        assert_eq!(execute_rows(&r, &q), vec![0, 1]);
    }

    #[test]
    fn decoded_execute_matches_row_ids() {
        let r = relation();
        let q = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("Honda"))]);
        let tuples = execute(&r, &q);
        let rows = execute_rows(&r, &q);
        assert_eq!(tuples.len(), rows.len());
        for (t, &row) in tuples.iter().zip(&rows) {
            assert_eq!(*t, r.tuple(row));
        }
    }

    /// Reference implementation: full scan.
    fn scan(r: &Relation, q: &SelectionQuery) -> Vec<RowId> {
        r.rows().filter(|&i| q.matches(&r.tuple(i))).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn index_paths_agree_with_full_scan(
            rows in prop::collection::vec((0u32..4, 0.0f64..100.0), 1..60),
            make in 0u32..4,
            lo in 0.0f64..100.0,
            width in 0.0f64..60.0,
            op_pick in 0u8..5,
        ) {
            let schema = Schema::builder("R")
                .categorical("Make")
                .numeric("Price")
                .build()
                .unwrap();
            let tuples: Vec<Tuple> = rows
                .iter()
                .map(|&(m, p)| {
                    Tuple::new(&schema, vec![Value::cat(format!("m{m}")), Value::num(p)])
                        .unwrap()
                })
                .collect();
            let r = Relation::from_tuples(schema, &tuples).unwrap();

            let op = [PredicateOp::Ge, PredicateOp::Gt, PredicateOp::Le, PredicateOp::Lt, PredicateOp::Eq][op_pick as usize];
            let q = SelectionQuery::new(vec![
                Predicate::eq(AttrId(0), Value::cat(format!("m{make}"))),
                Predicate { attr: AttrId(1), op, value: Value::num(lo) },
                Predicate { attr: AttrId(1), op: PredicateOp::Lt, value: Value::num(lo + width) },
            ]);
            prop_assert_eq!(execute_rows(&r, &q), scan(&r, &q));

            // Numeric-only query too (forces the range driver).
            let q = SelectionQuery::new(vec![
                Predicate { attr: AttrId(1), op, value: Value::num(lo) },
            ]);
            prop_assert_eq!(execute_rows(&r, &q), scan(&r, &q));
        }
    }
}
