//! Minimal `--flag value` argument parser (no external dependencies).

use std::collections::HashMap;

/// Parsed command-line flags: every argument is `--name value`.
#[derive(Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse `--name value` pairs; rejects positional arguments and
    /// dangling flags.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut iter = argv.iter();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!(
                    "unexpected argument `{arg}` (flags are --name value)"
                ));
            };
            let Some(value) = iter.next() else {
                return Err(format!("flag --{name} is missing its value"));
            };
            if flags.insert(name.to_owned(), value.clone()).is_some() {
                return Err(format!("flag --{name} given twice"));
            }
        }
        Ok(Args { flags })
    }

    /// A flag that must be present.
    pub fn required(&self, name: &str) -> Result<String, String> {
        self.flags
            .get(name)
            .cloned()
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Optional `f64` flag with a default.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, String> {
        self.parse_or(name, default)
    }

    /// Optional `usize` flag with a default.
    pub fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        self.parse_or(name, default)
    }

    /// Optional `u64` flag with a default.
    pub fn u64_or(&self, name: &str, default: u64) -> Result<u64, String> {
        self.parse_or(name, default)
    }

    /// Optional `bool` flag with a default (`--name true|false`; every
    /// flag takes a value in this grammar, including switches).
    pub fn bool_or(&self, name: &str, default: bool) -> Result<bool, String> {
        self.parse_or(name, default)
    }

    fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("flag --{name} has invalid value `{raw}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_flag_pairs() {
        let a = Args::parse(&argv(&["--csv", "cars.csv", "--k", "5"])).unwrap();
        assert_eq!(a.required("csv").unwrap(), "cars.csv");
        assert_eq!(a.usize_or("k", 10).unwrap(), 5);
        assert_eq!(a.usize_or("missing", 10).unwrap(), 10);
    }

    #[test]
    fn rejects_malformed_argv() {
        assert!(Args::parse(&argv(&["positional"])).is_err());
        assert!(Args::parse(&argv(&["--dangling"])).is_err());
        assert!(Args::parse(&argv(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn typed_accessors_validate() {
        let a = Args::parse(&argv(&["--tsim", "abc"])).unwrap();
        assert!(a.f64_or("tsim", 0.5).is_err());
        let a = Args::parse(&argv(&["--tsim", "0.7"])).unwrap();
        assert_eq!(a.f64_or("tsim", 0.5).unwrap(), 0.7);
    }

    #[test]
    fn bool_flags_take_explicit_values() {
        let a = Args::parse(&argv(&["--no-cache", "true"])).unwrap();
        assert!(a.bool_or("no-cache", false).unwrap());
        assert!(!a.bool_or("other", false).unwrap());
        let a = Args::parse(&argv(&["--no-cache", "yes"])).unwrap();
        assert!(a.bool_or("no-cache", false).is_err());
    }

    #[test]
    fn required_flag_error_message_names_the_flag() {
        let a = Args::parse(&[]).unwrap();
        let err = a.required("query").unwrap_err();
        assert!(err.contains("--query"));
    }
}
