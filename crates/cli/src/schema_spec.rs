//! Parser for the CLI's `--schema` specification:
//! `Name:cat,Name:num,...` — one `name:domain` pair per attribute, in
//! relation order.

use aimq_catalog::Schema;

/// Parse `Make:cat,Model:cat,Price:num` into a [`Schema`].
pub fn parse_schema(name: &str, spec: &str) -> Result<Schema, String> {
    if spec.trim().is_empty() {
        return Err("schema spec is empty".into());
    }
    let mut builder = Schema::builder(name);
    for part in spec.split(',') {
        let part = part.trim();
        let (attr, domain) = part
            .rsplit_once(':')
            .ok_or_else(|| format!("`{part}` is not `name:cat` or `name:num`"))?;
        let attr = attr.trim();
        if attr.is_empty() {
            return Err(format!("`{part}` has an empty attribute name"));
        }
        builder = match domain.trim() {
            "cat" | "categorical" => builder.categorical(attr),
            "num" | "numeric" => builder.numeric(attr),
            other => return Err(format!("unknown domain `{other}` (use cat|num)")),
        };
    }
    builder.build().map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_catalog::Domain;

    #[test]
    fn parses_mixed_schema() {
        let s = parse_schema("CarDB", "Make:cat, Model:cat ,Price:num").unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr_name(aimq_catalog::AttrId(1)), "Model");
        assert_eq!(s.domain(aimq_catalog::AttrId(2)), Domain::Numeric);
    }

    #[test]
    fn long_domain_names_accepted() {
        let s = parse_schema("R", "A:categorical,B:numeric").unwrap();
        assert_eq!(s.domain(aimq_catalog::AttrId(0)), Domain::Categorical);
        assert_eq!(s.domain(aimq_catalog::AttrId(1)), Domain::Numeric);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(parse_schema("R", "").is_err());
        assert!(parse_schema("R", "Make").is_err());
        assert!(parse_schema("R", "Make:str").is_err());
        assert!(parse_schema("R", ":cat").is_err());
        assert!(parse_schema("R", "A:cat,A:num").is_err()); // duplicate name
    }

    #[test]
    fn colon_in_name_uses_last_separator() {
        let s = parse_schema("R", "Hours:per:week:num").unwrap();
        assert_eq!(s.attr_name(aimq_catalog::AttrId(0)), "Hours:per:week");
    }
}
