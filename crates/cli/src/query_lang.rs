//! Parser for the CLI's imprecise-query language — the paper's own
//! notation: `Model like Camry, Price like 10000`.

use aimq_catalog::{Domain, ImpreciseQuery, Schema, Value};

/// Parse `Attr like Value, Attr like Value, ...` against a schema.
///
/// Values for numeric attributes must parse as numbers; values containing
/// commas can be double-quoted (`Model like "Econoline Van"` works
/// unquoted too — only commas and leading/trailing spaces need quotes).
pub fn parse_query(schema: &Schema, text: &str) -> Result<ImpreciseQuery, String> {
    let mut builder = ImpreciseQuery::builder(schema);
    for clause in split_clauses(text) {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let Some(pos) = clause.find(" like ") else {
            return Err(format!("`{clause}` is not `Attr like Value`"));
        };
        let attr_name = clause[..pos].trim();
        let raw_value = unquote(clause[pos + " like ".len()..].trim());
        if raw_value.is_empty() {
            return Err(format!("`{clause}` binds an empty value"));
        }

        let attr = schema
            .attr_id(attr_name)
            .map_err(|_| format!("unknown attribute `{attr_name}`"))?;
        let value = match schema.domain(attr) {
            Domain::Categorical => Value::cat(raw_value),
            Domain::Numeric => raw_value
                .parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("`{attr_name}` is numeric but got `{raw_value}`"))?,
        };
        builder = builder.like(attr_name, value).map_err(|e| e.to_string())?;
    }
    builder.build().map_err(|e| e.to_string())
}

/// Split on commas that are outside double quotes.
fn split_clauses(text: &str) -> Vec<String> {
    let mut clauses = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in text.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            ',' if !in_quotes => clauses.push(std::mem::take(&mut current)),
            other => current.push(other),
        }
    }
    clauses.push(current);
    clauses
}

/// Strip one pair of surrounding double quotes, if present.
fn unquote(s: &str) -> String {
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        s[1..s.len() - 1].to_owned()
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_catalog::AttrId;

    fn schema() -> Schema {
        Schema::builder("CarDB")
            .categorical("Make")
            .categorical("Model")
            .numeric("Price")
            .build()
            .unwrap()
    }

    #[test]
    fn parses_the_paper_query() {
        let q = parse_query(&schema(), "Model like Camry, Price like 10000").unwrap();
        assert_eq!(q.bindings().len(), 2);
        assert_eq!(q.value_for(AttrId(1)), Some(&Value::cat("Camry")));
        assert_eq!(q.value_for(AttrId(2)), Some(&Value::num(10000.0)));
    }

    #[test]
    fn quoted_values_may_contain_commas() {
        let q = parse_query(&schema(), r#"Model like "Econoline, Van""#).unwrap();
        assert_eq!(q.value_for(AttrId(1)), Some(&Value::cat("Econoline, Van")));
    }

    #[test]
    fn multiword_values_work_unquoted() {
        let q = parse_query(&schema(), "Model like Econoline Van").unwrap();
        assert_eq!(q.value_for(AttrId(1)), Some(&Value::cat("Econoline Van")));
    }

    #[test]
    fn rejects_bad_input() {
        let s = schema();
        assert!(parse_query(&s, "").is_err());
        assert!(parse_query(&s, "Model = Camry").is_err());
        assert!(parse_query(&s, "Engine like V6").is_err());
        assert!(parse_query(&s, "Price like cheap").is_err());
        assert!(parse_query(&s, "Model like ").is_err());
    }

    #[test]
    fn trailing_commas_are_tolerated() {
        let q = parse_query(&schema(), "Make like Ford,").unwrap();
        assert_eq!(q.bindings().len(), 1);
    }
}
