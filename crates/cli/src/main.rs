//! `aimq` — command-line interface to the AIMQ imprecise-query system.
//!
//! ```text
//! aimq demo  [--size N] [--seed S]
//! aimq mine  --csv FILE --schema SPEC [--terr X] [--max-lhs N]
//! aimq query --csv FILE --schema SPEC --query "Attr like V, ..."
//!            [--tsim X] [--k N] [--sample N] [--seed S]
//! ```
//!
//! `SPEC` is `Name:cat,Name:num,...` in column order; the CSV's header
//! row must match the attribute names. See `aimq help`.

mod args;
mod query_lang;
mod schema_spec;

use std::io::BufReader;
use std::process::ExitCode;

use aimq::{AimqSystem, EngineConfig, TrainConfig};
use aimq_afd::TaneConfig;
use aimq_catalog::Schema;
use aimq_data::CarDb;
use aimq_storage::{
    read_csv, AccessStats, CachedWebDb, FaultInjectingWebDb, FaultProfile, FederatedWebDb,
    FederationPolicy, InMemoryWebDb, Relation, ResilientWebDb, RetryPolicy, SourceSpec,
    WebDatabase, DEFAULT_CACHE_CAPACITY,
};

use args::Args;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(command) = argv.first() else {
        print_help();
        return Ok(());
    };
    let args = Args::parse(&argv[1..])?;
    match command.as_str() {
        "demo" => demo(&args),
        "describe" => describe(&args),
        "mine" => mine(&args),
        "query" => query(&args),
        "serve-bench" => serve_bench(&args),
        "serve-http" => serve_http(&args),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `aimq help`)")),
    }
}

fn print_help() {
    println!(
        "aimq — answering imprecise queries over autonomous databases\n\
         (reproduction of Nambiar & Kambhampati, ICDE 2006)\n\n\
         USAGE:\n\
         \x20 aimq demo     [--size N] [--seed S]\n\
         \x20 aimq describe --csv FILE --schema SPEC\n\
         \x20 aimq mine  --csv FILE --schema SPEC [--terr X] [--max-lhs N]\n\
         \x20            [--save MODEL]\n\
         \x20 aimq query --csv FILE --schema SPEC --query \"Attr like V, ...\"\n\
         \x20            [--tsim X] [--k N] [--sample N] [--seed S] [--model MODEL]\n\
         \x20            [--faults none|flaky|hostile] [--fault-seed S]\n\
         \x20            [--cache-capacity N] [--no-cache true]\n\
         \x20            [--sources N] [--fault-profile-per-source p0,p1,...]\n\
         \x20            [--replication R] [--hedge-delay T]\n\
         \x20 aimq serve-bench [--scale full|quick|N] [--seed S]\n\
         \x20 aimq serve-http [--addr A] [--size N] [--seed S] [--workers W]\n\
         \x20            [--queue Q] [--deadline-ticks T] [--tsim X] [--k N]\n\
         \x20            [--once true]\n\n\
         SPEC:  Name:cat,Name:num,...  (column order; CSV header must match)\n\
         QUERY: the paper's notation, e.g. \"Model like Camry, Price like 10000\"\n\
         FAULTS: inject a deterministic fault schedule into the source and\n\
         \x20       answer through the retry/breaker stack; the degradation\n\
         \x20       line reports what failed and how complete the answer is\n\
         CACHE: repeated probes are answered from a memoizing cache in\n\
         \x20      front of the source (default capacity {}); `--no-cache\n\
         \x20      true` sends every probe to the source\n\
         SOURCES: `--sources N` shards the relation into N simulated\n\
         \x20      autonomous sources (R-way replicated fragments, default\n\
         \x20      R=2) and scatter-gathers every probe across them; each\n\
         \x20      source gets its own fault profile from the per-source\n\
         \x20      list (padded with `--faults`), its own resilience stack,\n\
         \x20      and a mirror that absorbs hedged probes after T virtual\n\
         \x20      ticks; the degradation line grows a per-source breakdown\n\
         SERVE-BENCH: replay a CarDB query log through the concurrent\n\
         \x20      serving runtime at 1/2/4/8 workers over a shared striped\n\
         \x20      cache and a simulated source round-trip; reports\n\
         \x20      throughput, speedup and per-query identity against the\n\
         \x20      single-threaded engine\n\
         SERVE-HTTP: train on a synthetic CarDB and expose it over HTTP\n\
         \x20      (default 127.0.0.1:7700): POST /indexes/cardb/search,\n\
         \x20      GET /health, GET /stats, GET|PATCH /config. Serves until\n\
         \x20      stdin closes (ctrl-D drains gracefully); `--once true`\n\
         \x20      self-checks /health and one search, then shuts down",
        DEFAULT_CACHE_CAPACITY
    );
}

/// Run the concurrent-serving throughput ladder (the eval crate's
/// `serve` experiment) and print its table.
fn serve_bench(args: &Args) -> Result<(), String> {
    use aimq_eval::{experiments::serve, Scale};
    let scale = match args.required("scale").ok().as_deref() {
        None | Some("full") => Scale::full(),
        Some("quick") => Scale::quick(),
        Some(raw) => raw
            .parse::<usize>()
            .map(Scale::with_divisor)
            .map_err(|_| format!("flag --scale has invalid value `{raw}`"))?,
    };
    let seed = args.u64_or("seed", 42)?;
    println!(
        "serve bench (scale {scale}, seed {seed}); workers {:?}",
        serve::WORKERS
    );
    let result = serve::run(scale, seed);
    println!("{}", result.render());
    if !result.all_identical() {
        return Err("concurrent answers diverged from the single-threaded engine".to_owned());
    }
    println!("speedup at 8 workers: {:.2}x", result.speedup(8));
    println!("{}", result.counters_line());
    Ok(())
}

/// Train on a synthetic CarDB and serve it over HTTP until stdin
/// closes (or immediately after a self-check with `--once true`).
fn serve_http(args: &Args) -> Result<(), String> {
    use aimq_http::{client, AimqHttpServer, HttpConfig};
    use aimq_serve::ServeConfig;
    use std::sync::Arc;

    let addr = args
        .required("addr")
        .unwrap_or_else(|_| "127.0.0.1:7700".to_owned());
    let size = args.usize_or("size", 20_000)?;
    let seed = args.u64_or("seed", 42)?;
    let workers = args.usize_or("workers", 4)?;
    let queue = args.usize_or("queue", 64)?;
    let deadline_ticks = args.u64_or("deadline-ticks", 0)?;
    let once = args.bool_or("once", false)?;
    let engine = EngineConfig {
        t_sim: args.f64_or("tsim", 0.5)?,
        top_k: args.usize_or("k", 10)?,
        ..EngineConfig::default()
    };

    println!("generating CarDB with {size} tuples (seed {seed}) and training...");
    let db = InMemoryWebDb::new(CarDb::generate(size, seed));
    let sample = db.relation().random_sample(size / 4, 1);
    let system = AimqSystem::train(&sample, &train_config(args)?).map_err(|e| e.to_string())?;
    let stack: Arc<dyn WebDatabase> =
        Arc::new(CachedWebDb::with_stripes(db, DEFAULT_CACHE_CAPACITY, 8));

    let server = AimqHttpServer::start(
        Arc::new(system),
        stack,
        HttpConfig {
            addr: addr.clone(),
            index: "cardb".to_owned(),
            serve: ServeConfig {
                workers,
                queue_capacity: queue,
                deadline_ticks,
                ticks_per_probe: 1,
                engine,
            },
        },
    )
    .map_err(|e| format!("cannot serve on {addr}: {e}"))?;
    let bound = server.addr();
    println!(
        "serving index `cardb` on http://{bound} ({workers} workers, queue {queue})\n\
         try:  curl -s http://{bound}/health\n\
         \x20     curl -s -X POST http://{bound}/indexes/cardb/search \\\n\
         \x20       -d '{{\"query\":{{\"Model\":\"Camry\",\"Price\":10000}}}}'"
    );

    if once {
        let health = client::request(bound, "GET", "/health", None)
            .map_err(|e| format!("self-check /health failed: {e}"))?;
        let search = client::request(
            bound,
            "POST",
            "/indexes/cardb/search",
            Some(r#"{"query":{"Model":"Camry"}}"#),
        )
        .map_err(|e| format!("self-check search failed: {e}"))?;
        if health.status != 200 || search.status != 200 {
            return Err(format!(
                "self-check failed: /health {} search {}",
                health.status, search.status
            ));
        }
        println!("self-check ok: /health 200, search 200");
    } else {
        println!("serving until stdin closes (ctrl-D to drain and exit)");
        let mut sink = Vec::new();
        use std::io::Read;
        // aimq-lint: allow(result-discipline) -- a stdin read error means the terminal is gone; either way the answer is "drain and exit"
        let _ = std::io::stdin().lock().read_to_end(&mut sink);
    }

    let stats = server.shutdown();
    println!(
        "drained: {} admitted, {} completed, {} deadline-missed, {} rejected, {} replies dropped",
        stats.admitted,
        stats.completed,
        stats.deadline_missed,
        stats.rejected,
        stats.replies_dropped
    );
    Ok(())
}

/// One-line summary of the memoizing cache's work during a query.
fn cache_summary(stats: &AccessStats) -> String {
    format!(
        "cache: {} hits, {} misses, {} evictions ({} probes reached the source)",
        stats.cache_hits, stats.cache_misses, stats.cache_evictions, stats.queries_issued
    )
}

/// Load the relation + schema a data-driven command needs.
fn load(args: &Args) -> Result<(Schema, Relation), String> {
    let csv_path = args.required("csv")?;
    let spec = args.required("schema")?;
    let schema = schema_spec::parse_schema("R", &spec)?;
    let file =
        std::fs::File::open(&csv_path).map_err(|e| format!("cannot open {csv_path}: {e}"))?;
    let relation =
        read_csv(&schema, BufReader::new(file)).map_err(|e| format!("{csv_path}: {e}"))?;
    if relation.is_empty() {
        return Err(format!("{csv_path} holds no tuples"));
    }
    Ok((schema, relation))
}

fn train_config(args: &Args) -> Result<TrainConfig, String> {
    Ok(TrainConfig {
        tane: TaneConfig {
            error_threshold: args.f64_or("terr", 0.15)?,
            max_lhs_size: args.usize_or("max-lhs", 3)?,
            ..TaneConfig::default()
        },
        smoothing: 0.05,
        ..TrainConfig::default()
    })
}

fn describe(args: &Args) -> Result<(), String> {
    use aimq_catalog::Domain;
    let (schema, relation) = load(args)?;
    println!("relation: {} ({} tuples)\n", schema, relation.len());
    for attr in schema.attr_ids() {
        let column = relation.column(attr);
        match schema.domain(attr) {
            Domain::Categorical => {
                // Top values by frequency, via the inverted index.
                let dict = column.dictionary().expect("categorical column");
                let mut freq: Vec<(usize, &str)> = (0..dict.len() as u32)
                    .map(|code| {
                        (
                            relation.rows_with_code(attr, code).len(),
                            dict.value_of(code).expect("dense code"),
                        )
                    })
                    .collect();
                freq.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(b.1)));
                let top: Vec<String> = freq
                    .iter()
                    .take(5)
                    .map(|(n, v)| format!("{v} ({n})"))
                    .collect();
                println!(
                    "  {:22} categorical, {} distinct: {}",
                    schema.attr_name(attr),
                    dict.len(),
                    top.join(", ")
                );
            }
            Domain::Numeric => {
                let values = column.numbers().expect("numeric column");
                let finite: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
                if finite.is_empty() {
                    println!("  {:22} numeric, all null", schema.attr_name(attr));
                    continue;
                }
                let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
                let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mean = finite.iter().sum::<f64>() / finite.len() as f64;
                println!(
                    "  {:22} numeric, {} distinct, min {min}, mean {mean:.1}, max {max}",
                    schema.attr_name(attr),
                    column.distinct_count(),
                );
            }
        }
    }
    Ok(())
}

fn mine(args: &Args) -> Result<(), String> {
    let (schema, relation) = load(args)?;
    let system = AimqSystem::train(&relation, &train_config(args)?).map_err(|e| e.to_string())?;

    if let Ok(model_path) = args.required("save") {
        system
            .save(&model_path)
            .map_err(|e| format!("cannot save model to {model_path}: {e}"))?;
        println!("saved trained model to {model_path}");
    }

    println!("relation: {} ({} tuples)\n", schema, relation.len());

    let mined = system.mined();
    println!("minimal AFDs (g3 ≤ {}):", args.f64_or("terr", 0.15)?);
    let mut afds = mined.minimal_afds();
    afds.sort_by(|a, b| a.error.total_cmp(&b.error));
    for afd in &afds {
        println!(
            "  {} → {}   support {:.3}",
            afd.lhs.display_with(&schema),
            schema.attr_name(afd.rhs),
            afd.support()
        );
    }
    if afds.is_empty() {
        println!("  (none — try a looser --terr)");
    }

    println!("\napproximate keys:");
    let mut keys = mined.keys().to_vec();
    keys.sort_by(|a, b| b.quality().total_cmp(&a.quality()));
    for key in keys.iter().take(10) {
        println!(
            "  {}   quality {:.3}",
            key.attrs.display_with(&schema),
            key.quality()
        );
    }
    if keys.is_empty() {
        println!("  (none — try a looser --terr)");
    }

    println!("\nattribute relaxation order (least important first):");
    let ordering = system.ordering();
    for &attr in ordering.relaxation_order() {
        println!(
            "  {:2}. {:20} Wimp {:.4}",
            ordering.relax_position(attr),
            schema.attr_name(attr),
            ordering.importance(attr)
        );
    }
    Ok(())
}

fn query(args: &Args) -> Result<(), String> {
    let (schema, relation) = load(args)?;
    let query_text = args.required("query")?;
    let query = query_lang::parse_query(&schema, &query_text)?;

    let sample_size = args.usize_or("sample", (relation.len() / 4).max(500))?;
    let seed = args.u64_or("seed", 1)?;
    let db = InMemoryWebDb::new(relation);
    let system = match args.required("model") {
        Ok(model_path) => AimqSystem::load(&model_path)
            .map_err(|e| format!("cannot load model from {model_path}: {e}"))?,
        Err(_) => {
            let sample = db.relation().random_sample(sample_size, seed);
            AimqSystem::train(&sample, &train_config(args)?).map_err(|e| e.to_string())?
        }
    };

    let config = EngineConfig {
        t_sim: args.f64_or("tsim", 0.5)?,
        top_k: args.usize_or("k", 10)?,
        ..EngineConfig::default()
    };
    let profile_name = args
        .required("faults")
        .unwrap_or_else(|_| "none".to_owned());
    let profile = FaultProfile::by_name(&profile_name)
        .ok_or_else(|| format!("unknown fault profile `{profile_name}` (none|flaky|hostile)"))?;
    let fault_seed = args.u64_or("fault-seed", seed)?;
    let no_cache = args.bool_or("no-cache", false)?;
    let cache_capacity = args.usize_or("cache-capacity", DEFAULT_CACHE_CAPACITY)?;
    let sources = args.usize_or("sources", 1)?;
    if sources == 0 {
        return Err("--sources must be at least 1".to_owned());
    }
    let replication = args.usize_or("replication", 2)?;
    let hedge_delay = args.u64_or("hedge-delay", 4)?;

    // The memoizing cache always sits OUTERMOST so that hits cost
    // nothing: no probe-budget charge, no breaker state, no fault
    // ordinal (see DESIGN.md, "Probe caching & dedup semantics").
    let (result, cache_note) = if sources >= 2 {
        // Federated path: shard the relation into simulated autonomous
        // sources, each with its own profile, seed, and resilience stack
        // (member caches included — FederationPolicy::cache_capacity).
        let mut profiles: Vec<FaultProfile> = Vec::with_capacity(sources);
        if let Ok(list) = args.required("fault-profile-per-source") {
            for name in list.split(',') {
                let p = FaultProfile::by_name(name.trim()).ok_or_else(|| {
                    format!("unknown fault profile `{name}` in --fault-profile-per-source")
                })?;
                profiles.push(p);
            }
            if profiles.len() > sources {
                return Err(format!(
                    "--fault-profile-per-source lists {} profiles for {sources} sources",
                    profiles.len()
                ));
            }
        }
        profiles.resize(sources, profile);
        let specs: Vec<SourceSpec> = profiles
            .into_iter()
            .enumerate()
            .map(|(i, p)| SourceSpec {
                profile: p,
                fault_seed: fault_seed.wrapping_add(i as u64),
                ..SourceSpec::benign(format!("s{i}"))
            })
            .collect();
        let policy = FederationPolicy {
            hedge_delay: (hedge_delay > 0).then_some(hedge_delay),
            cache_capacity: if no_cache { 0 } else { cache_capacity },
            ..FederationPolicy::default()
        };
        let federated = FederatedWebDb::shard(db.relation(), &specs, replication, policy)
            .ok_or("could not shard the relation into federation members")?;
        let result = system.answer(&federated, &query, &config);
        let note = (!no_cache).then(|| cache_summary(&federated.stats()));
        (result, note)
    } else if profile.is_benign() {
        if no_cache {
            (system.answer(&db, &query, &config), None)
        } else {
            let cached = CachedWebDb::new(db, cache_capacity);
            let result = system.answer(&cached, &query, &config);
            let note = cache_summary(&cached.stats());
            (result, Some(note))
        }
    } else {
        let faulty = FaultInjectingWebDb::new(db, profile, fault_seed);
        let resilient = ResilientWebDb::new(faulty, RetryPolicy::default());
        if no_cache {
            (system.answer(&resilient, &query, &config), None)
        } else {
            let cached = CachedWebDb::new(resilient, cache_capacity);
            let result = system.answer(&cached, &query, &config);
            let note = cache_summary(&cached.stats());
            (result, Some(note))
        }
    };

    println!("query: {}", query.display_with(&schema));
    println!(
        "base query: {} ({} base tuples; {} tuples examined)",
        result.base_query.display_with(&schema),
        result.base_set_size,
        result.stats.tuples_examined
    );
    println!("degradation: {}", result.degradation);
    for source in &result.degradation.sources {
        println!("  source {source}");
    }
    if let Some(note) = &cache_note {
        println!("{note}");
    }
    println!();
    if result.answers.is_empty() {
        match result.degradation.completeness {
            aimq::Completeness::Empty => println!(
                "no answers — but the source faulted; re-run or relax --tsim \
                 before concluding nothing matches"
            ),
            _ => println!("no answers above Tsim {}", config.t_sim),
        }
    }
    for (i, answer) in result.answers.iter().enumerate() {
        println!(
            "{:2}. sim={:.3}  {}",
            i + 1,
            answer.similarity,
            answer.tuple.display_with(&schema)
        );
    }
    Ok(())
}

fn demo(args: &Args) -> Result<(), String> {
    let size = args.usize_or("size", 20_000)?;
    let seed = args.u64_or("seed", 42)?;
    println!("generating CarDB with {size} tuples (seed {seed})...");
    let db = InMemoryWebDb::new(CarDb::generate(size, seed));
    let schema = db.relation().schema().clone();
    let sample = db.relation().random_sample(size / 4, 1);
    let system = AimqSystem::train(&sample, &train_config(args)?).map_err(|e| e.to_string())?;

    let query = query_lang::parse_query(&schema, "Model like Camry, Price like 10000")?;
    let result = system.answer(
        &db,
        &query,
        &EngineConfig {
            t_sim: 0.5,
            top_k: 10,
            ..EngineConfig::default()
        },
    );
    println!("\n{} →", query.display_with(&schema));
    for (i, answer) in result.answers.iter().enumerate() {
        println!(
            "{:2}. sim={:.3}  {}",
            i + 1,
            answer.similarity,
            answer.tuple.display_with(&schema)
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    /// Best-effort cleanup of a temp artifact. A missing file is fine
    /// (the test may have failed before creating it); anything else —
    /// permissions, a directory in the way — is worth a note, because
    /// a leaked artifact can poison the next run's assertions.
    fn remove_artifact(path: &std::path::Path) {
        if let Err(err) = std::fs::remove_file(path) {
            if err.kind() != std::io::ErrorKind::NotFound {
                eprintln!("warning: failed to remove {}: {err}", path.display());
            }
        }
    }

    fn write_mini_csv() -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("aimq_cli_test_{}.csv", std::process::id()));
        std::fs::write(
            &path,
            "Make,Model,Price\n\
             Toyota,Camry,9500\nToyota,Camry,10100\nToyota,Corolla,7800\n\
             Honda,Accord,9700\nHonda,Accord,10400\nHonda,Civic,7200\n\
             Ford,Focus,8100\nFord,F150,24000\n",
        )
        .unwrap();
        path
    }

    #[test]
    fn help_and_no_args_succeed() {
        assert!(run(&[]).is_ok());
        assert!(run(&argv(&["help"])).is_ok());
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = run(&argv(&["frobnicate"])).unwrap_err();
        assert!(err.contains("frobnicate"));
    }

    #[test]
    fn serve_bench_rejects_a_bad_scale() {
        let err = run(&argv(&["serve-bench", "--scale", "tiny"])).unwrap_err();
        assert!(err.contains("--scale"), "{err}");
    }

    #[test]
    fn serve_bench_runs_at_a_heavy_divisor() {
        // Divisor 2000 floors every size (50-tuple CarDB, 3 queries),
        // so the whole 1/2/4/8 ladder runs in well under a second.
        assert_eq!(
            run(&argv(&["serve-bench", "--scale", "2000", "--seed", "5"])),
            Ok(())
        );
    }

    #[test]
    fn serve_http_once_self_checks_and_drains() {
        // Port 0 avoids collisions; --once exercises bind → serve →
        // self-check (health + one search) → graceful drain.
        assert_eq!(
            run(&argv(&[
                "serve-http",
                "--addr",
                "127.0.0.1:0",
                "--size",
                "400",
                "--seed",
                "7",
                "--once",
                "true",
            ])),
            Ok(())
        );
    }

    #[test]
    fn serve_http_rejects_an_unbindable_address() {
        let err = run(&argv(&[
            "serve-http",
            "--addr",
            "256.0.0.1:99999",
            "--size",
            "400",
            "--once",
            "true",
        ]))
        .unwrap_err();
        assert!(err.contains("cannot serve"), "{err}");
    }

    #[test]
    fn mine_describe_and_query_run_end_to_end() {
        let path = write_mini_csv();
        let csv = path.to_str().unwrap();
        let schema = "Make:cat,Model:cat,Price:num";
        assert_eq!(
            run(&argv(&["describe", "--csv", csv, "--schema", schema])),
            Ok(())
        );
        assert_eq!(
            run(&argv(&[
                "mine", "--csv", csv, "--schema", schema, "--terr", "0.3"
            ])),
            Ok(())
        );
        assert_eq!(
            run(&argv(&[
                "query",
                "--csv",
                csv,
                "--schema",
                schema,
                "--query",
                "Model like Camry, Price like 10000",
                "--tsim",
                "0.2",
                "--sample",
                "8",
            ])),
            Ok(())
        );
        remove_artifact(&path);
    }

    #[test]
    fn saved_model_round_trips_through_query() {
        let path = write_mini_csv();
        let csv = path.to_str().unwrap();
        let schema = "Make:cat,Model:cat,Price:num";
        let model_path =
            std::env::temp_dir().join(format!("aimq_cli_model_{}.bin", std::process::id()));
        let model = model_path.to_str().unwrap();
        assert_eq!(
            run(&argv(&[
                "mine", "--csv", csv, "--schema", schema, "--terr", "0.3", "--save", model,
            ])),
            Ok(())
        );
        assert_eq!(
            run(&argv(&[
                "query",
                "--csv",
                csv,
                "--schema",
                schema,
                "--query",
                "Model like Camry",
                "--tsim",
                "0.2",
                "--model",
                model,
            ])),
            Ok(())
        );
        remove_artifact(&path);
        remove_artifact(&model_path);
    }

    #[test]
    fn query_under_fault_profiles_never_errors() {
        let path = write_mini_csv();
        let csv = path.to_str().unwrap();
        let schema = "Make:cat,Model:cat,Price:num";
        for profile in ["none", "flaky", "hostile"] {
            assert_eq!(
                run(&argv(&[
                    "query",
                    "--csv",
                    csv,
                    "--schema",
                    schema,
                    "--query",
                    "Model like Camry",
                    "--tsim",
                    "0.2",
                    "--sample",
                    "8",
                    "--faults",
                    profile,
                    "--fault-seed",
                    "7",
                ])),
                Ok(()),
                "profile {profile} must degrade gracefully, not error"
            );
        }
        remove_artifact(&path);
    }

    #[test]
    fn cache_flags_are_accepted_in_every_combination() {
        let path = write_mini_csv();
        let csv = path.to_str().unwrap();
        let schema = "Make:cat,Model:cat,Price:num";
        for extra in [
            &["--no-cache", "true"][..],
            &["--cache-capacity", "4"][..],
            &["--cache-capacity", "0"][..],
            &["--faults", "flaky", "--cache-capacity", "64"][..],
        ] {
            let mut cmd = argv(&[
                "query",
                "--csv",
                csv,
                "--schema",
                schema,
                "--query",
                "Model like Camry",
                "--tsim",
                "0.2",
                "--sample",
                "8",
            ]);
            cmd.extend(extra.iter().map(|s| (*s).to_owned()));
            assert_eq!(run(&cmd), Ok(()), "flags {extra:?}");
        }
        remove_artifact(&path);
    }

    #[test]
    fn federated_query_runs_across_profile_mixes() {
        let path = write_mini_csv();
        let csv = path.to_str().unwrap();
        let schema = "Make:cat,Model:cat,Price:num";
        for extra in [
            &["--sources", "3"][..],
            &[
                "--sources",
                "4",
                "--fault-profile-per-source",
                "hostile,none",
            ][..],
            &["--sources", "2", "--replication", "1", "--hedge-delay", "0"][..],
            &["--sources", "3", "--faults", "flaky", "--no-cache", "true"][..],
        ] {
            let mut cmd = argv(&[
                "query",
                "--csv",
                csv,
                "--schema",
                schema,
                "--query",
                "Model like Camry",
                "--tsim",
                "0.2",
                "--sample",
                "8",
            ]);
            cmd.extend(extra.iter().map(|s| (*s).to_owned()));
            assert_eq!(run(&cmd), Ok(()), "flags {extra:?}");
        }
        remove_artifact(&path);
    }

    #[test]
    fn federation_flag_misuse_is_reported() {
        let path = write_mini_csv();
        let csv = path.to_str().unwrap();
        let schema = "Make:cat,Model:cat,Price:num";
        let base = |extra: &[&str]| {
            let mut cmd = argv(&[
                "query",
                "--csv",
                csv,
                "--schema",
                schema,
                "--query",
                "Model like Camry",
            ]);
            cmd.extend(extra.iter().map(|s| (*s).to_owned()));
            cmd
        };
        let err = run(&base(&["--sources", "0"])).unwrap_err();
        assert!(err.contains("--sources"), "{err}");
        let err = run(&base(&[
            "--sources",
            "2",
            "--fault-profile-per-source",
            "none,chaotic",
        ]))
        .unwrap_err();
        assert!(err.contains("chaotic"), "{err}");
        let err = run(&base(&[
            "--sources",
            "2",
            "--fault-profile-per-source",
            "none,none,none",
        ]))
        .unwrap_err();
        assert!(err.contains("3 profiles for 2 sources"), "{err}");
        remove_artifact(&path);
    }

    #[test]
    fn unknown_fault_profile_is_reported() {
        let path = write_mini_csv();
        let csv = path.to_str().unwrap();
        let err = run(&argv(&[
            "query",
            "--csv",
            csv,
            "--schema",
            "Make:cat,Model:cat,Price:num",
            "--query",
            "Model like Camry",
            "--faults",
            "chaotic",
        ]))
        .unwrap_err();
        assert!(err.contains("chaotic"));
        remove_artifact(&path);
    }

    #[test]
    fn missing_flags_are_reported() {
        let err = run(&argv(&["query", "--csv", "x.csv"])).unwrap_err();
        assert!(err.contains("--schema"));
    }

    #[test]
    fn missing_file_is_reported() {
        let err = run(&argv(&[
            "mine",
            "--csv",
            "/definitely/not/here.csv",
            "--schema",
            "A:cat",
        ]))
        .unwrap_err();
        assert!(err.contains("cannot open"));
    }
}
