#![warn(missing_docs)]

//! # aimq-eval
//!
//! The experiment harness reproducing **every table and figure** of the
//! AIMQ paper's evaluation (Section 6):
//!
//! | Experiment | Paper | Runner |
//! |---|---|---|
//! | Offline computation time | Table 2 | [`experiments::table2`] |
//! | Robustness of attribute ordering | Figure 3 | [`experiments::fig3`] |
//! | Robustness of key mining | Figure 4 | [`experiments::fig4`] |
//! | Robust similarity estimation | Table 3 | [`experiments::table3`] |
//! | Similarity graph for `Make` | Figure 5 | [`experiments::fig5`] |
//! | GuidedRelax / RandomRelax efficiency | Figures 6 & 7 | [`experiments::fig67`] |
//! | Simulated user study (MRR) | Figure 8 | [`experiments::fig8`] |
//! | CensusDB classification accuracy | Figure 9 | [`experiments::fig9`] |
//! | Relevance feedback (extension) | — (Section 7 plan) | [`experiments::feedback`] |
//! | Importance-source ablation (extension) | — | [`experiments::ablation`] |
//! | Fault matrix: degradation under source failures (extension) | — | [`experiments::faults`] |
//! | Probe economy: dedup + cache vs the seed engine (extension) | — | [`experiments::cache`] |
//! | Serve bench: concurrent serving throughput ladder (extension) | — | [`experiments::serve`] |
//! | Federation: recall vs number of failed sources (extension) | — | [`experiments::federation`] |
//!
//! Each runner is a pure function of a [`Scale`] (dataset sizes) and a
//! seed, returns a typed result struct, and renders the same rows/series
//! the paper reports as an ASCII table. The `aimq-bench` crate wraps each
//! runner in a binary; the suite's integration tests run them at
//! [`Scale::quick`] and assert the paper's *qualitative* claims (who
//! wins, what stays stable) rather than absolute numbers.

pub mod experiments;
mod metrics;
mod scale;
mod table;
mod users;

pub use metrics::{accuracy_at_k, redefined_mrr};
pub use scale::Scale;
pub use table::{f3, secs, TextTable};
pub use users::{simulate_user_ranks, SimulatedUser};
