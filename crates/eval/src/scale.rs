/// Dataset scaling for the experiment runners.
///
/// [`Scale::full`] reproduces the paper's sizes (CarDB 100k, CensusDB
/// 45k, samples of 15k/25k/50k, 1000 census queries). [`Scale::quick`]
/// divides every size by 20 so the whole suite runs in seconds — used by
/// integration tests and CI. [`Scale::from_env`] reads `AIMQ_SCALE`
/// (`full`, `quick`, or an integer divisor) so the bench binaries can be
/// throttled without recompiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    divisor: usize,
}

impl Scale {
    /// Paper-size datasets.
    pub fn full() -> Self {
        Scale { divisor: 1 }
    }

    /// 1/20th of the paper's sizes.
    pub fn quick() -> Self {
        Scale { divisor: 20 }
    }

    /// Custom divisor (≥ 1).
    pub fn with_divisor(divisor: usize) -> Self {
        Scale {
            divisor: divisor.max(1),
        }
    }

    /// Read `AIMQ_SCALE` (`full` | `quick` | integer divisor); defaults to
    /// full.
    pub fn from_env() -> Self {
        match std::env::var("AIMQ_SCALE").ok().as_deref() {
            Some("quick") => Scale::quick(),
            Some("full") | None => Scale::full(),
            Some(other) => other
                .parse::<usize>()
                .map(Scale::with_divisor)
                .unwrap_or_else(|_| Scale::full()),
        }
    }

    /// Scale an absolute paper size, keeping a sane floor.
    pub fn size(&self, paper_size: usize) -> usize {
        (paper_size / self.divisor).max(50)
    }

    /// Scale a query-workload count (smaller floor).
    pub fn count(&self, paper_count: usize) -> usize {
        (paper_count / self.divisor).max(3)
    }

    /// The paper's CarDB size (100,000 tuples).
    pub fn cardb(&self) -> usize {
        self.size(100_000)
    }

    /// The paper's CensusDB size (45,000 tuples).
    pub fn censusdb(&self) -> usize {
        self.size(45_000)
    }

    /// The sample sizes of the robustness experiments (15k/25k/50k).
    pub fn cardb_samples(&self) -> Vec<usize> {
        vec![self.size(15_000), self.size(25_000), self.size(50_000)]
    }

    /// The divisor in effect.
    pub fn divisor(&self) -> usize {
        self.divisor
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.divisor == 1 {
            write!(f, "full")
        } else {
            write!(f, "1/{}", self.divisor)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper_sizes() {
        let s = Scale::full();
        assert_eq!(s.cardb(), 100_000);
        assert_eq!(s.censusdb(), 45_000);
        assert_eq!(s.cardb_samples(), vec![15_000, 25_000, 50_000]);
    }

    #[test]
    fn quick_divides_by_twenty() {
        let s = Scale::quick();
        assert_eq!(s.cardb(), 5_000);
        assert_eq!(s.censusdb(), 2_250);
    }

    #[test]
    fn floors_apply() {
        let s = Scale::with_divisor(1_000_000);
        assert_eq!(s.cardb(), 50);
        assert_eq!(s.count(14), 3);
    }

    #[test]
    fn display() {
        assert_eq!(Scale::full().to_string(), "full");
        assert_eq!(Scale::quick().to_string(), "1/20");
    }
}
