//! **Posting-list executor — shared-plan work vs one-shot execution.**
//!
//! Not a figure of the paper, but its costing premise applied to the
//! *source side*: every relaxation plan AIMQ hands a source (Algorithm
//! 1, one plan per base tuple) is a family of conjunctive selections
//! that share almost everything — each relaxed query drops one
//! predicate from the same fully bound tuple query, and the base query
//! itself recurs across plans. A source that executes the plan through
//! the [`aimq_storage::PlanExecutor`] evaluates each distinct
//! per-attribute posting term once and each distinct conjunction prefix
//! once, instead of re-scanning per query.
//!
//! The workload mirrors the Figure 3/4 robustness experiments: CarDB at
//! the paper's sample sizes (15k/25k/50k and the full 100k relation),
//! with `n_plans` relaxation plans derived from randomly drawn base
//! tuples — each plan being the fully bound tuple query, every
//! single-attribute relaxation of it, and the base query repeated (as
//! overlapping per-tuple plans produce in practice).
//!
//! Reported per size:
//!
//! - **identity** — the shared executor, the one-shot posting path and
//!   the legacy hash/range executor return byte-identical row sets for
//!   every plan member (the tentpole acceptance bar);
//! - **sharing** — posting terms evaluated and intersections computed
//!   by the shared executor vs what the same plans cost one-shot, from
//!   the executor's own meters ([`aimq_storage::ExecStats`]).
//!
//! Wall-clock speedups for the same workloads are measured by the
//! `postings` Criterion bench and recorded in
//! `results/BENCH_postings.json`.

use aimq_catalog::{AttrId, Predicate, SelectionQuery};
use aimq_data::CarDb;
use aimq_storage::{execute_rows, execute_rows_legacy, PlanExecutor, Relation, RowId};

use crate::experiments::common::pick_query_rows;
use crate::{Scale, TextTable};

/// Executor meters and identity verdict for one relation size.
#[derive(Debug, Clone)]
pub struct PostingsOutcome {
    /// Relation size in tuples.
    pub rows: usize,
    /// Number of relaxation plans executed.
    pub n_plans: usize,
    /// Total queries across all plans (plan members, duplicates kept).
    pub plan_queries: u64,
    /// Posting terms the shared executors actually evaluated.
    pub terms_evaluated: u64,
    /// Term evaluations answered from the per-plan memo.
    pub term_memo_hits: u64,
    /// Pairwise intersections the shared executors actually computed.
    pub intersections_computed: u64,
    /// Conjunction prefixes answered from the per-plan memo.
    pub prefix_memo_hits: u64,
    /// Terms a memo-less one-shot executor evaluates for the same plans.
    pub one_shot_terms: u64,
    /// Intersections a memo-less one-shot executor computes.
    pub one_shot_intersections: u64,
    /// `1 − shared/one-shot` over terms + intersections: the fraction
    /// of posting work the plan memo eliminated.
    pub work_shared: f64,
    /// Whether shared, one-shot and legacy execution returned
    /// byte-identical row sets (and the naive scan agreed) for every
    /// plan member.
    pub identical: bool,
}

/// Result of the posting-list executor run.
#[derive(Debug, Clone)]
pub struct PostingsResult {
    /// One outcome per relation size, ascending; the last entry is the
    /// full relation.
    pub outcomes: Vec<PostingsOutcome>,
}

impl PostingsResult {
    /// Render one row per relation size.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            "Posting-list executor: shared-plan work vs one-shot execution (CarDB relaxation plans)",
            &[
                "rows",
                "plans",
                "queries",
                "terms",
                "term hits",
                "intersections",
                "prefix hits",
                "one-shot work",
                "work shared",
                "identical",
            ],
        );
        for o in &self.outcomes {
            t.row(vec![
                o.rows.to_string(),
                o.n_plans.to_string(),
                o.plan_queries.to_string(),
                o.terms_evaluated.to_string(),
                o.term_memo_hits.to_string(),
                o.intersections_computed.to_string(),
                o.prefix_memo_hits.to_string(),
                (o.one_shot_terms + o.one_shot_intersections).to_string(),
                format!("{:.1}%", o.work_shared * 100.0),
                o.identical.to_string(),
            ]);
        }
        t
    }
}

/// The relaxation plan for one base tuple: the fully bound tuple query,
/// every single-attribute relaxation, then the base query again (the
/// duplicate that overlapping per-tuple plans produce).
pub fn relaxation_plan(relation: &Relation, row: RowId) -> Vec<SelectionQuery> {
    let tuple = relation.tuple(row);
    let full: Vec<Predicate> = tuple
        .values()
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_null())
        .map(|(i, v)| Predicate::eq(AttrId(i), v.clone()))
        .collect();
    let base = SelectionQuery::new(full.clone()).canonicalize();
    let mut plan = vec![base.clone()];
    for drop in 0..full.len() {
        let kept: Vec<Predicate> = full
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != drop)
            .map(|(_, p)| p.clone())
            .collect();
        plan.push(SelectionQuery::new(kept).canonicalize());
    }
    plan.push(base);
    plan
}

fn scan(relation: &Relation, query: &SelectionQuery) -> Vec<RowId> {
    relation
        .rows()
        .filter(|&row| query.matches(&relation.tuple(row)))
        .collect()
}

fn outcome_for(relation: &Relation, n_plans: usize, seed: u64) -> PostingsOutcome {
    let plans: Vec<Vec<SelectionQuery>> = pick_query_rows(relation, n_plans, seed)
        .into_iter()
        .map(|row| relaxation_plan(relation, row))
        .collect();

    let mut plan_queries = 0u64;
    let mut shared = aimq_storage::ExecStats::default();
    let mut one_shot = aimq_storage::ExecStats::default();
    let mut identical = true;

    for plan in &plans {
        // One shared executor per plan — exactly what a source's
        // `try_query_plan` builds.
        let mut exec = PlanExecutor::new(relation);
        for query in plan {
            plan_queries += 1;
            let via_plan = exec.execute(query);
            let via_one_shot = execute_rows(relation, query);
            let via_legacy = execute_rows_legacy(relation, query);
            if via_plan != via_one_shot
                || via_plan != via_legacy
                || via_plan != scan(relation, query)
            {
                identical = false;
            }
            // What the same query costs with no memo to hit.
            let mut fresh = PlanExecutor::new(relation);
            fresh.execute(query);
            let f = fresh.stats();
            one_shot.terms_evaluated += f.terms_evaluated;
            one_shot.intersections_computed += f.intersections_computed;
        }
        let s = exec.stats();
        shared.terms_evaluated += s.terms_evaluated;
        shared.term_memo_hits += s.term_memo_hits;
        shared.intersections_computed += s.intersections_computed;
        shared.prefix_memo_hits += s.prefix_memo_hits;
    }

    let one_shot_work = one_shot.terms_evaluated + one_shot.intersections_computed;
    let shared_work = shared.terms_evaluated + shared.intersections_computed;
    PostingsOutcome {
        rows: relation.len(),
        n_plans: plans.len(),
        plan_queries,
        terms_evaluated: shared.terms_evaluated,
        term_memo_hits: shared.term_memo_hits,
        intersections_computed: shared.intersections_computed,
        prefix_memo_hits: shared.prefix_memo_hits,
        one_shot_terms: one_shot.terms_evaluated,
        one_shot_intersections: one_shot.intersections_computed,
        work_shared: if one_shot_work == 0 {
            0.0
        } else {
            1.0 - shared_work as f64 / one_shot_work as f64
        },
        identical,
    }
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> PostingsResult {
    let full = CarDb::generate(scale.cardb(), seed);
    let mut sizes = scale.cardb_samples();
    sizes.push(full.len());

    let n_plans = scale.count(10);
    let outcomes = sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| {
            let relation = if size >= full.len() {
                full.clone()
            } else {
                full.random_sample(size, seed.wrapping_add(i as u64 + 1))
            };
            outcome_for(&relation, n_plans, seed.wrapping_add(2))
        })
        .collect();

    PostingsResult { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> PostingsResult {
        run(Scale::with_divisor(100), 23)
    }

    #[test]
    fn every_size_is_byte_identical_across_executors() {
        for o in &result().outcomes {
            assert!(o.identical, "{o:?}");
        }
    }

    #[test]
    fn the_plan_memo_shares_real_work() {
        // Every plan repeats its base query and every relaxation shares
        // term prefixes with it, so the memo must hit at every size.
        for o in &result().outcomes {
            assert!(o.term_memo_hits > 0, "{o:?}");
            assert!(o.prefix_memo_hits > 0, "{o:?}");
            assert!(
                o.work_shared > 0.0,
                "shared executor did no better than one-shot: {o:?}"
            );
            assert!(o.terms_evaluated <= o.one_shot_terms, "{o:?}");
            assert!(
                o.intersections_computed <= o.one_shot_intersections,
                "{o:?}"
            );
        }
    }

    #[test]
    fn covers_the_robustness_sample_ladder() {
        let r = result();
        assert_eq!(r.outcomes.len(), 4);
        let rows: Vec<usize> = r.outcomes.iter().map(|o| o.rows).collect();
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        assert_eq!(rows, sorted, "sizes must ascend");
    }

    #[test]
    fn same_seed_reruns_are_identical() {
        let a = result();
        let b = result();
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn render_has_a_row_per_size() {
        assert_eq!(result().render().len(), 4);
    }
}
