//! **Extension experiment — relevance feedback** (not a paper figure;
//! implements the plan in the paper's conclusion: "we plan to use
//! relevance feedback to tune the importance weights assigned to an
//! attribute").
//!
//! Protocol: for each query, AIMQ retrieves a candidate pool once; a
//! simulated user then interacts for several rounds, judging the current
//! top-10 (relevant iff latent-oracle similarity ≥ 0.55). After each
//! round the [`FeedbackTuner`] updates its attribute weights and
//! re-ranks. Measured: mean oracle relevance of the top-10 per round —
//! feedback should recover the oracle's attribute priorities and push
//! truly relevant answers up.

use aimq::{EngineConfig, FeedbackTuner};
use aimq_catalog::{ImpreciseQuery, Tuple};
use aimq_data::{car_oracle_similarity, CarDb};
use aimq_storage::InMemoryWebDb;

use crate::experiments::common::{pick_query_rows, train_cardb};
use crate::{Scale, TextTable};

/// Result of the feedback-loop experiment.
#[derive(Debug, Clone)]
pub struct FeedbackResult {
    /// Mean oracle relevance of the top-10 at each round (round 0 = the
    /// untuned mined ranking).
    pub quality_per_round: Vec<f64>,
    /// Number of queries averaged over.
    pub n_queries: usize,
}

impl FeedbackResult {
    /// Did feedback help: final-round quality ≥ initial quality?
    pub fn improves(&self) -> bool {
        match (
            self.quality_per_round.first(),
            self.quality_per_round.last(),
        ) {
            (Some(first), Some(last)) => last >= first,
            _ => false,
        }
    }

    /// Total quality gain from round 0 to the last round.
    pub fn gain(&self) -> f64 {
        match (
            self.quality_per_round.first(),
            self.quality_per_round.last(),
        ) {
            (Some(first), Some(last)) => last - first,
            _ => 0.0,
        }
    }

    /// Render the per-round series.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            format!(
                "Relevance feedback: top-10 oracle relevance per round ({} queries)",
                self.n_queries
            ),
            &["Round", "Top-10 oracle relevance"],
        );
        for (round, q) in self.quality_per_round.iter().enumerate() {
            t.row(vec![round.to_string(), format!("{q:.3}")]);
        }
        t
    }
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> FeedbackResult {
    const ROUNDS: usize = 6;
    const RELEVANCE_CUTOFF: f64 = 0.55;

    let relation = CarDb::generate(scale.cardb(), seed);
    let schema = relation.schema().clone();
    let db = InMemoryWebDb::new(relation);
    let sample = db
        .relation()
        .random_sample(scale.size(25_000), seed.wrapping_add(1));
    let system = train_cardb(&sample);

    let n_queries = scale.count(10).max(6);
    let query_rows = pick_query_rows(db.relation(), n_queries, seed.wrapping_add(2));

    let config = EngineConfig {
        t_sim: 0.25,
        top_k: 40, // a wide pool so re-ranking has room to act
        max_relax_level: 3,
        max_base_tuples: 10,
        target_relevant: Some(60),
        ..EngineConfig::default()
    };

    let mut per_round_totals = vec![0.0; ROUNDS + 1];
    let mut judged_queries = 0usize;

    for &row in &query_rows {
        let query_tuple = db.relation().tuple(row);
        let query = ImpreciseQuery::from_tuple(&query_tuple).expect("non-null tuple");

        // Retrieve the candidate pool once with the mined system.
        let pool: Vec<Tuple> = system
            .answer(&db, &query, &config)
            .answers
            .into_iter()
            .map(|a| a.tuple)
            .filter(|t| *t != query_tuple)
            .collect();
        if pool.len() < 10 {
            continue; // not enough candidates to make re-ranking meaningful
        }
        judged_queries += 1;

        let quality = |ranked: &[aimq::RankedAnswer]| -> f64 {
            let top: Vec<f64> = ranked
                .iter()
                .take(10)
                .map(|a| car_oracle_similarity(&schema, &query_tuple, &a.tuple))
                .collect();
            top.iter().sum::<f64>() / top.len() as f64
        };

        let mut tuner = FeedbackTuner::new(system.model(), 0.5);
        let mut ranked = tuner.rerank(system.model(), &query, &pool);
        per_round_totals[0] += quality(&ranked);

        for round_total in per_round_totals.iter_mut().skip(1) {
            // The user judges the current top-10.
            for answer in ranked.iter().take(10) {
                let relevant =
                    car_oracle_similarity(&schema, &query_tuple, &answer.tuple) >= RELEVANCE_CUTOFF;
                tuner.observe(system.model(), &query, &answer.tuple, relevant);
            }
            ranked = tuner.rerank(system.model(), &query, &pool);
            *round_total += quality(&ranked);
        }
    }

    let n = judged_queries.max(1) as f64;
    FeedbackResult {
        quality_per_round: per_round_totals.into_iter().map(|q| q / n).collect(),
        n_queries: judged_queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> FeedbackResult {
        run(Scale::quick(), 37)
    }

    #[test]
    fn feedback_does_not_hurt_ranking_quality() {
        let r = result();
        assert!(r.n_queries > 0);
        assert!(
            r.improves(),
            "feedback should not degrade the top-10: {:?}",
            r.quality_per_round
        );
    }

    #[test]
    fn qualities_are_bounded() {
        let r = result();
        for q in &r.quality_per_round {
            assert!((0.0..=1.0 + 1e-9).contains(q), "quality {q}");
        }
    }

    #[test]
    fn renders_one_row_per_round() {
        let r = result();
        assert_eq!(r.render().len(), r.quality_per_round.len());
    }
}
