//! **Figure 3 — Robustness of Attribute Ordering.**
//!
//! The paper mines AFDs from CarDB samples of 15k, 25k, 50k and 100k
//! tuples and plots each attribute's dependence weight (`Wtdepends`,
//! Algorithm 2). The claim: absolute weights shrink with smaller samples,
//! but the *relative ordering* of attributes — Model least dependent,
//! Make most dependent — is stable, so sampling does not hurt the
//! relaxation heuristic.

use aimq_afd::{AttributeOrdering, EncodedRelation, MinedDependencies};
use aimq_data::CarDb;

use crate::experiments::common::{cardb_buckets, cardb_tane};
use crate::{Scale, TextTable};

/// Result of the Figure 3 run.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Sample sizes, ascending; the last entry is the full relation.
    pub sample_sizes: Vec<usize>,
    /// Attribute names in schema order.
    pub attr_names: Vec<String>,
    /// `wt_depends[sample][attr]`.
    pub wt_depends: Vec<Vec<f64>>,
}

impl Fig3Result {
    /// Dependence ranking (attribute indices, most dependent first) for
    /// one sample.
    pub fn ranking(&self, sample: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.attr_names.len()).collect();
        idx.sort_by(|&a, &b| {
            self.wt_depends[sample][b]
                .total_cmp(&self.wt_depends[sample][a])
                .then(a.cmp(&b))
        });
        idx
    }

    /// The paper's stability claim, made checkable: does every sample
    /// rank the *substantially dependent* attributes (weight > `floor` on
    /// the full data) in the same order as the full relation?
    pub fn order_consistent(&self, floor: f64) -> bool {
        let full = self.sample_sizes.len() - 1;
        let significant: Vec<usize> = (0..self.attr_names.len())
            .filter(|&a| self.wt_depends[full][a] > floor)
            .collect();
        let project = |sample: usize| -> Vec<usize> {
            self.ranking(sample)
                .into_iter()
                .filter(|a| significant.contains(a))
                .collect()
        };
        let reference = project(full);
        (0..full).all(|s| project(s) == reference)
    }

    /// Weaker but noise-robust form of the stability claim: every sample
    /// agrees with the full relation on the *most* and *least* dependent
    /// attribute — the two ends that matter most for relaxation (what to
    /// keep bound longest, what to drop first).
    pub fn extremes_stable(&self) -> bool {
        let full = self.sample_sizes.len() - 1;
        let full_ranking = self.ranking(full);
        let (top, bottom) = (full_ranking[0], *full_ranking.last().expect("non-empty"));
        (0..full).all(|s| {
            let r = self.ranking(s);
            r[0] == top && *r.last().expect("non-empty") == bottom
        })
    }

    /// Render the paper's series as a table (rows = attributes, columns =
    /// sample sizes).
    pub fn render(&self) -> TextTable {
        let mut header: Vec<String> = vec!["Attribute".into()];
        header.extend(self.sample_sizes.iter().map(|s| format!("{s} tuples")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = TextTable::new(
            "Figure 3: dependence (Wtdepends) of CarDB attributes vs sample size",
            &header_refs,
        );
        for (a, name) in self.attr_names.iter().enumerate() {
            let mut row = vec![name.clone()];
            for s in 0..self.sample_sizes.len() {
                row.push(format!("{:.3}", self.wt_depends[s][a]));
            }
            t.row(row);
        }
        t
    }
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Fig3Result {
    let full = CarDb::generate(scale.cardb(), seed);
    let schema = full.schema().clone();
    let buckets = cardb_buckets(&schema);
    let tane = cardb_tane();

    let mut sample_sizes = scale.cardb_samples();
    sample_sizes.push(full.len());

    let mut wt_depends = Vec::with_capacity(sample_sizes.len());
    for (i, &size) in sample_sizes.iter().enumerate() {
        let sample = if size >= full.len() {
            full.clone()
        } else {
            full.random_sample(size, seed.wrapping_add(i as u64 + 1))
        };
        let enc = EncodedRelation::encode(&sample, &buckets);
        let mined = MinedDependencies::mine(&enc, &tane);
        let ordering = AttributeOrdering::derive(&schema, &mined).expect("non-empty schema");
        wt_depends.push(schema.attr_ids().map(|a| ordering.wt_depends(a)).collect());
    }

    Fig3Result {
        sample_sizes,
        attr_names: schema
            .attributes()
            .iter()
            .map(|a| a.name().to_owned())
            .collect(),
        wt_depends,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig3Result {
        run(Scale::with_divisor(100), 11)
    }

    #[test]
    fn covers_all_samples_and_attrs() {
        let r = result();
        assert_eq!(r.sample_sizes.len(), 4);
        assert_eq!(r.attr_names.len(), 7);
        assert_eq!(r.wt_depends.len(), 4);
        assert!(r.wt_depends.iter().all(|w| w.len() == 7));
    }

    #[test]
    fn make_is_most_dependent_on_full_data() {
        // Model → Make is planted exactly by the generator, so Make must
        // top the full-data dependence ranking — the Figure 3 headline.
        let r = result();
        let full = r.sample_sizes.len() - 1;
        let ranking = r.ranking(full);
        assert_eq!(r.attr_names[ranking[0]], "Make");
    }

    #[test]
    fn weights_are_nonnegative() {
        let r = result();
        for per_sample in &r.wt_depends {
            assert!(per_sample.iter().all(|&w| w >= 0.0));
        }
    }

    #[test]
    fn render_has_one_row_per_attribute() {
        let r = result();
        assert_eq!(r.render().len(), 7);
    }
}
