//! **Ablation study** (extension; not a paper figure): which of AIMQ's
//! design choices actually carry the answer quality?
//!
//! On a fixed CarDB workload, the same engine answers the same imprecise
//! queries under different *attribute-importance sources*, and the latent
//! oracle scores each variant's top-10:
//!
//! * `mined` — Algorithm 2 over TANE output (the paper's AIMQ);
//! * `mined+smoothing` — Algorithm 2 with Laplace-smoothed weight shares;
//! * `uniform` — equal importance (what RandomRelax/ROCK assume);
//! * `query-log` — the paper's Section 7 query-driven alternative, fed a
//!   synthetic workload log biased toward Model/Price (what car shoppers
//!   actually bind).

use aimq::{AimqSystem, EngineConfig, TrainConfig};
use aimq_afd::AttributeOrdering;
use aimq_catalog::{AttrId, ImpreciseQuery, Tuple};
use aimq_data::{car_oracle_similarity, CarDb};
use aimq_sim::{SimConfig, SimilarityModel};
use aimq_storage::InMemoryWebDb;

use crate::experiments::common::{cardb_buckets, cardb_tane, pick_query_rows};
use crate::{Scale, TextTable};

/// One ablation variant's outcome.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Mean oracle relevance of the top-10 answers.
    pub quality: f64,
    /// Mean distinct tuples examined per query.
    pub examined: f64,
}

/// Result of the ablation run.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// One row per variant.
    pub rows: Vec<AblationRow>,
    /// Queries in the workload.
    pub n_queries: usize,
}

impl AblationResult {
    /// Quality of a variant by label.
    pub fn quality_of(&self, variant: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.variant == variant)
            .map(|r| r.quality)
    }

    /// Render the comparison table.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            format!(
                "Ablation: importance source vs answer quality ({} queries)",
                self.n_queries
            ),
            &[
                "Importance source",
                "Top-10 oracle relevance",
                "Tuples examined",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.variant.clone(),
                format!("{:.3}", r.quality),
                format!("{:.1}", r.examined),
            ]);
        }
        t
    }
}

/// Run the ablation.
pub fn run(scale: Scale, seed: u64) -> AblationResult {
    let relation = CarDb::generate(scale.cardb(), seed);
    let schema = relation.schema().clone();
    let db = InMemoryWebDb::new(relation);
    let sample = db
        .relation()
        .random_sample(scale.size(25_000), seed.wrapping_add(1));

    let bucket = cardb_buckets(&schema);
    let train = |smoothing: f64, uniform: bool| -> AimqSystem {
        AimqSystem::train(
            &sample,
            &TrainConfig {
                tane: cardb_tane(),
                bucket: Some(bucket.clone()),
                smoothing,
                use_uniform_importance: uniform,
                parallel_similarity: false,
            },
        )
        .expect("non-empty sample")
    };

    // Query-log variant: same mined VSim *structure* is rebuilt under a
    // query-derived ordering. The synthetic log reflects what car buyers
    // bind: Model and Price in almost every query, Make/Year often,
    // Mileage sometimes, Location/Color rarely.
    let log_ordering = {
        let a = |name: &str| schema.attr_id(name).unwrap();
        let q1 = vec![a("Model"), a("Price")];
        let q2 = vec![a("Model"), a("Price"), a("Year")];
        let q3 = vec![a("Make"), a("Price")];
        let q4 = vec![a("Model"), a("Price"), a("Mileage")];
        let q5 = vec![a("Make"), a("Model"), a("Price"), a("Year")];
        let mut log: Vec<&[AttrId]> = Vec::new();
        for _ in 0..4 {
            log.push(&q1);
        }
        for q in [&q2, &q3, &q4] {
            for _ in 0..2 {
                log.push(q);
            }
        }
        log.push(&q5);
        AttributeOrdering::from_query_log(&schema, log).expect("non-empty schema")
    };
    let log_model = SimilarityModel::build(
        &sample,
        &log_ordering,
        &SimConfig {
            bucket: bucket.clone(),
        },
    );

    let n_queries = scale.count(10).max(6);
    let query_rows = pick_query_rows(db.relation(), n_queries, seed.wrapping_add(2));
    let queries: Vec<(Tuple, ImpreciseQuery)> = query_rows
        .iter()
        .map(|&row| {
            let t = db.relation().tuple(row);
            let q = ImpreciseQuery::from_tuple(&t).expect("non-null tuple");
            (t, q)
        })
        .collect();

    let config = EngineConfig {
        t_sim: 0.4,
        top_k: 12,
        max_relax_level: 3,
        max_base_tuples: 10,
        target_relevant: Some(30),
        ..EngineConfig::default()
    };

    let evaluate = |system: &AimqSystem, label: &str| -> AblationRow {
        let mut quality_total = 0.0;
        let mut examined_total = 0.0;
        for (query_tuple, query) in &queries {
            let result = system.answer(&db, query, &config);
            let top: Vec<f64> = result
                .answers
                .iter()
                .map(|a| &a.tuple)
                .filter(|t| *t != query_tuple)
                .take(10)
                .map(|t| car_oracle_similarity(&schema, query_tuple, t))
                .collect();
            if !top.is_empty() {
                quality_total += top.iter().sum::<f64>() / top.len() as f64;
            }
            examined_total += result.stats.tuples_examined as f64;
        }
        AblationRow {
            variant: label.to_owned(),
            quality: quality_total / queries.len() as f64,
            examined: examined_total / queries.len() as f64,
        }
    };

    let mined = train(0.0, false);
    let smoothed = train(0.05, false);
    let uniform = train(0.0, true);
    let log_system = AimqSystem::from_parts(mined.mined().clone(), log_ordering, log_model);

    let rows = vec![
        evaluate(&mined, "mined (Algorithm 2)"),
        evaluate(&smoothed, "mined + smoothing 0.05"),
        evaluate(&uniform, "uniform"),
        evaluate(&log_system, "query-log driven"),
    ];

    AblationResult {
        rows,
        n_queries: queries.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> AblationResult {
        run(Scale::quick(), 41)
    }

    #[test]
    fn all_variants_answer_with_positive_quality() {
        let r = result();
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            assert!(
                row.quality > 0.3,
                "variant {} produced poor answers: {}",
                row.variant,
                row.quality
            );
            assert!(row.examined > 0.0);
        }
    }

    #[test]
    fn quality_lookup_by_label() {
        let r = result();
        assert!(r.quality_of("uniform").is_some());
        assert!(r.quality_of("nonexistent").is_none());
    }

    #[test]
    fn render_lists_all_variants() {
        assert_eq!(result().render().len(), 4);
    }
}
