//! **Figure 5 — Similarity graph for `Make`.**
//!
//! The paper draws the mined similarity graph over values of `Make`:
//! Ford–Chevrolet is the strongest edge (0.25), mainstream makes connect
//! to each other, and BMW is disconnected from Ford because its
//! similarity falls below the display threshold.

use aimq_data::CarDb;

use crate::experiments::common::train_cardb;
use crate::{Scale, TextTable};

/// Result of the Figure 5 run: the pairwise `VSim` values among the
/// makes the paper draws.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// The makes in display order.
    pub makes: Vec<String>,
    /// Dense symmetric matrix of mined similarities,
    /// `sims[i * makes.len() + j]`.
    pub sims: Vec<f64>,
    /// Edge-display threshold (edges below it are not drawn).
    pub threshold: f64,
}

impl Fig5Result {
    /// Mined similarity between two makes by name.
    pub fn sim(&self, a: &str, b: &str) -> Option<f64> {
        let ia = self.makes.iter().position(|m| m == a)?;
        let ib = self.makes.iter().position(|m| m == b)?;
        Some(self.sims[ia * self.makes.len() + ib])
    }

    /// Edges at or above the display threshold, strongest first.
    pub fn edges(&self) -> Vec<(String, String, f64)> {
        let n = self.makes.len();
        let mut out = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let s = self.sims[i * n + j];
                if s >= self.threshold {
                    out.push((self.makes[i].clone(), self.makes[j].clone(), s));
                }
            }
        }
        out.sort_by(|a, b| b.2.total_cmp(&a.2));
        out
    }

    /// Render the edge list (the graph's content).
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            format!(
                "Figure 5: similarity graph over Make (edges ≥ {:.2})",
                self.threshold
            ),
            &["Make A", "Make B", "VSim"],
        );
        for (a, b, s) in self.edges() {
            t.row(vec![a, b, format!("{s:.3}")]);
        }
        t
    }
}

/// The makes the paper's figure shows.
const FIGURE_MAKES: &[&str] = &[
    "Ford",
    "Chevrolet",
    "Toyota",
    "Honda",
    "Dodge",
    "Nissan",
    "BMW",
];

/// Run the experiment: mine value similarity on a 25k-scale sample and
/// extract the `Make` sub-graph.
pub fn run(scale: Scale, seed: u64) -> Fig5Result {
    let full = CarDb::generate(scale.cardb(), seed);
    let sample = full.random_sample(scale.size(25_000), seed.wrapping_add(1));
    let system = train_cardb(&sample);
    let make_attr = sample.schema().attr_id("Make").expect("CarDB Make");
    let matrix = system
        .model()
        .matrix(make_attr)
        .expect("Make is categorical");

    let makes: Vec<String> = FIGURE_MAKES.iter().map(|s| (*s).to_owned()).collect();
    let n = makes.len();
    let mut sims = vec![0.0; n * n];
    for i in 0..n {
        sims[i * n + i] = 1.0;
        for j in (i + 1)..n {
            let s = matrix.similarity_by_name(&makes[i], &makes[j]);
            sims[i * n + j] = s;
            sims[j * n + i] = s;
        }
    }

    // Display threshold: relative to the strongest off-diagonal edge so
    // the graph shape is robust to absolute-scale differences between our
    // synthetic corpus and Yahoo Autos.
    let max_edge = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .map(|(i, j)| sims[i * n + j])
        .fold(0.0f64, f64::max);
    let threshold = max_edge * 0.45;

    Fig5Result {
        makes,
        sims,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig5Result {
        run(Scale::with_divisor(50), 17)
    }

    #[test]
    fn covers_paper_makes() {
        let r = result();
        assert_eq!(r.makes.len(), 7);
        assert!(r.sim("Ford", "Chevrolet").is_some());
    }

    #[test]
    fn mainstream_pair_beats_luxury_pair() {
        // The paper's shape: Ford–Chevrolet strong, Ford–BMW below the
        // display threshold.
        let r = result();
        let fc = r.sim("Ford", "Chevrolet").unwrap();
        let fb = r.sim("Ford", "BMW").unwrap();
        assert!(
            fc > fb,
            "Ford~Chevrolet ({fc:.3}) must beat Ford~BMW ({fb:.3})"
        );
    }

    #[test]
    fn graph_has_edges_and_bmw_is_peripheral() {
        let r = result();
        let edges = r.edges();
        assert!(!edges.is_empty(), "graph must have edges");
        // BMW participates in at most as many edges as Ford.
        let degree = |make: &str| {
            edges
                .iter()
                .filter(|(a, b, _)| a == make || b == make)
                .count()
        };
        assert!(degree("BMW") <= degree("Ford"));
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let r = result();
        let n = r.makes.len();
        for i in 0..n {
            assert_eq!(r.sims[i * n + i], 1.0);
            for j in 0..n {
                assert!((r.sims[i * n + j] - r.sims[j * n + i]).abs() < 1e-12);
            }
        }
    }
}
