//! **Figure 9 — Domain independence: classification accuracy on
//! CensusDB.**
//!
//! The paper trains AIMQ on a 15k sample of the 45k CensusDB, then issues
//! 1000 held-out tuples (balanced across the `>50K` / `<=50K` classes) as
//! imprecise queries. Since same-class tuples are assumed more similar,
//! the relevance of the top-k answers is measured as the fraction sharing
//! the query's class. Claims: AIMQ beats ROCK at every k ∈ {1, 3, 5, 10},
//! and accuracy rises as k shrinks.

use aimq::EngineConfig;
use aimq_afd::EncodedRelation;
use aimq_catalog::ImpreciseQuery;
use aimq_catalog::Tuple;
use aimq_data::{CensusDb, IncomeClass};
use aimq_rock::{RockConfig, RockModel};
use aimq_storage::{InMemoryWebDb, RowId};
use std::collections::HashMap;

use crate::experiments::common::{census_buckets, train_census};
use crate::{accuracy_at_k, Scale, TextTable};

/// Result of the Figure 9 run.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// The k values, descending as in the paper ({10, 5, 3, 1}).
    pub ks: Vec<usize>,
    /// Average top-k accuracy of AIMQ (GuidedRelax) per k.
    pub aimq: Vec<f64>,
    /// Average top-k accuracy of ROCK per k.
    pub rock: Vec<f64>,
    /// Number of query tuples.
    pub n_queries: usize,
    /// Average number of answers AIMQ returned per query (10 = full
    /// lists; lower values depress the top-10 accuracy by construction).
    pub avg_aimq_answers: f64,
    /// Same for ROCK.
    pub avg_rock_answers: f64,
}

impl Fig9Result {
    /// The paper's headline: AIMQ ≥ ROCK at every k.
    pub fn aimq_dominates(&self) -> bool {
        self.aimq.iter().zip(&self.rock).all(|(a, r)| a >= r)
    }

    /// Render the figure's grouped bars.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            format!(
                "Figure 9: top-k classification accuracy on CensusDB ({} queries)",
                self.n_queries
            ),
            &["k", "AIMQ", "ROCK"],
        );
        for (i, k) in self.ks.iter().enumerate() {
            t.row(vec![
                k.to_string(),
                format!("{:.3}", self.aimq[i]),
                format!("{:.3}", self.rock[i]),
            ]);
        }
        t
    }
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Fig9Result {
    let (relation, classes) = CensusDb::generate(scale.censusdb(), seed);
    let schema = relation.schema().clone();
    let db = InMemoryWebDb::new(relation);

    // Class lookup for answer tuples (identical tuples with conflicting
    // classes resolve to the first seen — inherently ambiguous records).
    let class_of_tuple: HashMap<Tuple, IncomeClass> = db
        .relation()
        .rows()
        .map(|r| (db.relation().tuple(r), classes[r as usize]))
        .collect();

    // Train AIMQ on a 15k-scale sample.
    let sample_size = scale.size(15_000);
    let sample = db
        .relation()
        .random_sample(sample_size, seed.wrapping_add(1));
    let system = train_census(&sample);

    // ROCK over the full relation.
    let enc = EncodedRelation::encode(db.relation(), &census_buckets(&schema));
    let rock = RockModel::fit(
        &enc,
        RockConfig {
            theta: 0.45,
            target_clusters: 25,
            sample_size: scale.size(2_000),
            seed: seed.wrapping_add(2),
            min_cluster_size: 1,
        },
    );

    // Query workload: held-out rows, balanced across classes.
    let n_queries = scale.count(1_000);
    let queries = balanced_heldout_rows(&db, &classes, &sample, n_queries, seed);

    let ks = vec![10, 5, 3, 1];
    // top_k leaves headroom so that dropping the query tuple itself (and
    // any class-ambiguous duplicates) still leaves 10 answers.
    let config = EngineConfig {
        t_sim: 0.4,
        top_k: 14,
        max_relax_level: 5,
        max_base_tuples: 10,
        target_relevant: Some(60),
        // Cover every relaxation set up to 4 attributes (Σ C(13,1..4) =
        // 1092 steps) plus the cheapest 5-attribute sets.
        max_steps_per_tuple: 1200,
        ..EngineConfig::default()
    };

    let mut aimq_acc = vec![0.0; ks.len()];
    let mut rock_acc = vec![0.0; ks.len()];
    let mut aimq_answer_count = 0usize;
    let mut rock_answer_count = 0usize;

    for &row in &queries {
        let query_tuple = db.relation().tuple(row);
        let query_class = classes[row as usize];
        let query = ImpreciseQuery::from_tuple(&query_tuple).expect("non-null tuple");

        let aimq_classes: Vec<IncomeClass> = system
            .answer(&db, &query, &config)
            .answers
            .into_iter()
            .map(|a| a.tuple)
            .filter(|t| *t != query_tuple)
            .filter_map(|t| class_of_tuple.get(&t).copied())
            .take(10)
            .collect();

        let rock_classes: Vec<IncomeClass> = rock
            .answer(row as RowId, 10)
            .into_iter()
            .map(|(r, _)| classes[r as usize])
            .collect();

        aimq_answer_count += aimq_classes.len();
        rock_answer_count += rock_classes.len();
        for (i, &k) in ks.iter().enumerate() {
            aimq_acc[i] += accuracy_at_k(&query_class, &aimq_classes, k);
            rock_acc[i] += accuracy_at_k(&query_class, &rock_classes, k);
        }
    }

    let n = queries.len() as f64;
    Fig9Result {
        ks,
        aimq: aimq_acc.into_iter().map(|a| a / n).collect(),
        rock: rock_acc.into_iter().map(|a| a / n).collect(),
        n_queries: queries.len(),
        avg_aimq_answers: aimq_answer_count as f64 / n,
        avg_rock_answers: rock_answer_count as f64 / n,
    }
}

/// Pick `n` rows not present in the training sample, half per class
/// ("The queries were equally distributed over the classes").
fn balanced_heldout_rows(
    db: &InMemoryWebDb,
    classes: &[IncomeClass],
    sample: &aimq_storage::Relation,
    n: usize,
    seed: u64,
) -> Vec<RowId> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    // The sample was drawn by tuple value; exclude any row whose tuple
    // appears in it.
    let sampled: std::collections::HashSet<Tuple> = sample.tuples().collect();
    let mut per_class: HashMap<IncomeClass, Vec<RowId>> = HashMap::new();
    for row in db.relation().rows() {
        if !sampled.contains(&db.relation().tuple(row)) {
            per_class
                .entry(classes[row as usize])
                .or_default()
                .push(row);
        }
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(9));
    let mut out = Vec::with_capacity(n);
    let half = n / 2;
    for class in [IncomeClass::Above50K, IncomeClass::AtMost50K] {
        let rows = per_class.entry(class).or_default();
        rows.shuffle(&mut rng);
        out.extend(rows.iter().copied().take(half.max(1)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig9Result {
        run(Scale::quick(), 29)
    }

    #[test]
    fn reports_the_paper_ks() {
        let r = result();
        assert_eq!(r.ks, vec![10, 5, 3, 1]);
        assert_eq!(r.aimq.len(), 4);
        assert_eq!(r.rock.len(), 4);
    }

    #[test]
    fn accuracies_are_probabilities() {
        let r = result();
        for v in r.aimq.iter().chain(&r.rock) {
            assert!((0.0..=1.0).contains(v), "accuracy {v}");
        }
    }

    #[test]
    fn aimq_beats_chance() {
        // Balanced queries over two classes: chance is ~0.5 for the
        // majority-class-insensitive metric; AIMQ's neighbors should do
        // better than random tuples at the largest k.
        let r = result();
        assert!(
            r.aimq[0] > 0.4,
            "AIMQ top-10 accuracy suspiciously low: {:?}",
            r.aimq
        );
    }

    #[test]
    fn render_has_four_rows() {
        assert_eq!(result().render().len(), 4);
    }
}
