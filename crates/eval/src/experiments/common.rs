//! Shared setup for the experiment runners: bucket policies, training
//! shortcuts and workload pickers.

use aimq::{AimqSystem, TrainConfig};
use aimq_afd::{BucketConfig, TaneConfig};
use aimq_catalog::{BucketSpec, Schema};
use aimq_storage::{Relation, RowId};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Bucket policy for CarDB, mirroring the paper's Table 1 granularity
/// (`Price 1k-5k`, `Mileage 10k-15k`): Price in $1,000 buckets, Mileage
/// in 5,000-mile buckets.
pub fn cardb_buckets(schema: &Schema) -> BucketConfig {
    let price = schema.attr_id("Price").expect("CarDB has Price");
    let mileage = schema.attr_id("Mileage").expect("CarDB has Mileage");
    BucketConfig::for_schema(schema)
        .with_spec(price, BucketSpec::width(1_000.0))
        .with_spec(mileage, BucketSpec::width(5_000.0))
}

/// Bucket policy for CensusDB: decade ages, 10-hour work weeks, coarse
/// capital movements, broad demographic weights.
pub fn census_buckets(schema: &Schema) -> BucketConfig {
    let spec = |name: &str, width: f64| {
        (
            schema.attr_id(name).expect("CensusDB attribute"),
            BucketSpec::width(width),
        )
    };
    let mut config = BucketConfig::for_schema(schema);
    for (attr, s) in [
        spec("Age", 10.0),
        spec("Demographic-weight", 50_000.0),
        spec("Capital-gain", 5_000.0),
        spec("Capital-loss", 1_000.0),
        spec("Hours-per-week", 10.0),
    ] {
        config = config.with_spec(attr, s);
    }
    config
}

/// TANE configuration used throughout the CarDB experiments.
pub fn cardb_tane() -> TaneConfig {
    TaneConfig {
        error_threshold: 0.3,
        max_lhs_size: 3,
        max_key_size: 5,
        prune_superkeys: false,
    }
}

/// TANE configuration for CensusDB (13 attributes → tighter lattice cap,
/// superkey pruning on; documented deviation in DESIGN.md).
pub fn census_tane() -> TaneConfig {
    TaneConfig {
        error_threshold: 0.15,
        max_lhs_size: 2,
        max_key_size: 3,
        prune_superkeys: true,
    }
}

/// Train an AIMQ system on a CarDB sample with the standard policies.
pub fn train_cardb(sample: &Relation) -> AimqSystem {
    AimqSystem::train(
        sample,
        &TrainConfig {
            tane: cardb_tane(),
            bucket: Some(cardb_buckets(sample.schema())),
            smoothing: 0.05,
            use_uniform_importance: false,
            parallel_similarity: false,
        },
    )
    .expect("non-empty CarDB sample")
}

/// Train the "equal importance" variant (what RandomRelax and ROCK
/// implicitly assume, Section 6.4).
pub fn train_cardb_uniform(sample: &Relation) -> AimqSystem {
    AimqSystem::train(
        sample,
        &TrainConfig {
            tane: cardb_tane(),
            bucket: Some(cardb_buckets(sample.schema())),
            smoothing: 0.0,
            use_uniform_importance: true,
            parallel_similarity: false,
        },
    )
    .expect("non-empty CarDB sample")
}

/// Train an AIMQ system on a CensusDB sample.
pub fn train_census(sample: &Relation) -> AimqSystem {
    AimqSystem::train(
        sample,
        &TrainConfig {
            tane: census_tane(),
            bucket: Some(census_buckets(sample.schema())),
            smoothing: 0.05,
            use_uniform_importance: false,
            parallel_similarity: false,
        },
    )
    .expect("non-empty CensusDB sample")
}

/// Pick `n` distinct random rows as the query workload.
pub fn pick_query_rows(relation: &Relation, n: usize, seed: u64) -> Vec<RowId> {
    let mut rows: Vec<RowId> = relation.rows().collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    rows.shuffle(&mut rng);
    rows.truncate(n.min(rows.len()));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_data::CarDb;

    #[test]
    fn bucket_policies_resolve_attributes() {
        let car = CarDb::schema();
        let b = cardb_buckets(&car);
        assert!(b.spec(car.attr_id("Price").unwrap()).is_some());
        assert!(b.spec(car.attr_id("Make").unwrap()).is_none());
        let census = aimq_data::CensusDb::schema();
        let cb = census_buckets(&census);
        assert!(cb.spec(census.attr_id("Age").unwrap()).is_some());
    }

    #[test]
    fn training_shortcuts_work_on_small_samples() {
        let rel = CarDb::generate(400, 7);
        let sys = train_cardb(&rel);
        assert_eq!(sys.ordering().relaxation_order().len(), 7);
        let uni = train_cardb_uniform(&rel);
        // Uniform: every attribute same importance.
        let s = rel.schema();
        let w0 = uni.ordering().importance(s.attr_id("Make").unwrap());
        let w1 = uni.ordering().importance(s.attr_id("Color").unwrap());
        assert!((w0 - w1).abs() < 1e-12);
    }

    #[test]
    fn query_rows_are_distinct_and_deterministic() {
        let rel = CarDb::generate(200, 7);
        let a = pick_query_rows(&rel, 10, 3);
        let b = pick_query_rows(&rel, 10, 3);
        assert_eq!(a, b);
        let mut s = a.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
    }
}
