//! **Figure 4 — Robustness in mining approximate keys.**
//!
//! The paper mines approximate keys from CarDB samples and compares each
//! key's *quality* (support / size) against the keys mined from the full
//! 100k relation. Claims: only a few low-quality keys are missed in
//! samples, and the best key — the one Algorithm 2 actually uses — is
//! identical at every sample size.

use aimq_afd::{EncodedRelation, MinedDependencies};
use aimq_catalog::Schema;
use aimq_data::CarDb;

use crate::experiments::common::{cardb_buckets, cardb_tane};
use crate::{Scale, TextTable};

/// Result of the Figure 4 run.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Sample sizes, ascending; last entry is the full relation.
    pub sample_sizes: Vec<usize>,
    /// Keys found in the full relation, sorted by ascending quality
    /// (the paper's x-axis), rendered as attribute-name sets.
    pub key_names: Vec<String>,
    /// `quality[sample][key]`; `None` when the key was not mined from
    /// that sample.
    pub quality: Vec<Vec<Option<f64>>>,
    /// The best key (by quality) chosen at each sample size.
    pub best_key: Vec<String>,
    /// The same best keys as attribute sets (for structural checks).
    pub best_key_sets: Vec<aimq_afd::AttrSet>,
}

impl Fig4Result {
    /// Number of full-data keys missing from the given sample.
    pub fn missing_in(&self, sample: usize) -> usize {
        self.quality[sample].iter().filter(|q| q.is_none()).count()
    }

    /// The paper's headline: the best key is the same at every size.
    pub fn best_key_stable(&self) -> bool {
        self.best_key.windows(2).all(|w| w[0] == w[1])
    }

    /// Tie-tolerant variant: every sample's best key appears among the
    /// full data's top-`n` keys by quality. On synthetic corpora two keys
    /// can be quality-tied to within sampling noise, flipping the strict
    /// argmax without affecting relaxation behaviour.
    pub fn best_key_in_full_top(&self, n: usize) -> bool {
        // key_names is sorted ascending by full-data quality.
        let top: Vec<&String> = self.key_names.iter().rev().take(n).collect();
        self.best_key.iter().all(|k| top.contains(&k))
    }

    /// The operational form of the paper's claim ("even with the smallest
    /// sample we would have picked the right approximate key"): all
    /// *samples* agree on one best key, and the full relation's best key
    /// contains it (smaller samples legitimately admit smaller keys —
    /// uniqueness is easier on fewer tuples).
    pub fn samples_pick_core_of_full_key(&self) -> bool {
        let n = self.best_key_sets.len();
        if n < 2 {
            return true;
        }
        let sample_keys = &self.best_key_sets[..n - 1];
        let full_key = self.best_key_sets[n - 1];
        sample_keys.windows(2).all(|w| w[0] == w[1]) && full_key.is_superset_of(sample_keys[0])
    }

    /// Render rows = keys (ascending full-data quality), columns =
    /// sample sizes.
    pub fn render(&self) -> TextTable {
        let mut header: Vec<String> = vec!["Approximate key".into()];
        header.extend(self.sample_sizes.iter().map(|s| format!("{s} tuples")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = TextTable::new(
            "Figure 4: approximate-key quality (support/size) vs sample size",
            &header_refs,
        );
        for (k, name) in self.key_names.iter().enumerate() {
            let mut row = vec![name.clone()];
            for s in 0..self.sample_sizes.len() {
                row.push(match self.quality[s][k] {
                    Some(q) => format!("{q:.3}"),
                    None => "-".into(),
                });
            }
            t.row(row);
        }
        t
    }
}

fn key_label(schema: &Schema, attrs: aimq_afd::AttrSet) -> String {
    attrs.display_with(schema).to_string()
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Fig4Result {
    let full = CarDb::generate(scale.cardb(), seed);
    let schema = full.schema().clone();
    let buckets = cardb_buckets(&schema);
    let tane = cardb_tane();

    let mut sample_sizes = scale.cardb_samples();
    sample_sizes.push(full.len());

    let mut mined_per_sample = Vec::new();
    for (i, &size) in sample_sizes.iter().enumerate() {
        let sample = if size >= full.len() {
            full.clone()
        } else {
            full.random_sample(size, seed.wrapping_add(i as u64 + 1))
        };
        let enc = EncodedRelation::encode(&sample, &buckets);
        mined_per_sample.push(MinedDependencies::mine(&enc, &tane));
    }

    // Key universe: keys of the full relation, ascending quality (the
    // paper's Figure 4 x-axis ordering).
    let full_mined = mined_per_sample.last().expect("at least one sample");
    let mut full_keys: Vec<aimq_afd::AKey> = full_mined.keys().to_vec();
    full_keys.sort_by(|a, b| a.quality().total_cmp(&b.quality()));

    let quality: Vec<Vec<Option<f64>>> = mined_per_sample
        .iter()
        .map(|mined| {
            full_keys
                .iter()
                .map(|fk| {
                    mined
                        .keys()
                        .iter()
                        .find(|k| k.attrs == fk.attrs)
                        .map(aimq_afd::AKey::quality)
                })
                .collect()
        })
        .collect();

    let best_key_sets: Vec<aimq_afd::AttrSet> = mined_per_sample
        .iter()
        .map(|m| m.best_key().map_or(aimq_afd::AttrSet::EMPTY, |k| k.attrs))
        .collect();
    let best_key = best_key_sets
        .iter()
        .map(|&attrs| {
            if attrs.is_empty() {
                "(none)".to_owned()
            } else {
                key_label(&schema, attrs)
            }
        })
        .collect();

    Fig4Result {
        sample_sizes,
        key_names: full_keys
            .iter()
            .map(|k| key_label(&schema, k.attrs))
            .collect(),
        quality,
        best_key,
        best_key_sets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig4Result {
        run(Scale::quick(), 11)
    }

    #[test]
    fn keys_are_found_and_sorted_by_quality() {
        let r = result();
        assert!(!r.key_names.is_empty(), "CarDB must yield approximate keys");
        let full = r.sample_sizes.len() - 1;
        let qs: Vec<f64> = r.quality[full].iter().map(|q| q.unwrap()).collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn best_key_is_near_stable_across_samples() {
        // The operational claim: every sample picks the same key, and the
        // full relation's key contains it.
        let r = result();
        assert!(
            r.samples_pick_core_of_full_key(),
            "sample best keys {:?} must agree and be contained in the full-data key",
            r.best_key,
        );
    }

    #[test]
    fn full_sample_misses_nothing() {
        let r = result();
        let full = r.sample_sizes.len() - 1;
        assert_eq!(r.missing_in(full), 0);
    }

    #[test]
    fn render_lists_all_keys() {
        let r = result();
        assert_eq!(r.render().len(), r.key_names.len());
    }
}
