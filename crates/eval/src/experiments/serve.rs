//! **Serve bench — concurrent query serving on a CarDB query log.**
//!
//! Not a figure of the paper, but its deployment premise made
//! measurable: AIMQ fronts *autonomous Web databases*, so online query
//! answering is latency-bound — every probe is a network round-trip to
//! a source the system does not own, and the engine spends most of a
//! query's wall time waiting, not computing. A serving runtime should
//! therefore scale throughput with workers by overlapping those waits,
//! even on a single core.
//!
//! The workload replays a CarDB query log through
//! [`aimq_serve::QueryServer`] at increasing worker counts
//! ([`WORKERS`]). The source stack is the production shape — a shared
//! lock-striped [`CachedWebDb`] over the source — with one addition:
//! a [`SimulatedRttDb`] between cache and source charging a fixed
//! round-trip sleep per probe that *misses* the cache (hits are local
//! memory, as they would be in deployment). Each rung gets a cold
//! stack so all rungs pay the same miss population.
//!
//! Two claims per rung:
//!
//! 1. **identity** — every query's ranked top-k (tuples, similarity
//!    bits, provenance) is byte-identical to the single-threaded
//!    engine's answer on an undecorated source. Worker count and
//!    interleaving must never change an answer.
//! 2. **throughput** — wall-clock throughput scales with workers;
//!    the headline acceptance gate is ≥ 3× at 8 workers vs 1
//!    (recorded in `results/BENCH_serve.json` at full scale).
//!
//! Latency/interleaving note: the engine's per-answer meter deltas
//! (`stats`, `degradation.retries`) aggregate *cross-worker* activity
//! under concurrency, so the identity fingerprint deliberately covers
//! answers only — see the `aimq-serve` crate docs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aimq::{AnswerSet, EngineConfig};
use aimq_catalog::{ImpreciseQuery, Json, Schema, SelectionQuery};
use aimq_data::CarDb;
use aimq_serve::{QueryServer, ServeConfig, ServeStatsSnapshot, Ticket};
use aimq_storage::{AccessStats, CachedWebDb, InMemoryWebDb, QueryError, QueryPage, WebDatabase};

use crate::experiments::common::{pick_query_rows, train_cardb};
use crate::{Scale, TextTable};

/// Worker-pool sizes of the scaling ladder.
pub const WORKERS: &[usize] = &[1, 2, 4, 8];

/// Simulated source round-trip per cache-missing probe, in microseconds
/// (≈ a fast same-region HTTP hop). Large against the engine's per-probe
/// CPU cost so the workload is latency-bound, as deployment is.
pub const RTT_MICROS: u64 = 3_000;

/// A [`WebDatabase`] decorator charging a fixed wall-clock round-trip
/// per probe, standing in for the network hop to an autonomous source.
/// Sits *under* the cache: hits stay local, misses travel.
struct SimulatedRttDb<D> {
    inner: D,
    rtt: Duration,
}

impl<D: WebDatabase> WebDatabase for SimulatedRttDb<D> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    // aimq-probe: entry -- experiment harness wrapper; adds fixed RTT, accounting stays on the inner db's AccessStats
    fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError> {
        std::thread::sleep(self.rtt);
        self.inner.try_query(query)
    }

    fn stats(&self) -> AccessStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

/// One rung of the scaling ladder.
#[derive(Debug, Clone)]
pub struct ServeRung {
    /// Worker threads serving this rung.
    pub workers: usize,
    /// Wall-clock time to serve the whole log, milliseconds.
    pub wall_ms: f64,
    /// Queries served per wall-clock second.
    pub throughput_qps: f64,
    /// Every query's ranked answers matched the single-threaded
    /// engine's, byte for byte.
    pub identical: bool,
    /// Serving counters (admissions, latency histogram, utilization).
    pub stats: ServeStatsSnapshot,
    /// Source-stack access meter for this rung (cache hits/misses,
    /// breaker trips), so degraded runs are visible without parsing the
    /// JSON artifact.
    pub source: AccessStats,
}

/// Result of the serve bench.
#[derive(Debug, Clone)]
pub struct ServeBenchResult {
    /// Distinct imprecise queries in the log.
    pub n_queries: usize,
    /// Simulated per-miss round trip, in microseconds.
    pub rtt_micros: u64,
    /// One rung per entry of [`WORKERS`].
    pub rungs: Vec<ServeRung>,
}

impl ServeBenchResult {
    /// The rung serving with `workers` threads.
    pub fn rung(&self, workers: usize) -> Option<&ServeRung> {
        self.rungs.iter().find(|r| r.workers == workers)
    }

    /// Throughput of the `workers` rung relative to the 1-worker rung.
    pub fn speedup(&self, workers: usize) -> f64 {
        match (self.rung(1), self.rung(workers)) {
            (Some(base), Some(r)) if base.throughput_qps > 0.0 => {
                r.throughput_qps / base.throughput_qps
            }
            _ => 0.0,
        }
    }

    /// `true` when every rung answered every query identically to the
    /// single-threaded engine.
    pub fn all_identical(&self) -> bool {
        self.rungs.iter().all(|r| r.identical)
    }

    /// The ladder's counters as shared JSON: one entry per rung, each
    /// serialized with the *same* `ServeStatsSnapshot::to_json()` /
    /// `AccessStats::to_json()` path the HTTP front door's `GET /stats`
    /// uses — the bench artifact and the wire agree on names and shapes
    /// by construction.
    pub fn counters_json(&self) -> Json {
        Json::obj(vec![(
            "rungs",
            Json::Arr(
                self.rungs
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("workers", Json::Num(r.workers as f64)),
                            ("serve", r.stats.to_json()),
                            ("source", r.source.to_json()),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    /// One-line counter digest across all rungs — dropped replies,
    /// breaker trips and cache traffic — derived from
    /// [`Self::counters_json`] rather than re-summed by hand, so the
    /// terminal line can never disagree with the serialized counters.
    /// Printed by `aimq serve-bench`.
    pub fn counters_line(&self) -> String {
        let json = self.counters_json();
        let sum = |section: &str, field: &str| -> u64 {
            json.get("rungs")
                .and_then(Json::as_array)
                .map(|rungs| {
                    rungs
                        .iter()
                        .filter_map(|r| {
                            r.get(section)
                                .and_then(|s| s.get(field))
                                .and_then(Json::as_u64)
                        })
                        .sum()
                })
                .unwrap_or(0)
        };
        format!(
            "counters: {} replies dropped, {} breaker trips, cache {} hits / {} misses",
            sum("serve", "replies_dropped"),
            sum("source", "breaker_trips"),
            sum("source", "cache_hits"),
            sum("source", "cache_misses"),
        )
    }

    /// Render the ladder.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            format!(
                "Serve bench: {} queries, {}us simulated source RTT per cache miss",
                self.n_queries, self.rtt_micros
            ),
            &[
                "workers",
                "wall ms",
                "qps",
                "speedup",
                "identical",
                "max depth",
                "avg ticks",
            ],
        );
        for r in &self.rungs {
            let avg_ticks = if r.stats.completed > 0 {
                r.stats.latency_ticks_total as f64 / r.stats.completed as f64
            } else {
                0.0
            };
            t.row(vec![
                r.workers.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.1}", r.throughput_qps),
                format!("{:.2}x", self.speedup(r.workers)),
                r.identical.to_string(),
                r.stats.max_queue_depth.to_string(),
                format!("{avg_ticks:.1}"),
            ]);
        }
        t
    }
}

/// Byte-comparable fingerprint of one answer set: ranked tuples with
/// similarity bit patterns and provenance. Meter-derived fields are
/// excluded on purpose (cross-worker aggregates; see module docs).
fn fingerprint(result: &AnswerSet) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "base={:?} |Abs|={}",
        result.base_query, result.base_set_size
    );
    for a in &result.answers {
        // aimq-lint: allow(result-discipline) -- fmt::Write to a String is infallible
        let _ = write!(
            out,
            " | {:?}@{:016x}:{:?}",
            a.tuple,
            a.similarity.to_bits(),
            a.provenance
        );
    }
    out
}

/// Run the serve bench: reference answers single-threaded, then the
/// ladder, each rung on a cold shared stack.
pub fn run(scale: Scale, seed: u64) -> ServeBenchResult {
    // A modest relation keeps per-probe CPU far below the simulated
    // RTT: the experiment measures wait-overlap, not executor speed.
    let relation = CarDb::generate(scale.size(10_000), seed);
    let sample = relation.random_sample(scale.size(5_000), seed.wrapping_add(1));
    let system = Arc::new(train_cardb(&sample));

    let n_queries = scale.count(40);
    let query_rows = pick_query_rows(&relation, n_queries, seed.wrapping_add(2));
    let queries: Vec<ImpreciseQuery> = query_rows
        .iter()
        .map(|&row| ImpreciseQuery::from_tuple(&relation.tuple(row)).expect("non-null tuple"))
        .collect();

    let engine = EngineConfig {
        t_sim: 0.5,
        top_k: 10,
        ..EngineConfig::default()
    };

    // Reference: the single-threaded engine on an undecorated source.
    let reference: Vec<String> = {
        let db = InMemoryWebDb::new(relation.clone());
        queries
            .iter()
            .map(|q| fingerprint(&system.answer(&db, q, &engine)))
            .collect()
    };

    let rtt = Duration::from_micros(RTT_MICROS);
    let mut rungs = Vec::new();
    for &workers in WORKERS {
        // Cold production-shaped stack per rung: striped shared cache
        // over the simulated network hop over the source.
        let stack: Arc<dyn WebDatabase> = Arc::new(CachedWebDb::with_stripes(
            SimulatedRttDb {
                inner: InMemoryWebDb::new(relation.clone()),
                rtt,
            },
            4096,
            8,
        ));
        let source_view = Arc::clone(&stack);
        let server = QueryServer::start(
            Arc::clone(&system),
            stack,
            ServeConfig {
                workers,
                queue_capacity: queries.len().max(1),
                deadline_ticks: 0,
                ticks_per_probe: 1,
                engine: engine.clone(),
            },
        );

        let started = Instant::now();
        let tickets: Vec<Ticket> = queries
            .iter()
            .map(|q| {
                server
                    .submit(q.clone())
                    .unwrap_or_else(|e| panic!("log fits the queue by construction: {e}"))
            })
            .collect();
        let answers: Vec<String> = tickets
            .into_iter()
            .map(|t| match t.wait() {
                Ok(outcome) => fingerprint(&outcome.answer),
                Err(e) => format!("<error: {e}>"),
            })
            .collect();
        let wall = started.elapsed();
        let stats = server.shutdown();

        let identical = answers == reference;
        let wall_ms = wall.as_secs_f64() * 1_000.0;
        rungs.push(ServeRung {
            workers,
            wall_ms,
            throughput_qps: if wall_ms > 0.0 {
                queries.len() as f64 / wall.as_secs_f64()
            } else {
                0.0
            },
            identical,
            stats,
            source: source_view.stats(),
        });
    }

    ServeBenchResult {
        n_queries,
        rtt_micros: RTT_MICROS,
        rungs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> ServeBenchResult {
        run(Scale::quick(), 31)
    }

    #[test]
    fn every_rung_matches_the_single_threaded_engine() {
        let r = result();
        assert!(
            r.all_identical(),
            "concurrent answers diverged: {:#?}",
            r.rungs
                .iter()
                .map(|x| (x.workers, x.identical))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_query_is_admitted_and_served() {
        let r = result();
        for rung in &r.rungs {
            assert_eq!(rung.stats.admitted, r.n_queries as u64, "{rung:#?}");
            assert_eq!(rung.stats.completed, r.n_queries as u64, "{rung:#?}");
            assert_eq!(rung.stats.rejected, 0, "{rung:#?}");
            assert_eq!(
                rung.stats.worker_processed.iter().sum::<u64>(),
                r.n_queries as u64
            );
        }
    }

    #[test]
    fn counters_line_surfaces_cache_traffic_and_drops() {
        let r = result();
        let line = r.counters_line();
        assert!(line.contains("replies dropped"), "{line}");
        assert!(line.contains("breaker trips"), "{line}");
        assert!(line.contains("cache"), "{line}");
        // Every rung probes a cold cache at least once, so the digest
        // can never claim an idle source.
        let misses: u64 = r.rungs.iter().map(|x| x.source.cache_misses).sum();
        assert!(misses > 0);
    }

    #[test]
    fn counters_json_uses_the_shared_stats_serializers() {
        let r = result();
        let json = r.counters_json();
        let rungs = json.get("rungs").and_then(Json::as_array).expect("rungs");
        assert_eq!(rungs.len(), r.rungs.len());
        for (entry, rung) in rungs.iter().zip(&r.rungs) {
            // Field names must match what the HTTP `/stats` route
            // serves, because both go through the same to_json() path.
            let serve = entry.get("serve").expect("serve section");
            assert_eq!(
                serve.get("replies_dropped").and_then(Json::as_u64),
                Some(rung.stats.replies_dropped)
            );
            assert_eq!(
                serve.get("completed").and_then(Json::as_u64),
                Some(rung.stats.completed)
            );
            let source = entry.get("source").expect("source section");
            assert_eq!(
                source.get("cache_misses").and_then(Json::as_u64),
                Some(rung.source.cache_misses)
            );
        }
        // The digest line is a projection of the same JSON.
        let line = r.counters_line();
        let misses: u64 = r.rungs.iter().map(|x| x.source.cache_misses).sum();
        assert!(line.contains(&format!("{misses} misses")), "{line}");
    }

    #[test]
    fn ladder_covers_the_advertised_worker_counts() {
        let r = result();
        let workers: Vec<usize> = r.rungs.iter().map(|x| x.workers).collect();
        assert_eq!(workers, WORKERS.to_vec());
        assert_eq!(r.render().len(), WORKERS.len());
    }

    #[test]
    fn multi_worker_rungs_overlap_source_waits() {
        // Identity is asserted exactly; timing only directionally (CI
        // machines vary): 8 workers must beat 1 worker outright on a
        // latency-bound log, even if the exact ratio wobbles.
        let r = result();
        assert!(
            r.speedup(8) > 1.0,
            "8 workers no faster than 1: {:#?}",
            r.rungs
                .iter()
                .map(|x| (x.workers, x.wall_ms))
                .collect::<Vec<_>>()
        );
    }
}
