//! **Fault matrix — graceful degradation under source failures.**
//!
//! Not a figure of the paper, but a precondition for every figure that
//! *is*: the paper's setting assumes autonomous Web sources, and real
//! autonomous sources time out, rate-limit, truncate pages, and go away.
//! This runner replays the same CarDB workload against the same source
//! under three deterministic fault profiles — `none`, `flaky` (10%
//! transient failures), `hostile` (rate-limited + page-truncating) —
//! through the retry/breaker stack, and measures how much of the
//! fault-free answer survives.
//!
//! The robustness claim mirrored here: with 10% transient faults behind
//! bounded retries, top-k recall against the fault-free run stays ≥ 0.9
//! (in practice 1.0 — retries absorb the faults), and every degraded
//! answer says so in its [`aimq::DegradationReport`] instead of passing
//! itself off as complete.

use aimq::{AnswerSet, Completeness, EngineConfig};
use aimq_catalog::ImpreciseQuery;
use aimq_data::CarDb;
use aimq_storage::{FaultInjectingWebDb, FaultProfile, InMemoryWebDb, ResilientWebDb, RetryPolicy};

use crate::experiments::common::{pick_query_rows, train_cardb};
use crate::{Scale, TextTable};

/// Outcome of one fault profile over the whole workload.
#[derive(Debug, Clone)]
pub struct ProfileOutcome {
    /// Profile name (`none`, `flaky`, `hostile`).
    pub profile: String,
    /// Mean top-k recall against the fault-free run at identical seeds.
    pub recall: f64,
    /// Queries answered with [`Completeness::Full`].
    pub full: usize,
    /// Queries answered with [`Completeness::Partial`].
    pub partial: usize,
    /// Queries answered with [`Completeness::Empty`].
    pub empty: usize,
    /// Engine-visible probe failures summed over the workload.
    pub probes_failed: u64,
    /// Probes abandoned un-issued after terminal failures.
    pub probes_skipped: u64,
    /// Result pages the source clipped.
    pub truncated_pages: u64,
    /// Source-level retries spent.
    pub retries: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
}

/// Result of the fault-matrix run.
#[derive(Debug, Clone)]
pub struct FaultsResult {
    /// One outcome per profile, in `none`/`flaky`/`hostile` order.
    pub outcomes: Vec<ProfileOutcome>,
    /// Number of workload queries.
    pub n_queries: usize,
}

impl FaultsResult {
    /// The outcome for a named profile.
    pub fn outcome(&self, profile: &str) -> Option<&ProfileOutcome> {
        self.outcomes.iter().find(|o| o.profile == profile)
    }

    /// Render the matrix.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            format!(
                "Fault matrix: top-k recall vs fault-free run ({} queries)",
                self.n_queries
            ),
            &[
                "profile",
                "recall",
                "full/partial/empty",
                "failed",
                "skipped",
                "truncated",
                "retries",
                "breaker trips",
            ],
        );
        for o in &self.outcomes {
            t.row(vec![
                o.profile.clone(),
                format!("{:.3}", o.recall),
                format!("{}/{}/{}", o.full, o.partial, o.empty),
                o.probes_failed.to_string(),
                o.probes_skipped.to_string(),
                o.truncated_pages.to_string(),
                o.retries.to_string(),
                o.breaker_trips.to_string(),
            ]);
        }
        t
    }
}

/// Answer keys of a run's top-k, order-insensitive.
fn answer_keys(result: &AnswerSet) -> Vec<String> {
    let mut keys: Vec<String> = result
        .answers
        .iter()
        .map(|a| format!("{:?}", a.tuple))
        .collect();
    keys.sort();
    keys
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> FaultsResult {
    let relation = CarDb::generate(scale.cardb(), seed);
    let sample = relation.random_sample(scale.size(25_000), seed.wrapping_add(1));
    let system = train_cardb(&sample);

    let n_queries = scale.count(10);
    let query_rows = pick_query_rows(&relation, n_queries, seed.wrapping_add(2));
    let queries: Vec<ImpreciseQuery> = query_rows
        .iter()
        .map(|&row| ImpreciseQuery::from_tuple(&relation.tuple(row)).expect("non-null tuple"))
        .collect();
    let config = EngineConfig {
        t_sim: 0.5,
        top_k: 10,
        ..EngineConfig::default()
    };

    // The fault-free reference: same queries, same seeds, pristine source.
    let clean_db = InMemoryWebDb::new(relation.clone());
    let reference: Vec<Vec<String>> = queries
        .iter()
        .map(|q| answer_keys(&system.answer(&clean_db, q, &config)))
        .collect();

    let mut outcomes = Vec::new();
    for profile_name in ["none", "flaky", "hostile"] {
        let profile = FaultProfile::by_name(profile_name).expect("built-in profile");
        let faulty = FaultInjectingWebDb::new(InMemoryWebDb::new(relation.clone()), profile, seed);
        let db = ResilientWebDb::new(faulty, RetryPolicy::default());

        let mut outcome = ProfileOutcome {
            profile: profile_name.to_owned(),
            recall: 0.0,
            full: 0,
            partial: 0,
            empty: 0,
            probes_failed: 0,
            probes_skipped: 0,
            truncated_pages: 0,
            retries: 0,
            breaker_trips: 0,
        };
        let mut recalls = Vec::new();
        for (q, expected) in queries.iter().zip(&reference) {
            let result = system.answer(&db, q, &config);
            let d = &result.degradation;
            match d.completeness {
                Completeness::Full => outcome.full += 1,
                Completeness::Partial => outcome.partial += 1,
                Completeness::Empty => outcome.empty += 1,
            }
            outcome.probes_failed += d.probes_failed;
            outcome.probes_skipped += d.probes_skipped;
            outcome.truncated_pages += d.truncated_pages;
            outcome.retries += d.retries;
            outcome.breaker_trips += d.breaker_trips;
            if !expected.is_empty() {
                let got = answer_keys(&result);
                let hit = expected.iter().filter(|k| got.contains(k)).count();
                recalls.push(hit as f64 / expected.len() as f64);
            }
        }
        outcome.recall = if recalls.is_empty() {
            1.0
        } else {
            recalls.iter().sum::<f64>() / recalls.len() as f64
        };
        outcomes.push(outcome);
    }

    FaultsResult {
        outcomes,
        n_queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> FaultsResult {
        run(Scale::quick(), 23)
    }

    #[test]
    fn clean_profile_is_a_perfect_baseline() {
        let r = result();
        let none = r.outcome("none").unwrap();
        assert!((none.recall - 1.0).abs() < 1e-12);
        assert_eq!(none.partial + none.empty, 0);
        assert_eq!(none.probes_failed, 0);
        assert_eq!(none.retries, 0);
    }

    #[test]
    fn flaky_profile_keeps_recall_at_least_090() {
        let r = result();
        let flaky = r.outcome("flaky").unwrap();
        assert!(
            flaky.recall >= 0.9,
            "flaky recall {:.3} below the 0.9 floor",
            flaky.recall
        );
        // The churn must be visible in the meter, not hidden.
        assert!(flaky.retries > 0, "10% faults should force retries");
    }

    #[test]
    fn hostile_profile_degrades_loudly_not_silently() {
        let r = result();
        let hostile = r.outcome("hostile").unwrap();
        // Truncation/rate-limiting must be *reported* whenever recall dips.
        if hostile.recall < 1.0 {
            assert!(
                hostile.partial + hostile.empty > 0
                    || hostile.truncated_pages > 0
                    || hostile.probes_failed > 0,
                "recall loss with no degradation evidence"
            );
        }
    }

    #[test]
    fn same_seed_reruns_are_identical() {
        let a = result();
        let b = result();
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn render_has_a_row_per_profile() {
        let r = result();
        assert_eq!(r.render().len(), 3);
    }
}
