//! **Table 3 — Robust similarity estimation.**
//!
//! The paper lists the top-3 values most similar to `Make=Kia`,
//! `Model=Bronco` and `Year=1985`, estimated from both the 25k sample and
//! the full 100k CarDB. Claim: absolute similarities are lower on the
//! smaller sample, but the relative ordering of similar values is
//! maintained.

use aimq_data::CarDb;

use crate::experiments::common::train_cardb;
use crate::{Scale, TextTable};

/// One probe value's top-3 list under both sample sizes.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// e.g. `Make=Kia`.
    pub query_value: String,
    /// `(value, similarity)` from the small sample, descending.
    pub small: Vec<(String, f64)>,
    /// `(value, similarity)` from the full relation, descending.
    pub full: Vec<(String, f64)>,
}

/// Result of the Table 3 run.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// Small-sample size (the paper's 25k).
    pub small_size: usize,
    /// Full-relation size (the paper's 100k).
    pub full_size: usize,
    /// One row per probed AV-pair.
    pub rows: Vec<Table3Row>,
}

impl Table3Result {
    /// The paper's claim: the top similar value agrees between sample and
    /// full data for every probed AV-pair (that has any similar values).
    pub fn top_value_agrees(&self) -> bool {
        self.rows
            .iter()
            .all(|r| match (r.small.first(), r.full.first()) {
                (Some(s), Some(f)) => s.0 == f.0,
                _ => true,
            })
    }

    /// Tie-tolerant form of the relative-ordering claim: for every probe,
    /// at least `min_overlap` of the sample's top-3 values also appear in
    /// the full data's top-3. Near-ties among e.g. economy makes can swap
    /// adjacent ranks between samples without changing the picture.
    pub fn top3_overlap_ok(&self, min_overlap: usize) -> bool {
        self.rows
            .iter()
            .all(|r| Self::overlap(r) >= min_overlap.min(r.small.len()).min(r.full.len()))
    }

    /// Mean top-3 overlap across probes (0..=3). Sparse probe values
    /// (Kia appears ~30 times in a 1/20-scale sample) make the strict
    /// per-probe check noisy; the mean captures the overall robustness.
    pub fn mean_top3_overlap(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows
            .iter()
            .map(|r| Self::overlap(r) as f64)
            .sum::<f64>()
            / self.rows.len() as f64
    }

    fn overlap(r: &Table3Row) -> usize {
        r.small
            .iter()
            .filter(|(v, _)| r.full.iter().any(|(f, _)| f == v))
            .count()
    }

    /// Render as the paper's table: one line per (query value, rank).
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            format!(
                "Table 3: top similar values, {}k sample vs {}k full",
                self.small_size / 1000,
                self.full_size / 1000
            ),
            &["Value", "Similar (sample)", "sim", "Similar (full)", "sim"],
        );
        for row in &self.rows {
            for i in 0..row.small.len().max(row.full.len()) {
                let (sv, ss) = row
                    .small
                    .get(i)
                    .map_or((String::new(), String::new()), |(v, s)| {
                        (v.clone(), format!("{s:.3}"))
                    });
                let (fv, fs) = row
                    .full
                    .get(i)
                    .map_or((String::new(), String::new()), |(v, s)| {
                        (v.clone(), format!("{s:.3}"))
                    });
                t.row(vec![
                    if i == 0 {
                        row.query_value.clone()
                    } else {
                        String::new()
                    },
                    sv,
                    ss,
                    fv,
                    fs,
                ]);
            }
        }
        t
    }
}

/// The paper's probed AV-pairs: `Make=Kia`, `Model=Bronco`, `Year=1985`.
const PROBES: &[(&str, &str)] = &[("Make", "Kia"), ("Model", "Bronco"), ("Year", "1985")];

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Table3Result {
    let full = CarDb::generate(scale.cardb(), seed);
    let small = full.random_sample(scale.size(25_000), seed.wrapping_add(1));

    // Train once per relation; probes share the mined models.
    let sys_small = train_cardb(&small);
    let sys_full = train_cardb(&full);

    let rows = PROBES
        .iter()
        .map(|&(attr_name, value)| {
            let attr = full.schema().attr_id(attr_name).expect("CarDB attr");
            let small_top = sys_small
                .model()
                .matrix(attr)
                .map(|m| m.top_similar(value, 3))
                .unwrap_or_default();
            let full_top = sys_full
                .model()
                .matrix(attr)
                .map(|m| m.top_similar(value, 3))
                .unwrap_or_default();
            Table3Row {
                query_value: format!("{attr_name}={value}"),
                small: small_top,
                full: full_top,
            }
        })
        .collect();

    Table3Result {
        small_size: small.len(),
        full_size: full.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Table3Result {
        run(Scale::with_divisor(50), 13)
    }

    #[test]
    fn probes_have_similar_values() {
        let r = result();
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert!(
                !row.full.is_empty(),
                "{} should have similar values on full data",
                row.query_value
            );
        }
    }

    #[test]
    fn similarities_descend_within_each_list() {
        let r = result();
        for row in &r.rows {
            for list in [&row.small, &row.full] {
                for w in list.windows(2) {
                    assert!(w[0].1 >= w[1].1 - 1e-12);
                }
            }
        }
    }

    #[test]
    fn year_1985_neighbors_are_adjacent_years() {
        // The paper's Table 3 shows 1986/1984/1987 as most similar to
        // 1985. Our generator's year-price-mileage correlation should
        // reproduce adjacency: every top-3 neighbor within ±4 years.
        let r = result();
        let year_row = r
            .rows
            .iter()
            .find(|row| row.query_value == "Year=1985")
            .unwrap();
        for (v, _) in &year_row.full {
            let y: i32 = v.parse().expect("year value");
            assert!((y - 1985).abs() <= 4, "unexpected year neighbor {y}");
        }
    }

    #[test]
    fn kia_neighbors_are_economy_makes() {
        // Kia should look like other budget makes (Hyundai etc.), not BMW.
        let r = result();
        let kia = r
            .rows
            .iter()
            .find(|row| row.query_value == "Make=Kia")
            .unwrap();
        assert!(
            !kia.full
                .iter()
                .any(|(v, _)| v == "BMW" || v == "Mercedes-Benz"),
            "luxury make among Kia's top-3: {:?}",
            kia.full
        );
    }

    #[test]
    fn render_produces_rows() {
        let r = result();
        assert!(r.render().len() >= 3);
    }
}
