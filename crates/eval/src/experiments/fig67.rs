//! **Figures 6 & 7 — Efficiency of GuidedRelax vs RandomRelax.**
//!
//! Protocol (Section 6.3): pick 10 random CarDB tuples; for each, extract
//! 20 tuples with similarity above `Tsim ∈ {0.5, 0.6, 0.7, 0.8, 0.9}`
//! and record `Work/RelevantTuple = |T_Extracted| / |T_Relevant|` — the
//! average number of tuples a user must look at per relevant answer.
//! Claim: GuidedRelax stays around ~4 tuples per relevant answer while
//! RandomRelax blows up into the hundreds at high thresholds.

use aimq::{EngineConfig, GuidedRelax, RandomRelax, RelaxationStrategy};
use aimq_catalog::ImpreciseQuery;
use aimq_data::CarDb;
use aimq_storage::{InMemoryWebDb, WebDatabase};

use crate::experiments::common::{pick_query_rows, train_cardb};
use crate::{Scale, TextTable};

/// Result of the Figure 6/7 run.
#[derive(Debug, Clone)]
pub struct Fig67Result {
    /// The `Tsim` sweep.
    pub thresholds: Vec<f64>,
    /// Average Work/RelevantTuple per threshold for GuidedRelax (Fig 6).
    pub guided: Vec<f64>,
    /// Average Work/RelevantTuple per threshold for RandomRelax (Fig 7).
    pub random: Vec<f64>,
    /// Queries per threshold that found no relevant tuple (excluded from
    /// the averages), per method.
    pub guided_misses: Vec<usize>,
    /// Same, for RandomRelax.
    pub random_misses: Vec<usize>,
    /// Number of query tuples.
    pub n_queries: usize,
}

impl Fig67Result {
    /// The paper's claim at a given threshold: Guided needs less work per
    /// relevant tuple than Random.
    pub fn guided_wins_at(&self, idx: usize) -> bool {
        self.guided[idx] <= self.random[idx]
    }

    /// Render both figures' series side by side.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            format!(
                "Figures 6 & 7: Work/RelevantTuple vs Tsim ({} queries)",
                self.n_queries
            ),
            &[
                "Tsim",
                "GuidedRelax (Fig 6)",
                "RandomRelax (Fig 7)",
                "guided misses",
                "random misses",
            ],
        );
        for (i, thr) in self.thresholds.iter().enumerate() {
            t.row(vec![
                format!("{thr:.1}"),
                format!("{:.1}", self.guided[i]),
                format!("{:.1}", self.random[i]),
                self.guided_misses[i].to_string(),
                self.random_misses[i].to_string(),
            ]);
        }
        t
    }
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Fig67Result {
    let relation = CarDb::generate(scale.cardb(), seed);
    let db = InMemoryWebDb::new(relation);
    let sample = db
        .relation()
        .random_sample(scale.size(25_000), seed.wrapping_add(1));
    let system = train_cardb(&sample);

    let n_queries = scale.count(10);
    let target = scale.count(20).max(5);
    // Relaxation queries only return enough candidates when the relation
    // is dense; scaled-down runs need deeper relaxation to reach the same
    // candidate density the paper's 100k CarDB provides.
    let max_relax_level = if scale.divisor() >= 8 { 5 } else { 3 };
    let query_rows = pick_query_rows(db.relation(), n_queries, seed.wrapping_add(2));
    let queries: Vec<ImpreciseQuery> = query_rows
        .iter()
        .map(|&row| ImpreciseQuery::from_tuple(&db.relation().tuple(row)).expect("non-null tuple"))
        .collect();

    let thresholds = vec![0.5, 0.6, 0.7, 0.8, 0.9];
    let mut guided = Vec::new();
    let mut random = Vec::new();
    let mut guided_misses = Vec::new();
    let mut random_misses = Vec::new();

    for &t_sim in &thresholds {
        let config = EngineConfig {
            t_sim,
            top_k: target,
            max_relax_level,
            max_base_tuples: 20,
            target_relevant: Some(target),
            max_steps_per_tuple: 300,
            ..EngineConfig::default()
        };

        let run_method = |strategy: &mut dyn RelaxationStrategy| -> (f64, usize) {
            let mut works = Vec::new();
            let mut misses = 0usize;
            for q in &queries {
                db.reset_stats();
                let result = system.answer_with_strategy(&db, q, &config, strategy);
                match result.stats.work_per_relevant() {
                    Some(w) => works.push(w),
                    None => misses += 1,
                }
            }
            let avg = if works.is_empty() {
                0.0
            } else {
                works.iter().sum::<f64>() / works.len() as f64
            };
            (avg, misses)
        };

        let mut g = GuidedRelax::new(system.ordering().clone());
        let (g_avg, g_miss) = run_method(&mut g);
        guided.push(g_avg);
        guided_misses.push(g_miss);

        let mut r = RandomRelax::new(seed.wrapping_add(7));
        let (r_avg, r_miss) = run_method(&mut r);
        random.push(r_avg);
        random_misses.push(r_miss);
    }

    Fig67Result {
        thresholds,
        guided,
        random,
        guided_misses,
        random_misses,
        n_queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig67Result {
        run(Scale::quick(), 19)
    }

    #[test]
    fn sweeps_the_paper_thresholds() {
        let r = result();
        assert_eq!(r.thresholds, vec![0.5, 0.6, 0.7, 0.8, 0.9]);
        assert_eq!(r.guided.len(), 5);
        assert_eq!(r.random.len(), 5);
    }

    #[test]
    fn guided_beats_random_overall() {
        // The headline of Figures 6 vs 7: averaged over the sweep, Guided
        // extracts fewer tuples per relevant answer.
        let r = result();
        let g: f64 = r.guided.iter().sum();
        let rd: f64 = r.random.iter().sum();
        assert!(
            g < rd,
            "guided total {g:.1} should be below random total {rd:.1}"
        );
    }

    #[test]
    fn work_values_are_at_least_one() {
        // You must extract at least one tuple per relevant tuple.
        let r = result();
        for (&g, &misses) in r.guided.iter().zip(&r.guided_misses) {
            if misses < r.n_queries {
                assert!(g >= 1.0, "work {g}");
            }
        }
    }

    #[test]
    fn render_has_a_row_per_threshold() {
        let r = result();
        assert_eq!(r.render().len(), 5);
    }
}
