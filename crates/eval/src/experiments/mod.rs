//! One runner per table/figure of the paper's evaluation section.
//!
//! Runners are deterministic functions of `(Scale, seed)`. They build the
//! synthetic corpora, train the systems under test and return typed
//! results with a `render()` producing the same rows/series the paper
//! reports. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record.

pub mod ablation;
pub mod cache;
pub mod common;
pub mod faults;
pub mod federation;
pub mod feedback;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig67;
pub mod fig8;
pub mod fig9;
pub mod postings;
pub mod serve;
pub mod table2;
pub mod table3;
