//! **Probe economy — redundant-probe elimination on a CarDB query log.**
//!
//! Not a figure of the paper, but the paper's costing premise made
//! measurable: AIMQ's whole design brief is answering imprecise queries
//! over *autonomous* sources where every probe is a metered network
//! round-trip. Redundant probes arise at two grains:
//!
//! - **within one engine call** — Algorithm 1 re-issues the same relaxed
//!   query once per base tuple that relaxes into it (dense base sets
//!   share bucketed tuple queries, so their relaxation plans collide);
//! - **across the workload** — imprecise queries are popular by nature
//!   (the paper's motivating user wants "a Camry around $10,000", and so
//!   does the next user), so a query log repeats logical queries and
//!   near-duplicates whose probe plans overlap.
//!
//! The workload here is a query log: `n_queries` distinct imprecise
//! queries drawn from CarDB rows, the whole log issued [`REPEATS`]
//! times round-robin. Each profile replays it in three configurations:
//!
//! 1. **baseline** — the seed engine: per-call dedup off, no cache;
//!    every planned probe reaches the source.
//! 2. **dedup** — the probe planner canonicalizes the (base tuple ×
//!    relaxation step) plan and issues each distinct relaxed query once
//!    per engine call.
//! 3. **dedup+cache** — additionally, a [`aimq_storage::CachedWebDb`]
//!    memoizes pages *across* engine calls, outermost on the resilience
//!    stack so hits cost no probe budget, no breaker state and no
//!    fault-schedule ordinal.
//!
//! Headline claim (ISSUE 3 acceptance): on the fault-free profile the
//! cached configuration issues **≥ 40% fewer** source queries than the
//! baseline while returning byte-identical top-k answers and an
//! identical [`aimq::DegradationReport`] per call against the dedup
//! run. Under `flaky`/`hostile` the cross-call identity claim is
//! structurally out of reach — serving a hit skips a fault-schedule
//! ordinal and thereby shifts every later probe's fate — so there the
//! runner reports the reduction and the identity columns as observed;
//! the per-call identity guarantee for all profiles is property-tested
//! in `tests/probe_cache.rs`.

use aimq::{AnswerSet, EngineConfig};
use aimq_catalog::ImpreciseQuery;
use aimq_data::CarDb;
use aimq_storage::{
    CachedWebDb, FaultInjectingWebDb, FaultProfile, InMemoryWebDb, Relation, ResilientWebDb,
    RetryPolicy, WebDatabase,
};

use crate::experiments::common::{pick_query_rows, train_cardb};
use crate::{Scale, TextTable};

/// How many times the query log is replayed (first pass populates the
/// cache, later passes are the popular-query traffic it serves).
pub const REPEATS: usize = 2;

/// Probe counts and identity checks for one fault profile.
#[derive(Debug, Clone)]
pub struct CacheOutcome {
    /// Profile name (`none`, `flaky`, `hostile`).
    pub profile: String,
    /// Source queries issued by the seed-equivalent engine (no dedup,
    /// no cache) over the whole log.
    pub baseline_issued: u64,
    /// Source queries issued with per-call probe-plan dedup only.
    pub dedup_issued: u64,
    /// Source queries issued with dedup plus the cross-call cache.
    pub cached_issued: u64,
    /// Cache hits recorded by the memoizing layer.
    pub cache_hits: u64,
    /// Probes replayed by the per-call planner memo over the dedup run.
    pub probes_deduped: u64,
    /// `1 − cached/baseline`: the fraction of the seed engine's probes
    /// the full stack eliminated.
    pub reduction: f64,
    /// Whether the cached run's ranked top-k matched the baseline's on
    /// every log entry (guaranteed only for `none`; see module docs).
    pub top_k_identical: bool,
    /// Whether the cached run's full fingerprint (ranked answers with
    /// similarity bits + degradation report) matched the dedup run's on
    /// every log entry.
    pub fingerprint_identical: bool,
}

/// Result of the probe-economy run.
#[derive(Debug, Clone)]
pub struct CacheResult {
    /// One outcome per profile, in `none`/`flaky`/`hostile` order.
    pub outcomes: Vec<CacheOutcome>,
    /// Number of distinct workload queries.
    pub n_queries: usize,
    /// Total engine calls per configuration (`n_queries × REPEATS`).
    pub n_issues: usize,
}

impl CacheResult {
    /// The outcome for a named profile.
    pub fn outcome(&self, profile: &str) -> Option<&CacheOutcome> {
        self.outcomes.iter().find(|o| o.profile == profile)
    }

    /// Render the matrix.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            format!(
                "Probe economy: source queries issued per configuration \
                 ({} distinct queries x {} passes)",
                self.n_queries, REPEATS
            ),
            &[
                "profile",
                "baseline",
                "dedup",
                "dedup+cache",
                "hits",
                "deduped",
                "reduction",
                "top-k ==",
                "fingerprint ==",
            ],
        );
        for o in &self.outcomes {
            t.row(vec![
                o.profile.clone(),
                o.baseline_issued.to_string(),
                o.dedup_issued.to_string(),
                o.cached_issued.to_string(),
                o.cache_hits.to_string(),
                o.probes_deduped.to_string(),
                format!("{:.1}%", o.reduction * 100.0),
                o.top_k_identical.to_string(),
                o.fingerprint_identical.to_string(),
            ]);
        }
        t
    }
}

/// Byte-comparable fingerprint of one engine call: degradation report
/// plus the ranked answers with their similarity bit patterns.
fn fingerprint(result: &AnswerSet) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{:?}", result.degradation);
    for a in &result.answers {
        // aimq-lint: allow(result-discipline) -- fmt::Write to a String is infallible
        let _ = write!(out, " | {:?}@{:016x}", a.tuple, a.similarity.to_bits());
    }
    out
}

/// Ranked top-k tuples only (no degradation, no similarity bits).
fn ranked_tuples(result: &AnswerSet) -> Vec<String> {
    result
        .answers
        .iter()
        .map(|a| format!("{:?}", a.tuple))
        .collect()
}

/// The resilience stack every configuration answers through.
fn stack(
    relation: &Relation,
    profile: FaultProfile,
    seed: u64,
) -> ResilientWebDb<FaultInjectingWebDb<InMemoryWebDb>> {
    ResilientWebDb::new(
        FaultInjectingWebDb::new(InMemoryWebDb::new(relation.clone()), profile, seed),
        RetryPolicy::default(),
    )
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> CacheResult {
    let relation = CarDb::generate(scale.cardb(), seed);
    let sample = relation.random_sample(scale.size(25_000), seed.wrapping_add(1));
    let system = train_cardb(&sample);

    let n_queries = scale.count(10);
    let query_rows = pick_query_rows(&relation, n_queries, seed.wrapping_add(2));
    let queries: Vec<ImpreciseQuery> = query_rows
        .iter()
        .map(|&row| ImpreciseQuery::from_tuple(&relation.tuple(row)).expect("non-null tuple"))
        .collect();
    // The query log: every distinct query, REPEATS passes, round-robin —
    // so a repeat is separated from its first arrival by the whole log,
    // exercising retention rather than just adjacent-call locality.
    let log: Vec<&ImpreciseQuery> = (0..REPEATS).flat_map(|_| queries.iter()).collect();

    let dedup_config = EngineConfig {
        t_sim: 0.5,
        top_k: 10,
        ..EngineConfig::default()
    };
    let baseline_config = EngineConfig {
        dedup_probes: false,
        ..dedup_config
    };

    let mut outcomes = Vec::new();
    for profile_name in ["none", "flaky", "hostile"] {
        let profile = FaultProfile::by_name(profile_name).expect("built-in profile");

        // 1. Seed-equivalent engine: every planned probe is issued.
        let db = stack(&relation, profile, seed);
        let baseline_runs: Vec<AnswerSet> = log
            .iter()
            .map(|q| system.answer(&db, q, &baseline_config))
            .collect();
        let baseline_issued = db.stats().queries_issued;

        // 2. Per-call probe-plan dedup.
        let db = stack(&relation, profile, seed);
        let dedup_runs: Vec<AnswerSet> = log
            .iter()
            .map(|q| system.answer(&db, q, &dedup_config))
            .collect();
        let dedup_issued = db.stats().queries_issued;

        // 3. Dedup plus the cross-call memoizing cache, outermost.
        let db = CachedWebDb::with_default_capacity(stack(&relation, profile, seed));
        let cached_runs: Vec<AnswerSet> = log
            .iter()
            .map(|q| system.answer(&db, q, &dedup_config))
            .collect();
        let cached_stats = db.stats();

        outcomes.push(CacheOutcome {
            profile: profile_name.to_owned(),
            baseline_issued,
            dedup_issued,
            cached_issued: cached_stats.queries_issued,
            cache_hits: cached_stats.cache_hits,
            probes_deduped: dedup_runs
                .iter()
                .map(|r| r.degradation.probes_deduped)
                .sum(),
            reduction: if baseline_issued == 0 {
                0.0
            } else {
                1.0 - cached_stats.queries_issued as f64 / baseline_issued as f64
            },
            top_k_identical: baseline_runs
                .iter()
                .zip(&cached_runs)
                .all(|(a, c)| ranked_tuples(a) == ranked_tuples(c)),
            fingerprint_identical: dedup_runs
                .iter()
                .zip(&cached_runs)
                .all(|(d, c)| fingerprint(d) == fingerprint(c)),
        });
    }

    CacheResult {
        outcomes,
        n_queries,
        n_issues: log.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> CacheResult {
        run(Scale::quick(), 23)
    }

    #[test]
    fn fault_free_reduction_meets_the_forty_percent_floor() {
        let r = result();
        let none = r.outcome("none").unwrap();
        assert!(
            none.reduction >= 0.4,
            "cache+dedup cut only {:.1}% of {} baseline probes",
            none.reduction * 100.0,
            none.baseline_issued
        );
    }

    #[test]
    fn fault_free_answers_are_byte_identical_across_configurations() {
        let r = result();
        let none = r.outcome("none").unwrap();
        assert!(none.top_k_identical, "{none:?}");
        assert!(none.fingerprint_identical, "{none:?}");
    }

    #[test]
    fn probe_counts_only_ever_shrink() {
        // The cache serves a strict subset of the probe stream under
        // every profile; within the deterministic profile, the per-call
        // memo too can only remove issues.
        let r = result();
        for o in &r.outcomes {
            assert!(o.cached_issued <= o.baseline_issued, "{o:?}");
        }
        let none = r.outcome("none").unwrap();
        assert!(
            none.cached_issued <= none.dedup_issued && none.dedup_issued <= none.baseline_issued,
            "{none:?}"
        );
    }

    #[test]
    fn the_cache_actually_hits_across_calls() {
        let r = result();
        for o in &r.outcomes {
            assert!(o.cache_hits > 0, "{o:?}");
        }
    }

    #[test]
    fn same_seed_reruns_are_identical() {
        let a = result();
        let b = result();
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn render_has_a_row_per_profile() {
        assert_eq!(result().render().len(), 3);
    }
}
