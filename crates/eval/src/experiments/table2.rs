//! **Table 2 — Offline computation time.**
//!
//! The paper reports the offline cost of AIMQ (supertuple generation,
//! similarity estimation) against ROCK (link computation, initial
//! clustering on a 2k sub-sample, labeling of the rest) on CarDB-25k and
//! CensusDB-45k. Claim: AIMQ's total preprocessing is far cheaper because
//! its cost scales with the number of AV-pairs, not `O(n³)` in the number
//! of tuples.

use std::time::{Duration, Instant};

use aimq_afd::EncodedRelation;
use aimq_catalog::Domain;
use aimq_data::{CarDb, CensusDb};
use aimq_rock::{RockConfig, RockModel};
use aimq_sim::build_supertuples;
use aimq_storage::Relation;

use crate::experiments::common::{cardb_buckets, census_buckets, train_cardb, train_census};
use crate::{Scale, TextTable};

/// Offline timings for one dataset.
#[derive(Debug, Clone, Copy, Default)]
pub struct OfflineTimings {
    /// AIMQ: one pass building every categorical attribute's supertuples.
    pub supertuple_generation: Duration,
    /// AIMQ: full similarity-model construction (includes the pairwise
    /// Jaccard estimation the paper calls "Similarity Estimation").
    pub similarity_estimation: Duration,
    /// ROCK: neighbor + link computation over the clustering sample.
    pub rock_links: Duration,
    /// ROCK: agglomerative clustering of the sample.
    pub rock_clustering: Duration,
    /// ROCK: labeling the remaining tuples.
    pub rock_labeling: Duration,
}

impl OfflineTimings {
    /// Total AIMQ preprocessing time.
    pub fn aimq_total(&self) -> Duration {
        self.supertuple_generation + self.similarity_estimation
    }

    /// Total ROCK preprocessing time.
    pub fn rock_total(&self) -> Duration {
        self.rock_links + self.rock_clustering + self.rock_labeling
    }
}

/// Result of the Table 2 run.
#[derive(Debug, Clone, Copy)]
pub struct Table2Result {
    /// CarDB timings (paper: 25k tuples).
    pub cardb: OfflineTimings,
    /// CensusDB timings (paper: 45k tuples).
    pub census: OfflineTimings,
    /// Actual CarDB size used.
    pub cardb_size: usize,
    /// Actual CensusDB size used.
    pub census_size: usize,
    /// ROCK clustering-sample size (paper: 2k).
    pub rock_sample: usize,
}

impl Table2Result {
    /// The paper's claim on both datasets.
    pub fn aimq_cheaper(&self) -> bool {
        self.cardb.aimq_total() < self.cardb.rock_total()
            && self.census.aimq_total() < self.census.rock_total()
    }

    /// Render in the paper's layout (phases × datasets).
    pub fn render(&self) -> TextTable {
        let secs = |d: Duration| format!("{:.2}s", d.as_secs_f64());
        let mut t = TextTable::new(
            format!(
                "Table 2: offline computation time (CarDB {}k, CensusDB {}k; ROCK sample {})",
                self.cardb_size / 1000,
                self.census_size / 1000,
                self.rock_sample
            ),
            &["Phase", "CarDB", "CensusDB"],
        );
        t.row(vec![
            "AIMQ: SuperTuple Generation".into(),
            secs(self.cardb.supertuple_generation),
            secs(self.census.supertuple_generation),
        ]);
        t.row(vec![
            "AIMQ: Similarity Estimation".into(),
            secs(self.cardb.similarity_estimation),
            secs(self.census.similarity_estimation),
        ]);
        t.row(vec![
            "ROCK: Link Computation".into(),
            secs(self.cardb.rock_links),
            secs(self.census.rock_links),
        ]);
        t.row(vec![
            "ROCK: Initial Clustering".into(),
            secs(self.cardb.rock_clustering),
            secs(self.census.rock_clustering),
        ]);
        t.row(vec![
            "ROCK: Data Labeling".into(),
            secs(self.cardb.rock_labeling),
            secs(self.census.rock_labeling),
        ]);
        t.row(vec![
            "TOTAL AIMQ / ROCK".into(),
            format!(
                "{} / {}",
                secs(self.cardb.aimq_total()),
                secs(self.cardb.rock_total())
            ),
            format!(
                "{} / {}",
                secs(self.census.aimq_total()),
                secs(self.census.rock_total())
            ),
        ]);
        t
    }
}

fn time_dataset(
    relation: &Relation,
    buckets: aimq_afd::BucketConfig,
    train: impl Fn(&Relation) -> aimq::AimqSystem,
    rock_sample: usize,
    rock_theta: f64,
    seed: u64,
) -> OfflineTimings {
    // Supertuple generation, timed in isolation (the paper reports it as
    // its own phase).
    let enc = EncodedRelation::encode(relation, &buckets);
    let t0 = Instant::now();
    for attr in relation.schema().attr_ids() {
        if relation.schema().domain(attr) == Domain::Categorical {
            let _ = build_supertuples(&enc, attr); // aimq-lint: allow(result-discipline) -- timing loop measures generation cost; the structures are rebuilt for real below
        }
    }
    let supertuple_generation = t0.elapsed();

    // Full similarity estimation (model build; includes a second
    // supertuple pass plus the pairwise Jaccard matrix).
    let t1 = Instant::now();
    let _system = train(relation);
    let similarity_estimation = t1.elapsed();

    let rock = RockModel::fit(
        &enc,
        RockConfig {
            theta: rock_theta,
            target_clusters: 25,
            sample_size: rock_sample,
            seed,
            min_cluster_size: 1,
        },
    );
    let rt = rock.timings();

    OfflineTimings {
        supertuple_generation,
        similarity_estimation,
        rock_links: rt.link_computation,
        rock_clustering: rt.initial_clustering,
        rock_labeling: rt.data_labeling,
    }
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Table2Result {
    let cardb = CarDb::generate(scale.size(25_000), seed);
    let (census, _classes) = CensusDb::generate(scale.censusdb(), seed.wrapping_add(1));
    let rock_sample = scale.size(2_000);

    let cardb_timings = time_dataset(
        &cardb,
        cardb_buckets(cardb.schema()),
        train_cardb,
        rock_sample,
        0.22,
        seed,
    );
    let census_timings = time_dataset(
        &census,
        census_buckets(census.schema()),
        train_census,
        rock_sample,
        0.45,
        seed,
    );

    Table2Result {
        cardb: cardb_timings,
        census: census_timings,
        cardb_size: cardb.len(),
        census_size: census.len(),
        rock_sample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Table2Result {
        run(Scale::with_divisor(100), 31)
    }

    #[test]
    fn all_phases_complete() {
        let r = result();
        // Phases finish and totals compose.
        assert!(r.cardb.aimq_total() >= r.cardb.supertuple_generation);
        assert!(r.census.rock_total() >= r.census.rock_links);
    }

    #[test]
    fn render_has_six_rows() {
        assert_eq!(result().render().len(), 6);
    }
}
