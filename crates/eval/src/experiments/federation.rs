//! **Federation — recall vs number of failed sources.**
//!
//! The paper's title says autonomous web data*bases*; this runner makes
//! the reproduction serve several of them at once. CarDB is sharded into
//! [`N_SOURCES`] simulated sources (2-way replicated fragments, each
//! source behind its own fault-injection → retry/breaker → cache stack)
//! and the same workload is replayed while an increasing number of
//! sources runs the `hostile` profile ([`FAILED_LADDER`], failing
//! sources spread so no two adjacent members die together).
//!
//! The reference is the *fault-free federated* run — same shard
//! geometry, all members benign — which by the merge-determinism
//! contract equals the single-source answer byte for byte (pinned by
//! `tests/federation.rs`). The robustness claims mirrored here:
//!
//! * with 2 of 8 sources hostile, top-k recall stays ≥ 0.9 and no
//!   query degrades to `Empty` — overlap and hedged probes cover the
//!   failing members' fragments;
//! * the loss that does occur is *reported*: failed probes, truncated
//!   merges and fired hedges show up in the per-source breakdown of
//!   each answer's [`aimq::DegradationReport`], never silently.

use aimq::{AnswerSet, Completeness, EngineConfig};
use aimq_catalog::ImpreciseQuery;
use aimq_data::CarDb;
use aimq_storage::{FaultProfile, FederatedWebDb, FederationPolicy, SourceSpec};

use crate::experiments::common::{pick_query_rows, train_cardb};
use crate::{Scale, TextTable};

/// Member sources the relation is sharded into.
pub const N_SOURCES: usize = 8;

/// Replication factor: each fragment lives on this many members.
pub const REPLICATION: usize = 2;

/// Numbers of hostile sources per rung.
pub const FAILED_LADDER: &[usize] = &[0, 1, 2, 4];

/// Outcome of one rung (a fixed number of hostile sources).
#[derive(Debug, Clone)]
pub struct FederationRung {
    /// Members running the `hostile` profile.
    pub failed_sources: usize,
    /// Mean top-k recall against the fault-free federated run.
    pub recall: f64,
    /// Queries answered with [`Completeness::Full`].
    pub full: usize,
    /// Queries answered with [`Completeness::Partial`].
    pub partial: usize,
    /// Queries answered with [`Completeness::Empty`].
    pub empty: usize,
    /// Member probes that failed post-resilience, summed over the
    /// workload's per-source breakdowns.
    pub probes_failed: u64,
    /// Hedged probes fired to mirror sources.
    pub hedges_fired: u64,
    /// Hedged probes whose mirror returned a page.
    pub hedges_won: u64,
    /// Distinct tuples merged into answers, summed over sources.
    pub tuples_contributed: u64,
}

/// Result of the federation experiment.
#[derive(Debug, Clone)]
pub struct FederationResult {
    /// One rung per entry of [`FAILED_LADDER`].
    pub rungs: Vec<FederationRung>,
    /// Number of workload queries.
    pub n_queries: usize,
    /// Member sources in the federation.
    pub n_sources: usize,
}

impl FederationResult {
    /// The rung with `failed` hostile sources.
    pub fn rung(&self, failed: usize) -> Option<&FederationRung> {
        self.rungs.iter().find(|r| r.failed_sources == failed)
    }

    /// Render the ladder.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            format!(
                "Federation: recall vs failed sources ({} of {} sources hostile, \
                 {}-way replication, {} queries)",
                FAILED_LADDER.last().copied().unwrap_or(0),
                self.n_sources,
                REPLICATION,
                self.n_queries
            ),
            &[
                "failed",
                "recall",
                "full/partial/empty",
                "probes failed",
                "hedges won/fired",
                "contributed",
            ],
        );
        for r in &self.rungs {
            t.row(vec![
                r.failed_sources.to_string(),
                format!("{:.3}", r.recall),
                format!("{}/{}/{}", r.full, r.partial, r.empty),
                r.probes_failed.to_string(),
                format!("{}/{}", r.hedges_won, r.hedges_fired),
                r.tuples_contributed.to_string(),
            ]);
        }
        t
    }
}

/// Indices of the `failed` hostile members, spread around the ring so no
/// two adjacent members (a fragment and its only replica) die together
/// while `failed <= n / replication`.
pub fn failed_indices(failed: usize, n: usize) -> Vec<usize> {
    (0..failed.min(n)).map(|j| j * n / failed.max(1)).collect()
}

/// Source specs for one rung: `failed` hostile members among `n`.
fn rung_specs(failed: usize, n: usize, seed: u64) -> Vec<SourceSpec> {
    let hostile = failed_indices(failed, n);
    (0..n)
        .map(|i| SourceSpec {
            profile: if hostile.contains(&i) {
                FaultProfile::hostile()
            } else {
                FaultProfile::none()
            },
            fault_seed: seed.wrapping_add(i as u64),
            ..SourceSpec::benign(format!("s{i}"))
        })
        .collect()
}

/// Answer keys of a run's top-k, order-insensitive.
fn answer_keys(result: &AnswerSet) -> Vec<String> {
    let mut keys: Vec<String> = result
        .answers
        .iter()
        .map(|a| format!("{:?}", a.tuple))
        .collect();
    keys.sort();
    keys
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> FederationResult {
    let relation = CarDb::generate(scale.cardb(), seed);
    let sample = relation.random_sample(scale.size(25_000), seed.wrapping_add(1));
    let system = train_cardb(&sample);

    let n_queries = scale.count(10);
    let query_rows = pick_query_rows(&relation, n_queries, seed.wrapping_add(2));
    let queries: Vec<ImpreciseQuery> = query_rows
        .iter()
        .map(|&row| ImpreciseQuery::from_tuple(&relation.tuple(row)).expect("non-null tuple"))
        .collect();
    let config = EngineConfig {
        t_sim: 0.5,
        top_k: 10,
        ..EngineConfig::default()
    };

    // The fault-free federated reference: same shard geometry, all
    // members benign.
    let reference: Vec<Vec<String>> = {
        let fed = FederatedWebDb::shard(
            &relation,
            &rung_specs(0, N_SOURCES, seed),
            REPLICATION,
            FederationPolicy::default(),
        )
        .expect("non-empty federation");
        queries
            .iter()
            .map(|q| answer_keys(&system.answer(&fed, q, &config)))
            .collect()
    };

    let mut rungs = Vec::new();
    for &failed in FAILED_LADDER {
        let fed = FederatedWebDb::shard(
            &relation,
            &rung_specs(failed, N_SOURCES, seed),
            REPLICATION,
            FederationPolicy::default(),
        )
        .expect("non-empty federation");

        let mut rung = FederationRung {
            failed_sources: failed,
            recall: 0.0,
            full: 0,
            partial: 0,
            empty: 0,
            probes_failed: 0,
            hedges_fired: 0,
            hedges_won: 0,
            tuples_contributed: 0,
        };
        let mut recalls = Vec::new();
        for (q, expected) in queries.iter().zip(&reference) {
            let result = system.answer(&fed, q, &config);
            let d = &result.degradation;
            match d.completeness {
                Completeness::Full => rung.full += 1,
                Completeness::Partial => rung.partial += 1,
                Completeness::Empty => rung.empty += 1,
            }
            for source in &d.sources {
                rung.probes_failed += source.probes_failed;
                rung.hedges_fired += source.hedges_fired;
                rung.hedges_won += source.hedges_won;
                rung.tuples_contributed += source.tuples_contributed;
            }
            if !expected.is_empty() {
                let got = answer_keys(&result);
                let hit = expected.iter().filter(|k| got.contains(k)).count();
                recalls.push(hit as f64 / expected.len() as f64);
            }
        }
        rung.recall = if recalls.is_empty() {
            1.0
        } else {
            recalls.iter().sum::<f64>() / recalls.len() as f64
        };
        rungs.push(rung);
    }

    FederationResult {
        rungs,
        n_queries,
        n_sources: N_SOURCES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> FederationResult {
        run(Scale::quick(), 23)
    }

    #[test]
    fn failed_indices_are_spread_never_adjacent_at_half_replication() {
        for failed in [1usize, 2, 4] {
            let idx = failed_indices(failed, N_SOURCES);
            assert_eq!(idx.len(), failed);
            for pair in idx.windows(2) {
                assert!(
                    pair[1] - pair[0] >= 2,
                    "adjacent hostile members {pair:?} would kill a fragment \
                     and its only replica"
                );
            }
        }
    }

    #[test]
    fn fault_free_rung_is_a_perfect_baseline() {
        let r = result();
        let clean = r.rung(0).unwrap();
        assert!((clean.recall - 1.0).abs() < 1e-12);
        assert_eq!(clean.partial + clean.empty, 0);
        assert_eq!(clean.probes_failed, 0);
        assert!(clean.tuples_contributed > 0);
    }

    #[test]
    fn two_hostile_sources_stay_partial_never_empty_with_recall_090() {
        let r = result();
        let rung = r.rung(2).unwrap();
        assert_eq!(rung.empty, 0, "quorum + overlap must prevent Empty");
        assert!(
            rung.recall >= 0.9,
            "recall {:.3} below the 0.9 floor with 2/8 hostile",
            rung.recall
        );
    }

    #[test]
    fn degraded_rungs_report_their_damage_per_source() {
        let r = result();
        for rung in &r.rungs {
            if rung.recall < 1.0 || rung.partial > 0 {
                assert!(
                    rung.probes_failed > 0 || rung.partial > 0,
                    "loss with no per-source evidence: {rung:?}"
                );
            }
        }
        // Hostile members fail probes; every failure fires a hedge at
        // its mirror, and those hedges must be counted.
        let worst = r.rung(4).unwrap();
        if worst.probes_failed > 0 {
            assert!(worst.hedges_fired >= worst.probes_failed);
            assert!(worst.hedges_won <= worst.hedges_fired);
        }
    }

    #[test]
    fn same_seed_reruns_are_identical() {
        let a = result();
        let b = result();
        for (x, y) in a.rungs.iter().zip(&b.rungs) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn render_has_a_row_per_rung() {
        let r = result();
        assert_eq!(r.render().len(), FAILED_LADDER.len());
    }
}
