//! **Figure 8 — User study: average MRR over CarDB.**
//!
//! The paper gave 14 queries × 10 ranked answers from each of
//! GuidedRelax, RandomRelax and ROCK to 8 graduate students, who
//! re-ranked them by perceived relevance (0 = irrelevant), and compared
//! systems by the *redefined MRR*
//! `MRR(Q) = Avg(1 / (|UserRank(t_i) − SystemRank(t_i)| + 1))`.
//! Claim: GuidedRelax > RandomRelax and ROCK.
//!
//! We simulate the judges with the CarDB generator's latent oracle plus
//! per-user noise (see [`crate::SimulatedUser`]); the oracle reads latent
//! segment information that none of the three systems ever sees.

use aimq::{EngineConfig, GuidedRelax, RandomRelax};
use aimq_afd::EncodedRelation;
use aimq_catalog::{ImpreciseQuery, Tuple};
use aimq_data::{car_oracle_similarity, CarDb};
use aimq_rock::{RockConfig, RockModel};
use aimq_storage::{InMemoryWebDb, RowId};

use crate::experiments::common::{
    cardb_buckets, pick_query_rows, train_cardb, train_cardb_uniform,
};
use crate::{redefined_mrr, simulate_user_ranks, Scale, SimulatedUser, TextTable};

/// Result of the Figure 8 run.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Average MRR of AFD-guided relaxation with mined importance.
    pub guided_mrr: f64,
    /// Average MRR of random relaxation with uniform importance.
    pub random_mrr: f64,
    /// Average MRR of the ROCK-based answerer.
    pub rock_mrr: f64,
    /// Average ground-truth (oracle) relevance of each method's answers —
    /// the substance behind the paper's conclusion that GuidedRelax
    /// "is able to extract more relevant answers than RandomRelax and
    /// ROCK". The redefined MRR additionally measures rank agreement,
    /// which is noisy when all ten answers are near-ties.
    pub guided_quality: f64,
    /// Same, for RandomRelax.
    pub random_quality: f64,
    /// Same, for ROCK.
    pub rock_quality: f64,
    /// Queries in the workload (paper: 14).
    pub n_queries: usize,
    /// Simulated judges (paper: 8).
    pub n_users: usize,
}

impl Fig8Result {
    /// The paper's headline ordering under the redefined MRR.
    pub fn guided_wins(&self) -> bool {
        self.guided_mrr > self.random_mrr && self.guided_mrr > self.rock_mrr
    }

    /// The paper's substantive claim: guided relaxation extracts more
    /// relevant answers than either baseline (judged by the latent
    /// oracle the simulated users rank by).
    pub fn guided_extracts_most_relevant(&self) -> bool {
        self.guided_quality > self.random_quality && self.guided_quality > self.rock_quality
    }

    /// Render the figure's three bars.
    pub fn render(&self) -> TextTable {
        let mut t = TextTable::new(
            format!(
                "Figure 8: average MRR over CarDB ({} queries, {} simulated users)",
                self.n_queries, self.n_users
            ),
            &["Method", "Average MRR"],
        );
        t.row(vec![
            "GuidedRelax".into(),
            format!("{:.3}", self.guided_mrr),
        ]);
        t.row(vec![
            "RandomRelax".into(),
            format!("{:.3}", self.random_mrr),
        ]);
        t.row(vec!["ROCK".into(), format!("{:.3}", self.rock_mrr)]);
        t
    }

    /// Render the supplementary answer-quality comparison.
    pub fn render_quality(&self) -> TextTable {
        let mut t = TextTable::new(
            "Supplement: average ground-truth relevance of returned answers",
            &["Method", "Oracle relevance"],
        );
        t.row(vec![
            "GuidedRelax".into(),
            format!("{:.3}", self.guided_quality),
        ]);
        t.row(vec![
            "RandomRelax".into(),
            format!("{:.3}", self.random_quality),
        ]);
        t.row(vec!["ROCK".into(), format!("{:.3}", self.rock_quality)]);
        t
    }
}

/// Average the redefined MRR of an answer list over the user panel.
fn panel_mrr(
    users: &[SimulatedUser],
    schema: &aimq_catalog::Schema,
    query: &Tuple,
    answers: &[Tuple],
) -> f64 {
    if answers.is_empty() {
        return 0.0;
    }
    let total: f64 = users
        .iter()
        .map(|u| {
            let ranks = simulate_user_ranks(u, schema, query, answers, &car_oracle_similarity);
            redefined_mrr(&ranks)
        })
        .sum();
    total / users.len() as f64
}

/// Run the experiment.
pub fn run(scale: Scale, seed: u64) -> Fig8Result {
    let relation = CarDb::generate(scale.cardb(), seed);
    let schema = relation.schema().clone();
    let db = InMemoryWebDb::new(relation);

    // Training: the paper used the 25k sample for the importance weights
    // and value similarities of both relaxation methods.
    let sample = db
        .relation()
        .random_sample(scale.size(25_000), seed.wrapping_add(1));
    let guided_system = train_cardb(&sample);
    let uniform_system = train_cardb_uniform(&sample);

    // ROCK on the full relation (cluster a 2k-scale sample, label the
    // rest).
    let enc = EncodedRelation::encode(db.relation(), &cardb_buckets(&schema));
    let rock = RockModel::fit(
        &enc,
        RockConfig {
            theta: 0.22,
            target_clusters: 30,
            sample_size: scale.size(2_000),
            seed: seed.wrapping_add(2),
            min_cluster_size: 1,
        },
    );

    // At least 8 queries even in throttled runs: the MRR average over
    // 3 queries is too noisy to compare methods.
    let n_queries = std::env::var("AIMQ_FIG8_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| scale.count(14).max(8));
    let users = SimulatedUser::panel(8, seed.wrapping_add(3));
    let query_rows = pick_query_rows(db.relation(), n_queries, seed.wrapping_add(4));

    // Equal, modest extraction budget per method: each may stop as soon
    // as 20 tuples clear its own Tsim filter, then shows its best 10 —
    // the paper's protocol of identifying "10 most similar tuples" per
    // system under comparable effort.
    let config = EngineConfig {
        t_sim: 0.4,
        top_k: 10,
        max_relax_level: 3,
        max_base_tuples: 10,
        target_relevant: Some(20),
        max_steps_per_tuple: 256,
        ..EngineConfig::default()
    };

    let mut guided_total = 0.0;
    let mut random_total = 0.0;
    let mut rock_total = 0.0;
    let mut guided_quality = 0.0;
    let mut random_quality = 0.0;
    let mut rock_quality = 0.0;

    let quality_of = |query: &Tuple, answers: &[Tuple]| -> f64 {
        if answers.is_empty() {
            return 0.0;
        }
        answers
            .iter()
            .map(|t| car_oracle_similarity(&schema, query, t))
            .sum::<f64>()
            / answers.len() as f64
    };

    for &row in &query_rows {
        let query_tuple = db.relation().tuple(row);
        let query = ImpreciseQuery::from_tuple(&query_tuple).expect("non-null tuple");

        let answers_of = |result: aimq::AnswerSet| -> Vec<Tuple> {
            result
                .answers
                .into_iter()
                .map(|a| a.tuple)
                .filter(|t| *t != query_tuple)
                .take(10)
                .collect()
        };

        let mut g_strategy = GuidedRelax::new(guided_system.ordering().clone());
        let guided_answers =
            answers_of(guided_system.answer_with_strategy(&db, &query, &config, &mut g_strategy));

        let mut r_strategy = RandomRelax::new(seed.wrapping_add(row as u64));
        let random_answers =
            answers_of(uniform_system.answer_with_strategy(&db, &query, &config, &mut r_strategy));

        let rock_answers: Vec<Tuple> = rock
            .answer(row as RowId, 10)
            .into_iter()
            .map(|(r, _)| db.relation().tuple(r))
            .collect();

        guided_total += panel_mrr(&users, &schema, &query_tuple, &guided_answers);
        random_total += panel_mrr(&users, &schema, &query_tuple, &random_answers);
        rock_total += panel_mrr(&users, &schema, &query_tuple, &rock_answers);
        guided_quality += quality_of(&query_tuple, &guided_answers);
        random_quality += quality_of(&query_tuple, &random_answers);
        rock_quality += quality_of(&query_tuple, &rock_answers);
    }

    let n = query_rows.len() as f64;
    Fig8Result {
        guided_mrr: guided_total / n,
        random_mrr: random_total / n,
        rock_mrr: rock_total / n,
        guided_quality: guided_quality / n,
        random_quality: random_quality / n,
        rock_quality: rock_quality / n,
        n_queries: query_rows.len(),
        n_users: users.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig8Result {
        run(Scale::quick(), 23)
    }

    #[test]
    fn all_methods_produce_positive_mrr() {
        let r = result();
        assert!(r.guided_mrr > 0.0, "guided {r:?}");
        assert!(r.random_mrr > 0.0, "random {r:?}");
        // ROCK may legitimately be low but should usually find something.
        assert!(r.rock_mrr >= 0.0);
    }

    #[test]
    fn guided_extracts_the_most_relevant_answers() {
        // The paper's substantive conclusion: guided relaxation finds
        // more relevant answers (while examining fewer tuples). On dense
        // synthetic data the redefined MRR is a near-tie between Guided
        // and Random (see EXPERIMENTS.md), so the oracle-quality ordering
        // is the robust check.
        let r = result();
        assert!(
            r.guided_extracts_most_relevant(),
            "guided {:.3} vs random {:.3} vs rock {:.3}",
            r.guided_quality,
            r.random_quality,
            r.rock_quality
        );
    }

    #[test]
    fn guided_mrr_beats_rock() {
        let r = result();
        assert!(
            r.guided_mrr > r.rock_mrr,
            "guided {:.3} should beat rock {:.3}",
            r.guided_mrr,
            r.rock_mrr
        );
    }

    #[test]
    fn mrr_values_are_bounded() {
        let r = result();
        for m in [r.guided_mrr, r.random_mrr, r.rock_mrr] {
            assert!((0.0..=1.0).contains(&m), "mrr {m}");
        }
    }

    #[test]
    fn render_lists_three_methods() {
        assert_eq!(result().render().len(), 3);
    }
}
