/// The paper's **redefined MRR** (Section 6.4). TREC's reciprocal rank
/// assumes one correct answer; the paper instead compares, per answer,
/// the system's rank with the user's rank:
///
/// ```text
/// MRR(Q) = Avg_i ( 1 / (|UserRank(t_i) − SystemRank(t_i)| + 1) )
/// ```
///
/// `user_ranks[i]` is the user's rank for the answer the system put at
/// rank `i + 1`; a user rank of **0** means "completely irrelevant" (the
/// paper's instruction to its judges).
pub fn redefined_mrr(user_ranks: &[u32]) -> f64 {
    if user_ranks.is_empty() {
        return 0.0;
    }
    let sum: f64 = user_ranks
        .iter()
        .enumerate()
        .map(|(i, &user)| {
            let system = (i + 1) as f64;
            1.0 / ((f64::from(user) - system).abs() + 1.0)
        })
        .sum();
    sum / user_ranks.len() as f64
}

/// Top-k classification accuracy (Figure 9): the fraction of the first
/// `k` answers whose class matches the query's class. Answer lists
/// shorter than `k` are averaged over `k` (missing answers count as
/// wrong) — an empty answer list scores 0, matching the intuition that a
/// system returning nothing classified nothing correctly.
pub fn accuracy_at_k<C: PartialEq>(query_class: &C, answer_classes: &[C], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = answer_classes
        .iter()
        .take(k)
        .filter(|c| *c == query_class)
        .count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mrr_perfect_agreement_is_one() {
        // User ranks exactly match system ranks 1..5.
        assert!((redefined_mrr(&[1, 2, 3, 4, 5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mrr_off_by_one_everywhere() {
        // |diff| = 1 for every answer → every term 1/2.
        assert!((redefined_mrr(&[2, 3, 4, 5, 6]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mrr_irrelevant_answers_score_low() {
        // All judged irrelevant (rank 0): term_i = 1/(i+1+0)... |0-i|+1.
        let m = redefined_mrr(&[0, 0, 0]);
        let expected = (1.0 / 2.0 + 1.0 / 3.0 + 1.0 / 4.0) / 3.0;
        assert!((m - expected).abs() < 1e-12);
    }

    #[test]
    fn mrr_empty_is_zero() {
        assert_eq!(redefined_mrr(&[]), 0.0);
    }

    #[test]
    fn mrr_reversed_order_is_worse_than_matching() {
        let matching = redefined_mrr(&[1, 2, 3, 4]);
        let reversed = redefined_mrr(&[4, 3, 2, 1]);
        assert!(matching > reversed);
    }

    #[test]
    fn accuracy_counts_matching_prefix() {
        let q = "hi";
        let answers = ["hi", "lo", "hi", "hi"];
        assert!((accuracy_at_k(&q, &answers, 1) - 1.0).abs() < 1e-12);
        assert!((accuracy_at_k(&q, &answers, 2) - 0.5).abs() < 1e-12);
        assert!((accuracy_at_k(&q, &answers, 4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn accuracy_short_answer_lists_penalized() {
        let q = 1;
        let answers = [1];
        assert!((accuracy_at_k(&q, &answers, 5) - 0.2).abs() < 1e-12);
        assert_eq!(accuracy_at_k(&q, &[] as &[i32], 5), 0.0);
    }

    #[test]
    fn accuracy_k_zero() {
        assert_eq!(accuracy_at_k(&1, &[1, 1], 0), 0.0);
    }
}
