use aimq_catalog::{Schema, Tuple};
use rand::{RngExt, SeedableRng};

/// A simulated relevance judge for the user study (Figure 8).
///
/// The paper's 8 graduate students each re-ranked the top-10 answers of
/// each system "according to their notion of relevance", marking
/// completely irrelevant tuples with rank 0. A [`SimulatedUser`] does the
/// same with the dataset's latent oracle similarity plus user-specific
/// Gaussian-ish noise: different seeds are different users, and the noise
/// models honest disagreement between judges.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedUser {
    /// Seed distinguishing this user from the others.
    pub seed: u64,
    /// Standard deviation of the perturbation applied to the oracle
    /// similarity before ranking (0 = oracle itself).
    pub noise: f64,
    /// Perceived similarity below which the user judges an answer
    /// "completely irrelevant" (rank 0).
    pub irrelevance_cutoff: f64,
    /// Just-noticeable difference: answers whose perceived similarities
    /// differ by less than this look equally good, and the user leaves
    /// them in the order the system presented them (anchoring). Human
    /// judges re-order only what they can actually tell apart.
    pub jnd: f64,
}

impl SimulatedUser {
    /// The panel of `n` users used by the Figure 8 experiment.
    pub fn panel(n: usize, base_seed: u64) -> Vec<SimulatedUser> {
        (0..n as u64)
            .map(|i| SimulatedUser {
                seed: base_seed.wrapping_add(i * 7919),
                noise: 0.08,
                // Used-car shoppers reject answers that miss on the things
                // they care about (model class, price band); the latent
                // oracle puts such misses well below 0.55.
                irrelevance_cutoff: 0.55,
                jnd: 0.08,
            })
            .collect()
    }
}

/// Produce the user's ranks for a system's answer list.
///
/// `oracle` gives the ground-truth similarity between the query tuple and
/// an answer. Returns `user_ranks[i]` = this user's rank for the answer
/// the system placed at position `i + 1` (0 = judged irrelevant) — the
/// exact input shape [`redefined_mrr`](crate::redefined_mrr) expects.
pub fn simulate_user_ranks(
    user: &SimulatedUser,
    schema: &Schema,
    query: &Tuple,
    answers: &[Tuple],
    oracle: &dyn Fn(&Schema, &Tuple, &Tuple) -> f64,
) -> Vec<u32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(user.seed);
    // Perceived similarity per answer.
    let perceived: Vec<f64> = answers
        .iter()
        .map(|a| {
            let noise = (rng.random::<f64>() - 0.5) * 2.0 * user.noise;
            (oracle(schema, query, a) + noise).clamp(0.0, 1.0)
        })
        .collect();

    // The user orders the relevant answers by perceived similarity,
    // quantized to the just-noticeable difference: indistinguishable
    // answers keep their presented (system) order.
    let level = |i: usize| -> i64 {
        if user.jnd > 0.0 {
            (perceived[i] / user.jnd).floor() as i64
        } else {
            (perceived[i] * 1e12) as i64
        }
    };
    let mut order: Vec<usize> = (0..answers.len())
        .filter(|&i| perceived[i] >= user.irrelevance_cutoff)
        .collect();
    order.sort_by(|&a, &b| level(b).cmp(&level(a)).then(a.cmp(&b)));

    let mut ranks = vec![0u32; answers.len()];
    for (rank0, &idx) in order.iter().enumerate() {
        ranks[idx] = (rank0 + 1) as u32;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_catalog::{Schema, Value};

    #[test]
    fn jnd_preserves_presented_order_for_near_ties() {
        let user = SimulatedUser {
            seed: 1,
            noise: 0.0,
            irrelevance_cutoff: 0.0,
            jnd: 0.2,
        };
        let query = t(0.5);
        // Oracle sims 0.93 and 0.97 — indistinguishable at jnd 0.2 (same
        // quantization level), so the user keeps the presented order even
        // though #2 is "better".
        let answers = vec![t(0.57), t(0.53)];
        let ranks = simulate_user_ranks(&user, &schema(), &query, &answers, &oracle);
        assert_eq!(ranks, vec![1, 2]);
    }

    fn schema() -> Schema {
        Schema::builder("R").numeric("X").build().unwrap()
    }

    fn t(x: f64) -> Tuple {
        Tuple::new(&schema(), vec![Value::num(x)]).unwrap()
    }

    /// Oracle: closeness on the single numeric attribute.
    fn oracle(_: &Schema, a: &Tuple, b: &Tuple) -> f64 {
        let xa = a.value(aimq_catalog::AttrId(0)).as_num().unwrap();
        let xb = b.value(aimq_catalog::AttrId(0)).as_num().unwrap();
        (1.0 - (xa - xb).abs()).max(0.0)
    }

    #[test]
    fn noiseless_user_ranks_by_oracle() {
        let user = SimulatedUser {
            seed: 1,
            noise: 0.0,
            irrelevance_cutoff: 0.2,
            jnd: 0.0,
        };
        let query = t(0.5);
        // answers at distances 0.1, 0.3, 0.0 → oracle 0.9, 0.7, 1.0.
        let answers = vec![t(0.6), t(0.8), t(0.5)];
        let ranks = simulate_user_ranks(&user, &schema(), &query, &answers, &oracle);
        assert_eq!(ranks, vec![2, 3, 1]);
    }

    #[test]
    fn irrelevant_answers_get_rank_zero() {
        let user = SimulatedUser {
            seed: 1,
            noise: 0.0,
            irrelevance_cutoff: 0.5,
            jnd: 0.0,
        };
        let query = t(0.0);
        let answers = vec![t(0.1), t(0.9)]; // oracle 0.9, 0.1
        let ranks = simulate_user_ranks(&user, &schema(), &query, &answers, &oracle);
        assert_eq!(ranks, vec![1, 0]);
    }

    #[test]
    fn same_seed_reproduces_same_judgment() {
        let user = SimulatedUser {
            seed: 9,
            noise: 0.2,
            irrelevance_cutoff: 0.3,
            jnd: 0.05,
        };
        let query = t(0.5);
        let answers: Vec<Tuple> = (0..6).map(|i| t(f64::from(i) / 6.0)).collect();
        let a = simulate_user_ranks(&user, &schema(), &query, &answers, &oracle);
        let b = simulate_user_ranks(&user, &schema(), &query, &answers, &oracle);
        assert_eq!(a, b);
    }

    #[test]
    fn panel_users_differ() {
        let panel = SimulatedUser::panel(8, 42);
        assert_eq!(panel.len(), 8);
        let seeds: std::collections::HashSet<u64> = panel.iter().map(|u| u.seed).collect();
        assert_eq!(seeds.len(), 8);
    }

    #[test]
    fn relevant_ranks_are_dense_one_based() {
        let user = SimulatedUser {
            seed: 3,
            noise: 0.05,
            irrelevance_cutoff: 0.0,
            jnd: 0.0,
        };
        let query = t(0.5);
        let answers: Vec<Tuple> = (0..5).map(|i| t(f64::from(i) / 5.0)).collect();
        let mut ranks = simulate_user_ranks(&user, &schema(), &query, &answers, &oracle);
        ranks.sort_unstable();
        assert_eq!(ranks, vec![1, 2, 3, 4, 5]);
    }
}
