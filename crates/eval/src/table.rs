use std::fmt;

/// Minimal ASCII table renderer for experiment reports.
///
/// Every experiment runner renders through this so the bench binaries
/// print uniform, diff-able output (recorded in `EXPERIMENTS.md`).
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+";

        writeln!(f, "{}", self.title)?;
        writeln!(f, "{sep}")?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("| {:width$} ", c, width = widths[i]))
                .collect::<String>()
                + "|"
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        writeln!(f, "{sep}")?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        write!(f, "{sep}")
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a `Duration` as fractional seconds.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.to_string();
        assert!(s.starts_with("Demo\n"));
        assert!(s.contains("| name  | value |"));
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("| b     | 12345 |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new("Demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(secs(std::time::Duration::from_millis(2500)), "2.50s");
    }
}
