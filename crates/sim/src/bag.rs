use std::collections::BTreeMap;

/// A bag (multiset) of feature codes with occurrence counts — one entry of
/// a supertuple (e.g. the `Color` bag of `Make=Ford`: `White:5, Black:5,
/// ...` in the paper's Table 1).
///
/// Internally a code-sorted `Vec<(code, count)>` so that the Jaccard
/// coefficient of two bags is a linear merge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bag {
    entries: Vec<(u32, u32)>,
}

impl Bag {
    /// The empty bag.
    pub fn new() -> Self {
        Bag::default()
    }

    /// Build from a (code, count) accumulation. The map's key order
    /// already matches the bag's sorted representation.
    pub fn from_counts(counts: &BTreeMap<u32, u32>) -> Self {
        let entries: Vec<(u32, u32)> = counts
            .iter()
            .filter(|&(_, &c)| c > 0)
            .map(|(&k, &v)| (k, v))
            .collect();
        Bag { entries }
    }

    /// Build from an iterator of codes, counting multiplicities.
    pub fn from_codes(codes: impl IntoIterator<Item = u32>) -> Self {
        let mut counts = BTreeMap::new();
        for c in codes {
            *counts.entry(c).or_insert(0) += 1;
        }
        Bag::from_counts(&counts)
    }

    /// Number of distinct codes.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Total multiplicity (bag cardinality).
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| u64::from(c)).sum()
    }

    /// `true` when the bag has no members.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Occurrence count of `code`.
    pub fn count(&self, code: u32) -> u32 {
        self.entries
            .binary_search_by_key(&code, |&(k, _)| k)
            .map_or(0, |i| self.entries[i].1) // aimq-lint: allow(indexing) -- i comes from a successful binary_search
    }

    /// Iterate `(code, count)` pairs in ascending code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// Bag-semantics **Jaccard coefficient**:
    /// `|A ∩ B| / |A ∪ B| = Σ min(a,b) / Σ max(a,b)`.
    ///
    /// Two empty bags have similarity 0 (no shared evidence — the paper's
    /// supertuples never co-occur with *nothing*, so this case only arises
    /// for values outside the mined sample).
    pub fn jaccard(&self, other: &Bag) -> f64 {
        let mut inter: u64 = 0;
        let mut union: u64 = 0;
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.entries, &other.entries);
        while i < a.len() && j < b.len() {
            // aimq-lint: allow(indexing) -- i and j are bounded by the merge loop condition
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    union += u64::from(a[i].1); // aimq-lint: allow(indexing) -- i and j are bounded by the merge loop condition
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    union += u64::from(b[j].1); // aimq-lint: allow(indexing) -- i and j are bounded by the merge loop condition
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    inter += u64::from(a[i].1.min(b[j].1)); // aimq-lint: allow(indexing) -- i and j are bounded by the merge loop condition
                    union += u64::from(a[i].1.max(b[j].1)); // aimq-lint: allow(indexing) -- i and j are bounded by the merge loop condition
                    i += 1;
                    j += 1;
                }
            }
        }
        union += a[i..].iter().map(|&(_, c)| u64::from(c)).sum::<u64>(); // aimq-lint: allow(indexing) -- i and j are bounded by the merge loop condition
        union += b[j..].iter().map(|&(_, c)| u64::from(c)).sum::<u64>(); // aimq-lint: allow(indexing) -- i and j are bounded by the merge loop condition
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_codes_counts_multiplicity() {
        let b = Bag::from_codes([3, 1, 3, 3, 1, 7]);
        assert_eq!(b.count(3), 3);
        assert_eq!(b.count(1), 2);
        assert_eq!(b.count(7), 1);
        assert_eq!(b.count(9), 0);
        assert_eq!(b.distinct(), 3);
        assert_eq!(b.total(), 6);
    }

    #[test]
    fn identical_bags_have_jaccard_one() {
        let b = Bag::from_codes([1, 1, 2, 5]);
        assert_eq!(b.jaccard(&b), 1.0);
    }

    #[test]
    fn disjoint_bags_have_jaccard_zero() {
        let a = Bag::from_codes([1, 2]);
        let b = Bag::from_codes([3, 4]);
        assert_eq!(a.jaccard(&b), 0.0);
    }

    #[test]
    fn partial_overlap_hand_computed() {
        // A = {1:2, 2:1}, B = {1:1, 3:2}
        // min: 1 (code 1); max: 2 (code 1) + 1 (code 2) + 2 (code 3) = 5.
        let a = Bag::from_codes([1, 1, 2]);
        let b = Bag::from_codes([1, 3, 3]);
        assert!((a.jaccard(&b) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn bag_semantics_differ_from_set_semantics() {
        // Same support {1}, different counts.
        let a = Bag::from_codes([1, 1, 1, 1]);
        let b = Bag::from_codes([1]);
        assert!((a.jaccard(&b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_bags() {
        let e = Bag::new();
        assert!(e.is_empty());
        assert_eq!(e.jaccard(&e), 0.0);
        let b = Bag::from_codes([1]);
        assert_eq!(e.jaccard(&b), 0.0);
        assert_eq!(b.jaccard(&e), 0.0);
    }

    #[test]
    fn zero_counts_filtered() {
        let mut m = BTreeMap::new();
        m.insert(4u32, 0u32);
        m.insert(5u32, 2u32);
        let b = Bag::from_counts(&m);
        assert_eq!(b.distinct(), 1);
        assert_eq!(b.count(4), 0);
    }

    proptest! {
        #[test]
        fn jaccard_is_symmetric(
            xs in prop::collection::vec(0u32..10, 0..40),
            ys in prop::collection::vec(0u32..10, 0..40)
        ) {
            let a = Bag::from_codes(xs);
            let b = Bag::from_codes(ys);
            prop_assert!((a.jaccard(&b) - b.jaccard(&a)).abs() < 1e-15);
        }

        #[test]
        fn jaccard_in_unit_interval(
            xs in prop::collection::vec(0u32..10, 0..40),
            ys in prop::collection::vec(0u32..10, 0..40)
        ) {
            let s = Bag::from_codes(xs).jaccard(&Bag::from_codes(ys));
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn self_similarity_is_one_unless_empty(
            xs in prop::collection::vec(0u32..10, 1..40)
        ) {
            let a = Bag::from_codes(xs);
            prop_assert!((a.jaccard(&a) - 1.0).abs() < 1e-15);
        }

        #[test]
        fn jaccard_matches_brute_force(
            xs in prop::collection::vec(0u32..6, 0..30),
            ys in prop::collection::vec(0u32..6, 0..30)
        ) {
            let a = Bag::from_codes(xs.clone());
            let b = Bag::from_codes(ys.clone());
            let mut inter = 0u64;
            let mut union = 0u64;
            for code in 0u32..6 {
                let ca = xs.iter().filter(|&&x| x == code).count() as u64;
                let cb = ys.iter().filter(|&&y| y == code).count() as u64;
                inter += ca.min(cb);
                union += ca.max(cb);
            }
            let expected = if union == 0 { 0.0 } else { inter as f64 / union as f64 };
            prop_assert!((a.jaccard(&b) - expected).abs() < 1e-12);
        }
    }
}
