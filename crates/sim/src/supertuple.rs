use std::collections::BTreeMap;

use aimq_afd::EncodedRelation;
use aimq_catalog::AttrId;

use crate::Bag;

/// The supertuple of one AV-pair (Section 5.2, Table 1): for every
/// attribute of the relation *other than* the pair's own attribute, a bag
/// of the feature codes co-occurring with the pair.
///
/// Feature codes come from the shared mining encoding
/// ([`EncodedRelation`]): dictionary codes for categorical attributes,
/// bucket codes for numeric ones — exactly the paper's
/// `Mileage 10k-15k:3` style entries.
#[derive(Debug, Clone, Default)]
pub struct SuperTuple {
    /// One bag per schema attribute; the bag at the supertuple's own
    /// attribute position stays empty.
    bags: Vec<Bag>,
    /// Number of tuples containing the AV-pair (the answerset size of the
    /// AV-pair seen as a one-attribute selection query).
    support: u32,
}

impl SuperTuple {
    /// Bag of co-occurring features for attribute `attr`.
    pub fn bag(&self, attr: AttrId) -> &Bag {
        &self.bags[attr.index()] // aimq-lint: allow(indexing) -- bags is schema-sized; AttrId is in-range
    }

    /// All bags in schema-attribute order.
    pub fn bags(&self) -> &[Bag] {
        &self.bags
    }

    /// Number of tuples that contained this AV-pair.
    pub fn support(&self) -> u32 {
        self.support
    }
}

/// Build the supertuples of every value of `attr` in one pass over the
/// encoded relation.
///
/// Returns a vector indexed by `attr`'s dense value code. A value's
/// supertuple aggregates, for each other attribute, the codes co-occurring
/// with that value (nulls contribute nothing).
pub fn build_supertuples(enc: &EncodedRelation, attr: AttrId) -> Vec<SuperTuple> {
    let n_attrs = enc.n_attrs();
    let n_values = enc.cardinality(attr);
    let own_codes = enc.codes(attr);

    // counts[value][other_attr] : feature code -> count
    let mut counts: Vec<Vec<BTreeMap<u32, u32>>> = vec![vec![BTreeMap::new(); n_attrs]; n_values];
    let mut support = vec![0u32; n_values];

    for (row, &value) in own_codes.iter().enumerate() {
        if value == aimq_storage::NULL_CODE {
            continue;
        }
        // aimq-lint: allow(indexing) -- value codes are < cardinality by dictionary interning
        support[value as usize] += 1;
        // aimq-lint: allow(indexing) -- value codes are < cardinality by dictionary interning
        for (other, other_counts) in counts[value as usize].iter_mut().enumerate() {
            if other == attr.index() {
                continue;
            }
            let feature = enc.codes(AttrId(other))[row]; // aimq-lint: allow(indexing) -- codes column is relation-sized; row ranges over it
            if feature == aimq_storage::NULL_CODE {
                continue;
            }
            *other_counts.entry(feature).or_insert(0) += 1;
        }
    }

    counts
        .into_iter()
        .zip(support)
        .map(|(per_attr, support)| SuperTuple {
            bags: per_attr.iter().map(Bag::from_counts).collect(),
            support,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_afd::BucketConfig;
    use aimq_catalog::{BucketSpec, Schema, Tuple, Value};
    use aimq_storage::Relation;

    /// Mini CarDB mirroring the paper's Table 1 structure.
    fn setup() -> (Relation, EncodedRelation) {
        let schema = Schema::builder("CarDB")
            .categorical("Make")
            .categorical("Model")
            .numeric("Price")
            .categorical("Color")
            .build()
            .unwrap();
        let rows = [
            ("Ford", "Focus", 4000.0, "White"),
            ("Ford", "Focus", 4500.0, "Black"),
            ("Ford", "F150", 16000.0, "White"),
            ("Toyota", "Camry", 9000.0, "White"),
            ("Toyota", "Camry", 9500.0, "Silver"),
        ];
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|&(mk, md, p, c)| {
                Tuple::new(
                    &schema,
                    vec![Value::cat(mk), Value::cat(md), Value::num(p), Value::cat(c)],
                )
                .unwrap()
            })
            .collect();
        let rel = Relation::from_tuples(schema.clone(), &tuples).unwrap();
        let cfg = BucketConfig::for_schema(&schema).with_spec(AttrId(2), BucketSpec::width(5000.0));
        let enc = EncodedRelation::encode(&rel, &cfg);
        (rel, enc)
    }

    fn code_of(rel: &Relation, attr: AttrId, value: &str) -> u32 {
        rel.column(attr)
            .dictionary()
            .unwrap()
            .code_of(value)
            .unwrap()
    }

    #[test]
    fn supertuple_counts_cooccurrences() {
        let (rel, enc) = setup();
        let sts = build_supertuples(&enc, AttrId(0)); // per Make value
        let ford = &sts[code_of(&rel, AttrId(0), "Ford") as usize];
        assert_eq!(ford.support(), 3);

        // Model bag: Focus:2, F150:1.
        let focus = code_of(&rel, AttrId(1), "Focus");
        let f150 = code_of(&rel, AttrId(1), "F150");
        assert_eq!(ford.bag(AttrId(1)).count(focus), 2);
        assert_eq!(ford.bag(AttrId(1)).count(f150), 1);

        // Color bag: White:2, Black:1; no Silver.
        let white = code_of(&rel, AttrId(3), "White");
        let black = code_of(&rel, AttrId(3), "Black");
        let silver = code_of(&rel, AttrId(3), "Silver");
        assert_eq!(ford.bag(AttrId(3)).count(white), 2);
        assert_eq!(ford.bag(AttrId(3)).count(black), 1);
        assert_eq!(ford.bag(AttrId(3)).count(silver), 0);
    }

    #[test]
    fn numeric_features_are_bucketized() {
        let (rel, enc) = setup();
        let sts = build_supertuples(&enc, AttrId(0));
        let ford = &sts[code_of(&rel, AttrId(0), "Ford") as usize];
        // Prices 4000 & 4500 share the 0-5k bucket; 16000 is its own.
        let price_bag = ford.bag(AttrId(2));
        assert_eq!(price_bag.distinct(), 2);
        assert_eq!(price_bag.total(), 3);
        let max_count = price_bag.iter().map(|(_, c)| c).max().unwrap();
        assert_eq!(max_count, 2);
    }

    #[test]
    fn own_attribute_bag_stays_empty() {
        let (rel, enc) = setup();
        let sts = build_supertuples(&enc, AttrId(0));
        let ford = &sts[code_of(&rel, AttrId(0), "Ford") as usize];
        assert!(ford.bag(AttrId(0)).is_empty());
    }

    #[test]
    fn every_value_gets_a_supertuple() {
        let (rel, enc) = setup();
        let sts = build_supertuples(&enc, AttrId(1)); // per Model
        assert_eq!(sts.len(), 3); // Focus, F150, Camry
        let camry = &sts[code_of(&rel, AttrId(1), "Camry") as usize];
        assert_eq!(camry.support(), 2);
        // Camry co-occurs only with Toyota.
        let toyota = code_of(&rel, AttrId(0), "Toyota");
        assert_eq!(camry.bag(AttrId(0)).count(toyota), 2);
        assert_eq!(camry.bag(AttrId(0)).distinct(), 1);
    }

    #[test]
    fn supertuple_totals_match_support() {
        let (_, enc) = setup();
        for attr in 0..4 {
            if attr == 2 {
                continue; // numeric attribute: no supertuples of its own
            }
            let sts = build_supertuples(&enc, AttrId(attr));
            for st in &sts {
                for (i, bag) in st.bags().iter().enumerate() {
                    if i == attr {
                        continue;
                    }
                    // Without nulls, each co-attribute bag holds exactly
                    // `support` features.
                    assert_eq!(bag.total(), u64::from(st.support()));
                }
            }
        }
    }

    #[test]
    fn nulls_do_not_contribute_features() {
        let schema = Schema::builder("R")
            .categorical("A")
            .categorical("B")
            .build()
            .unwrap();
        let t1 = Tuple::new(&schema, vec![Value::cat("x"), Value::Null]).unwrap();
        let t2 = Tuple::new(&schema, vec![Value::cat("x"), Value::cat("y")]).unwrap();
        let rel = Relation::from_tuples(schema.clone(), &[t1, t2]).unwrap();
        let enc = EncodedRelation::encode(&rel, &BucketConfig::for_schema(&schema));
        let sts = build_supertuples(&enc, AttrId(0));
        assert_eq!(sts[0].support(), 2);
        assert_eq!(sts[0].bag(AttrId(1)).total(), 1); // only the non-null y
    }
}
