#![warn(missing_docs)]

//! # aimq-sim
//!
//! The **Similarity Miner** of AIMQ (Section 5 of the paper): a domain-
//! and user-independent estimator of similarity between values of
//! categorical attributes, plus the combined query–tuple similarity
//! function used to rank answers.
//!
//! The pipeline:
//!
//! 1. every distinct *attribute–value pair* (AV-pair, e.g. `Make=Ford`)
//!    is represented by its **supertuple** — for every *other* attribute,
//!    a bag of the feature values co-occurring with the AV-pair in the
//!    relation (Table 1 of the paper shows `Make=Ford`'s supertuple);
//! 2. the similarity of two values of the same attribute is the
//!    importance-weighted sum of the bag-semantics **Jaccard
//!    coefficients** of their supertuples' per-attribute bags:
//!    `VSim(C1,C2) = Σ Wimp(Ai) × SimJ(C1.Ai, C2.Ai)`;
//! 3. query–tuple similarity combines `VSim` on categorical attributes
//!    with the normalized numeric distance `1 − |Q.Ai − t.Ai| / Q.Ai`
//!    (clamped into `[0,1]`), again weighted by `Wimp`:
//!    `Sim(Q,t) = Σ Wimp(Ai) × [VSim | numeric-sim]`.
//!
//! Numeric features inside supertuple bags are bucketized exactly as in
//! AFD mining (the paper's Table 1 shows `Price 1k-5k:5`-style entries);
//! the same [`BucketConfig`](aimq_afd::BucketConfig) drives both.

mod bag;
mod model;
mod supertuple;
mod tuple_sim;

pub use bag::Bag;
pub use model::{SimConfig, SimilarityModel, ValueSimMatrix};
pub use supertuple::{build_supertuples, SuperTuple};
pub use tuple_sim::numeric_similarity;
