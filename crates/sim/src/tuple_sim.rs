/// Numeric similarity between a query binding `q` and a tuple value `t`
/// (Section 5 of the paper):
///
/// ```text
/// sim = 1 − |q − t| / |q|        (clamped into [0, 1])
/// ```
///
/// The paper clamps the *distance* at 1 "to maintain a lowerbound of 0 for
/// numeric similarity"; we do the same. A zero query value gets an exact-
/// match semantics (similarity 1 iff `t == 0`) because the relative
/// distance is undefined there.
pub fn numeric_similarity(q: f64, t: f64) -> f64 {
    if q == t {
        return 1.0;
    }
    if !q.is_finite() || !t.is_finite() {
        return 0.0;
    }
    if q == 0.0 {
        return 0.0; // t != q and relative distance undefined
    }
    let distance = ((q - t) / q).abs().min(1.0);
    1.0 - distance
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_match_is_one() {
        assert_eq!(numeric_similarity(10000.0, 10000.0), 1.0);
        assert_eq!(numeric_similarity(0.0, 0.0), 1.0);
        assert_eq!(numeric_similarity(-5.0, -5.0), 1.0);
    }

    #[test]
    fn paper_example_slightly_higher_price() {
        // Camry priced 10500 vs query 10000: distance 0.05 → sim 0.95.
        let s = numeric_similarity(10000.0, 10500.0);
        assert!((s - 0.95).abs() < 1e-12);
    }

    #[test]
    fn distance_clamped_at_one() {
        // t more than 2× the query → raw distance > 1 → sim 0, not
        // negative.
        assert_eq!(numeric_similarity(10000.0, 25000.0), 0.0);
        assert_eq!(numeric_similarity(10000.0, -5000.0), 0.0);
    }

    #[test]
    fn zero_query_value() {
        assert_eq!(numeric_similarity(0.0, 5.0), 0.0);
    }

    #[test]
    fn non_finite_inputs_are_zero() {
        assert_eq!(numeric_similarity(f64::NAN, 1.0), 0.0);
        assert_eq!(numeric_similarity(1.0, f64::INFINITY), 0.0);
    }

    #[test]
    fn symmetric_in_absolute_offset() {
        let up = numeric_similarity(100.0, 110.0);
        let down = numeric_similarity(100.0, 90.0);
        assert!((up - down).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn always_in_unit_interval(q in -1e6f64..1e6, t in -1e6f64..1e6) {
            let s = numeric_similarity(q, t);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn closer_is_more_similar(q in 1.0f64..1e6, d1 in 0.0f64..0.5, d2 in 0.5f64..1.0) {
            // d1 < d2 as relative offsets from q.
            let s1 = numeric_similarity(q, q * (1.0 + d1));
            let s2 = numeric_similarity(q, q * (1.0 + d2));
            prop_assert!(s1 >= s2);
        }
    }
}
