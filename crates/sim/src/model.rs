use aimq_afd::{AttributeOrdering, BucketConfig, EncodedRelation};
use aimq_catalog::{AttrId, Domain, ImpreciseQuery, Schema, Tuple, Value};
use aimq_storage::{Dictionary, Relation};

use crate::supertuple::build_supertuples;
use crate::tuple_sim::numeric_similarity;

/// Configuration of the similarity miner.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Bucketing of numeric attributes when they appear as supertuple
    /// features. Sharing the spec with AFD mining keeps the two views of
    /// the data consistent.
    pub bucket: BucketConfig,
}

impl SimConfig {
    /// Default configuration for `schema`.
    pub fn for_schema(schema: &Schema) -> Self {
        SimConfig {
            bucket: BucketConfig::for_schema(schema),
        }
    }
}

/// Pairwise value-similarity matrix for one categorical attribute.
///
/// `sims` is a dense symmetric `n × n` matrix over the training
/// dictionary's codes with unit diagonal.
#[derive(Debug, Clone)]
pub struct ValueSimMatrix {
    dict: Dictionary,
    n: usize,
    sims: Vec<f64>,
}

impl ValueSimMatrix {
    /// Similarity between two value codes (0 for out-of-range codes).
    pub fn similarity(&self, a: u32, b: u32) -> f64 {
        let (a, b) = (a as usize, b as usize);
        if a >= self.n || b >= self.n {
            return 0.0;
        }
        self.sims[a * self.n + b] // aimq-lint: allow(indexing) -- a and b were just bounds-checked against n
    }

    /// Similarity between two value strings. Identical strings are 1 even
    /// when unseen during training; unseen non-identical values score 0.
    pub fn similarity_by_name(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        match (self.dict.code_of(a), self.dict.code_of(b)) {
            (Some(ca), Some(cb)) => self.similarity(ca, cb),
            _ => 0.0,
        }
    }

    /// The `k` most similar values to `value`, descending, self excluded.
    /// Ties break alphabetically for deterministic output.
    pub fn top_similar(&self, value: &str, k: usize) -> Vec<(String, f64)> {
        let Some(code) = self.dict.code_of(value) else {
            return Vec::new();
        };
        let mut scored: Vec<(String, f64)> = (0..self.n as u32)
            .filter(|&c| c != code)
            .filter_map(|c| {
                // Codes 0..n are dense in the training dictionary; a miss
                // would be a persistence bug and is skipped, not a panic.
                let name = self.dict.value_of(c)?;
                Some((name.to_owned(), self.similarity(code, c)))
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    /// Reassemble a matrix from raw parts (model persistence). `sims`
    /// must be a dense `dict.len() × dict.len()` row-major matrix.
    pub fn from_parts(dict: Dictionary, sims: Vec<f64>) -> Option<Self> {
        let n = dict.len();
        (sims.len() == n * n).then_some(ValueSimMatrix { dict, n, sims })
    }

    /// The raw row-major similarity matrix (for persistence).
    pub fn raw_sims(&self) -> &[f64] {
        &self.sims
    }

    /// The training dictionary backing this matrix.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// All values this matrix knows (training dictionary, code order).
    pub fn values(&self) -> &[String] {
        self.dict.values()
    }

    /// Number of distinct values covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the attribute had no values in the training sample.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// The mined similarity model: one [`ValueSimMatrix`] per categorical
/// attribute plus the attribute-importance weights, together implementing
/// the paper's `VSim` and `Sim` functions (Section 5).
#[derive(Debug, Clone)]
pub struct SimilarityModel {
    schema: Schema,
    ordering: AttributeOrdering,
    matrices: Vec<Option<ValueSimMatrix>>,
    bucket_specs: Vec<Option<aimq_catalog::BucketSpec>>,
}

impl SimilarityModel {
    /// Mine value similarities from `relation`, weighting per-attribute
    /// bag similarities by `ordering`'s importance weights.
    ///
    /// Cost is `O(m · k² · b)` where `m` is the number of attributes, `k`
    /// the average number of distinct values per categorical attribute and
    /// `b` the bag size — the paper's claimed advantage over ROCK's
    /// `O(n³)` in the number of *tuples* (Section 6.1).
    pub fn build(relation: &Relation, ordering: &AttributeOrdering, config: &SimConfig) -> Self {
        let schema = relation.schema().clone();
        let enc = EncodedRelation::encode(relation, &config.bucket);

        let matrices = schema
            .attr_ids()
            .map(|attr| match schema.domain(attr) {
                Domain::Numeric => None,
                Domain::Categorical => {
                    Some(Self::build_matrix(relation, &enc, ordering, &schema, attr))
                }
            })
            .collect();
        let bucket_specs = schema.attr_ids().map(|a| enc.bucket_spec(a)).collect();

        SimilarityModel {
            schema,
            ordering: ordering.clone(),
            matrices,
            bucket_specs,
        }
    }

    /// Like [`SimilarityModel::build`], but mines the per-attribute
    /// matrices on scoped worker threads (one task per categorical
    /// attribute). Produces bit-identical results; worthwhile when the
    /// widest attribute's `k²` Jaccard pairs dominate training time.
    pub fn build_parallel(
        relation: &Relation,
        ordering: &AttributeOrdering,
        config: &SimConfig,
    ) -> Self {
        let schema = relation.schema().clone();
        let enc = EncodedRelation::encode(relation, &config.bucket);

        let matrices = std::thread::scope(|scope| {
            let handles: Vec<_> = schema
                .attr_ids()
                .map(|attr| match schema.domain(attr) {
                    Domain::Numeric => None,
                    Domain::Categorical => {
                        let (schema, enc) = (&schema, &enc);
                        Some(scope.spawn(move || {
                            Self::build_matrix(relation, enc, ordering, schema, attr)
                        }))
                    }
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.map(|handle| match handle.join() {
                        Ok(matrix) => matrix,
                        // A worker panic is a bug in build_matrix;
                        // surface it on the caller's thread unchanged.
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                })
                .collect::<Vec<Option<ValueSimMatrix>>>()
        });
        let bucket_specs = schema.attr_ids().map(|a| enc.bucket_spec(a)).collect();

        SimilarityModel {
            schema,
            ordering: ordering.clone(),
            matrices,
            bucket_specs,
        }
    }

    /// The bucket spec the model applied to a numeric attribute during
    /// mining (`None` for categorical attributes). The query engine uses
    /// it to turn numeric `like` bindings into bucket-band selections —
    /// the form-interface analogue of a price-range select box.
    pub fn bucket_spec(&self, attr: AttrId) -> Option<aimq_catalog::BucketSpec> {
        self.bucket_specs[attr.index()] // aimq-lint: allow(indexing) -- schema-sized per-attribute table; AttrId is in-range
    }

    /// Reassemble a model from raw parts (model persistence). `matrices`
    /// and `bucket_specs` must be indexed by schema attribute position.
    pub fn from_parts(
        schema: Schema,
        ordering: AttributeOrdering,
        matrices: Vec<Option<ValueSimMatrix>>,
        bucket_specs: Vec<Option<aimq_catalog::BucketSpec>>,
    ) -> Option<Self> {
        (matrices.len() == schema.arity() && bucket_specs.len() == schema.arity()).then_some(
            SimilarityModel {
                schema,
                ordering,
                matrices,
                bucket_specs,
            },
        )
    }

    fn build_matrix(
        relation: &Relation,
        enc: &EncodedRelation,
        ordering: &AttributeOrdering,
        schema: &Schema,
        attr: AttrId,
    ) -> ValueSimMatrix {
        let Some(dict) = relation.column(attr).dictionary().cloned() else {
            // Only categorical attributes reach build_matrix, and their
            // columns always carry a dictionary; should that invariant
            // ever break, an empty matrix (similarity 0 everywhere)
            // degrades gracefully instead of panicking.
            return ValueSimMatrix {
                dict: Dictionary::new(),
                n: 0,
                sims: Vec::new(),
            };
        };
        let n = dict.len();
        let supertuples = build_supertuples(enc, attr);
        debug_assert_eq!(supertuples.len(), n);

        // Importance weights over the *other* attributes, normalized so
        // Σ Wimp = 1 within each VSim computation.
        let others: Vec<AttrId> = schema.attr_ids().filter(|&a| a != attr).collect();
        let weights = ordering.normalized_importance(&others);

        let mut sims = vec![0.0; n * n];
        for i in 0..n {
            sims[i * n + i] = 1.0; // aimq-lint: allow(indexing) -- n-by-n matrix; i and j are bounded by the build loops
            for j in (i + 1)..n {
                let mut v = 0.0;
                for (&other, &w) in others.iter().zip(&weights) {
                    if w == 0.0 {
                        continue;
                    }
                    let a = supertuples[i].bag(other); // aimq-lint: allow(indexing) -- n-by-n matrix; i and j are bounded by the build loops
                    let b = supertuples[j].bag(other); // aimq-lint: allow(indexing) -- n-by-n matrix; i and j are bounded by the build loops
                    v += w * a.jaccard(b);
                }
                sims[i * n + j] = v; // aimq-lint: allow(indexing) -- n-by-n matrix; i and j are bounded by the build loops
                sims[j * n + i] = v; // aimq-lint: allow(indexing) -- n-by-n matrix; i and j are bounded by the build loops
            }
        }

        ValueSimMatrix { dict, n, sims }
    }

    /// The schema the model was mined over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The attribute ordering (and thus `Wimp` weights) baked into the
    /// model.
    pub fn ordering(&self) -> &AttributeOrdering {
        &self.ordering
    }

    /// The value-similarity matrix of a categorical attribute.
    pub fn matrix(&self, attr: AttrId) -> Option<&ValueSimMatrix> {
        self.matrices[attr.index()].as_ref() // aimq-lint: allow(indexing) -- schema-sized per-attribute table; AttrId is in-range
    }

    /// `VSim` between two values of categorical attribute `attr`.
    pub fn value_similarity(&self, attr: AttrId, a: &str, b: &str) -> f64 {
        self.matrix(attr)
            .map_or(0.0, |m| m.similarity_by_name(a, b))
    }

    /// Per-attribute similarity between a query binding and a tuple value:
    /// `VSim` for categorical attributes, normalized L1 for numeric ones.
    /// Null tuple values score 0.
    fn attribute_similarity(&self, attr: AttrId, qv: &Value, tv: &Value) -> f64 {
        match (qv, tv) {
            (Value::Cat(a), Value::Cat(b)) => {
                if a == b {
                    1.0
                } else {
                    self.value_similarity(attr, a, b)
                }
            }
            (Value::Num(q), Value::Num(t)) => numeric_similarity(*q, *t),
            _ => 0.0,
        }
    }

    /// Per-attribute similarity components of `Sim(Q, t)`, unweighted:
    /// one `(attribute, similarity)` pair per bound query attribute.
    ///
    /// Exposed so weight-tuning layers (e.g. the relevance-feedback tuner
    /// in the `aimq` crate, implementing the paper's Section 7 plan to
    /// "use relevance feedback to tune the importance weights") can apply
    /// their own weights without rebuilding the mined model.
    pub fn attribute_similarities(
        &self,
        query: &ImpreciseQuery,
        tuple: &Tuple,
    ) -> Vec<(AttrId, f64)> {
        query
            .bindings()
            .iter()
            .map(|&(attr, ref qv)| (attr, self.attribute_similarity(attr, qv, tuple.value(attr))))
            .collect()
    }

    /// The paper's `Sim(Q, t)`: importance-weighted sum of per-attribute
    /// similarities over the query's bound attributes, with weights
    /// renormalized to sum to 1.
    pub fn query_similarity(&self, query: &ImpreciseQuery, tuple: &Tuple) -> f64 {
        let attrs = query.bound_attrs();
        let weights = self.ordering.normalized_importance(&attrs);
        query
            .bindings()
            .iter()
            .zip(&weights)
            .map(|(&(attr, ref qv), &w)| w * self.attribute_similarity(attr, qv, tuple.value(attr)))
            .sum()
    }

    /// `Sim` between two tuples, treating `base` as a fully bound query
    /// over `attrs` — the comparison Algorithm 1 performs between each
    /// base-set tuple and each relaxation result (step 7).
    pub fn tuple_similarity(&self, base: &Tuple, candidate: &Tuple, attrs: &[AttrId]) -> f64 {
        let bound: Vec<AttrId> = attrs
            .iter()
            .copied()
            .filter(|&a| !base.value(a).is_null())
            .collect();
        let weights = self.ordering.normalized_importance(&bound);
        bound
            .iter()
            .zip(&weights)
            .map(|(&attr, &w)| {
                w * self.attribute_similarity(attr, base.value(attr), candidate.value(attr))
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_afd::{BucketConfig, MinedDependencies, TaneConfig};
    use aimq_catalog::BucketSpec;

    /// CarDB-like corpus engineered so that Camry and Accord co-occur
    /// with similar price buckets / colors, while F150 is different.
    fn training_relation() -> Relation {
        let schema = Schema::builder("CarDB")
            .categorical("Make")
            .categorical("Model")
            .numeric("Price")
            .categorical("Color")
            .build()
            .unwrap();
        let rows: Vec<(&str, &str, f64, &str)> = vec![
            ("Toyota", "Camry", 9000.0, "White"),
            ("Toyota", "Camry", 9500.0, "Black"),
            ("Toyota", "Camry", 8700.0, "White"),
            ("Honda", "Accord", 9200.0, "White"),
            ("Honda", "Accord", 9100.0, "Black"),
            ("Honda", "Accord", 8800.0, "White"),
            ("Ford", "F150", 26000.0, "Red"),
            ("Ford", "F150", 27000.0, "Black"),
        ];
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|&(mk, md, p, c)| {
                Tuple::new(
                    &schema,
                    vec![Value::cat(mk), Value::cat(md), Value::num(p), Value::cat(c)],
                )
                .unwrap()
            })
            .collect();
        Relation::from_tuples(schema, &tuples).unwrap()
    }

    fn model() -> SimilarityModel {
        let rel = training_relation();
        let schema = rel.schema().clone();
        let bucket =
            BucketConfig::for_schema(&schema).with_spec(AttrId(2), BucketSpec::width(5000.0));
        let enc = EncodedRelation::encode(&rel, &bucket);
        let mined = MinedDependencies::mine(&enc, &TaneConfig::default());
        let ordering = AttributeOrdering::derive(&schema, &mined).unwrap();
        SimilarityModel::build(&rel, &ordering, &SimConfig { bucket })
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let rel = training_relation();
        let schema = rel.schema().clone();
        let bucket =
            BucketConfig::for_schema(&schema).with_spec(AttrId(2), BucketSpec::width(5000.0));
        let enc = EncodedRelation::encode(&rel, &bucket);
        let mined = MinedDependencies::mine(&enc, &TaneConfig::default());
        let ordering = AttributeOrdering::derive(&schema, &mined).unwrap();
        let sequential = SimilarityModel::build(
            &rel,
            &ordering,
            &SimConfig {
                bucket: bucket.clone(),
            },
        );
        let parallel = SimilarityModel::build_parallel(&rel, &ordering, &SimConfig { bucket });
        for attr in schema.attr_ids() {
            match (sequential.matrix(attr), parallel.matrix(attr)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.values(), b.values());
                    assert_eq!(a.raw_sims(), b.raw_sims());
                }
                other => panic!("matrix presence mismatch: {other:?}"),
            }
            assert_eq!(sequential.bucket_spec(attr), parallel.bucket_spec(attr));
        }
    }

    #[test]
    fn similar_models_score_higher_than_dissimilar() {
        let m = model();
        let camry_accord = m.value_similarity(AttrId(1), "Camry", "Accord");
        let camry_f150 = m.value_similarity(AttrId(1), "Camry", "F150");
        assert!(
            camry_accord > camry_f150,
            "Camry~Accord={camry_accord} should beat Camry~F150={camry_f150}"
        );
        assert!(camry_accord > 0.0);
    }

    #[test]
    fn vsim_is_symmetric_and_unit_diagonal() {
        let m = model();
        let ab = m.value_similarity(AttrId(0), "Toyota", "Honda");
        let ba = m.value_similarity(AttrId(0), "Honda", "Toyota");
        assert!((ab - ba).abs() < 1e-15);
        assert_eq!(m.value_similarity(AttrId(0), "Toyota", "Toyota"), 1.0);
    }

    #[test]
    fn unknown_values_score_zero_unless_identical() {
        let m = model();
        assert_eq!(m.value_similarity(AttrId(0), "Lada", "Toyota"), 0.0);
        assert_eq!(m.value_similarity(AttrId(0), "Lada", "Lada"), 1.0);
    }

    #[test]
    fn numeric_attribute_has_no_matrix() {
        let m = model();
        assert!(m.matrix(AttrId(2)).is_none());
        assert!(m.matrix(AttrId(1)).is_some());
    }

    #[test]
    fn top_similar_is_sorted_and_excludes_self() {
        let m = model();
        let top = m.matrix(AttrId(1)).unwrap().top_similar("Camry", 2);
        assert_eq!(top.len(), 2);
        assert!(top.iter().all(|(v, _)| v != "Camry"));
        assert!(top[0].1 >= top[1].1);
        assert_eq!(top[0].0, "Accord");
        // Unknown value yields empty list.
        assert!(m
            .matrix(AttrId(1))
            .unwrap()
            .top_similar("Vega", 3)
            .is_empty());
    }

    #[test]
    fn query_similarity_weights_bound_attributes() {
        let m = model();
        let schema = m.schema().clone();
        let q = ImpreciseQuery::builder(&schema)
            .like("Model", Value::cat("Camry"))
            .unwrap()
            .like("Price", Value::num(9000.0))
            .unwrap()
            .build()
            .unwrap();
        let exact = Tuple::new(
            &schema,
            vec![
                Value::cat("Toyota"),
                Value::cat("Camry"),
                Value::num(9000.0),
                Value::cat("White"),
            ],
        )
        .unwrap();
        assert!((m.query_similarity(&q, &exact) - 1.0).abs() < 1e-12);

        let near = Tuple::new(
            &schema,
            vec![
                Value::cat("Honda"),
                Value::cat("Accord"),
                Value::num(9200.0),
                Value::cat("White"),
            ],
        )
        .unwrap();
        let far = Tuple::new(
            &schema,
            vec![
                Value::cat("Ford"),
                Value::cat("F150"),
                Value::num(26000.0),
                Value::cat("Red"),
            ],
        )
        .unwrap();
        let s_near = m.query_similarity(&q, &near);
        let s_far = m.query_similarity(&q, &far);
        assert!(s_near > s_far);
        assert!((0.0..=1.0).contains(&s_near));
        assert!((0.0..=1.0).contains(&s_far));
    }

    #[test]
    fn tuple_similarity_self_is_one() {
        let m = model();
        let schema = m.schema().clone();
        let t = Tuple::new(
            &schema,
            vec![
                Value::cat("Toyota"),
                Value::cat("Camry"),
                Value::num(9000.0),
                Value::cat("White"),
            ],
        )
        .unwrap();
        let attrs: Vec<AttrId> = schema.attr_ids().collect();
        assert!((m.tuple_similarity(&t, &t, &attrs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tuple_similarity_ignores_null_base_attrs() {
        let m = model();
        let schema = m.schema().clone();
        let base = Tuple::new(
            &schema,
            vec![Value::Null, Value::cat("Camry"), Value::Null, Value::Null],
        )
        .unwrap();
        let other = Tuple::new(
            &schema,
            vec![
                Value::cat("Honda"),
                Value::cat("Camry"),
                Value::num(1.0),
                Value::cat("Red"),
            ],
        )
        .unwrap();
        let attrs: Vec<AttrId> = schema.attr_ids().collect();
        // Only Model is bound on the base side, and it matches exactly.
        assert!((m.tuple_similarity(&base, &other, &attrs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn null_candidate_values_score_zero() {
        let m = model();
        let schema = m.schema().clone();
        let q = ImpreciseQuery::builder(&schema)
            .like("Model", Value::cat("Camry"))
            .unwrap()
            .build()
            .unwrap();
        let t = Tuple::new(&schema, vec![Value::Null; 4]).unwrap();
        assert_eq!(m.query_similarity(&q, &t), 0.0);
    }
}
