//! CLI for the workspace's static-analysis suite.
//!
//! ```text
//! cargo xtask lint                 # lint the workspace, exit 1 on errors
//! cargo xtask lint --deny-warnings # promote warnings (indexing) too
//! cargo xtask lint --root DIR      # lint a workspace-shaped tree (fixtures)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(args.collect()),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask lint [--root DIR] [--deny-warnings]");
}

fn lint(args: Vec<String>) -> ExitCode {
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let mut deny_warnings = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--deny-warnings" => deny_warnings = true,
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }

    let report = match xtask::lint_root(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: failed to lint {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    for diag in &report.diagnostics {
        print!("{}", xtask::render(diag));
        println!();
    }
    let (errors, warnings) = (report.errors(), report.warnings());
    if errors > 0 || warnings > 0 {
        println!(
            "aimq-lint: {errors} error{}, {warnings} warning{}",
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
        );
    } else {
        println!("aimq-lint: clean");
    }
    if report.failed(deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
