//! CLI for the workspace's static-analysis suite.
//!
//! ```text
//! cargo xtask lint                 # lint the workspace, exit 1 on errors
//! cargo xtask lint --deny-warnings # promote warnings (indexing) too
//! cargo xtask lint --root DIR      # lint a workspace-shaped tree (fixtures)
//! cargo xtask lint --json          # machine-readable findings on stdout
//! cargo xtask lint --changed       # scope per-file findings to git-changed files
//! cargo xtask lint --explain RULE  # print a rule's rationale and remedy
//! cargo xtask probes               # print the probing entry-point list
//! cargo xtask wire                 # print the JSON wire-schema inventory
//! cargo xtask pin --write          # regenerate both pinned artifacts
//! cargo xtask annotate lint.json   # GitHub ::error annotations from --json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(args.collect()),
        Some("probes") => probes(args.collect()),
        Some("wire") => wire(args.collect()),
        Some("pin") => pin(args.collect()),
        Some("annotate") => annotate(args.collect()),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask lint [--root DIR] [--deny-warnings] [--json] [--changed] \
         [--explain RULE]\n\
         \x20      cargo xtask probes [--root DIR] [--write]\n\
         \x20      cargo xtask wire [--root DIR] [--write]\n\
         \x20      cargo xtask pin [--root DIR] [--write]\n\
         \x20      cargo xtask annotate <lint.json>"
    );
}

fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Files git reports as modified (vs HEAD) or untracked, relative to
/// `root`. `None` when git is unavailable — the caller falls back to
/// the full workspace.
fn git_changed_files(root: &std::path::Path) -> Option<std::collections::BTreeSet<PathBuf>> {
    let run = |args: &[&str]| -> Option<String> {
        let out = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(args)
            .output()
            .ok()?;
        out.status
            .success()
            .then(|| String::from_utf8_lossy(&out.stdout).into_owned())
    };
    let diffed = run(&["diff", "--name-only", "HEAD"])?;
    let untracked = run(&["ls-files", "--others", "--exclude-standard"])?;
    Some(
        diffed
            .lines()
            .chain(untracked.lines())
            .filter(|l| !l.is_empty())
            .map(PathBuf::from)
            .collect(),
    )
}

/// Rules whose findings depend on workspace-wide state: a change in
/// one file can surface a finding in an unchanged file, so `--changed`
/// never filters them out.
const CROSS_FILE_RULES: &[&str] = &[
    "lock-discipline",
    "layering",
    "probe-effect",
    "wire-drift",
    "error-surface",
];

fn explain(rule: &str) -> ExitCode {
    let Some(info) = xtask::rule_info(rule) else {
        eprintln!(
            "unknown rule `{rule}` (known: {})",
            xtask::RULES
                .iter()
                .map(|r| r.id)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(2);
    };
    let severity = match info.severity {
        xtask::Severity::Error => "error",
        xtask::Severity::Warning => "warning",
    };
    println!("aimq::{} ({severity})", info.id);
    println!("  catches:   {}", info.summary);
    println!("  rationale: {}", info.rationale);
    println!("  remedy:    {}", info.remedy);
    ExitCode::SUCCESS
}

fn lint(args: Vec<String>) -> ExitCode {
    let mut root = default_root();
    let mut deny_warnings = false;
    let mut json = false;
    let mut changed = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--deny-warnings" => deny_warnings = true,
            "--json" => json = true,
            "--changed" => changed = true,
            "--explain" => match it.next() {
                Some(rule) => return explain(&rule),
                None => {
                    eprintln!("--explain requires a rule id");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }

    let mut report = match xtask::lint_root(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: failed to lint {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    // `--changed` keeps fast local runs readable: per-file findings are
    // scoped to git-modified files, while cross-file rules (L5/L7/L8)
    // always report workspace-wide — an edit here can break an
    // invariant there.
    if changed {
        match git_changed_files(&root) {
            Some(files) => {
                let before = report.diagnostics.len();
                report.diagnostics.retain(|d| {
                    CROSS_FILE_RULES.contains(&d.rule.as_str()) || files.contains(&d.path)
                });
                if !json {
                    eprintln!(
                        "aimq-lint: --changed scoped {} per-file finding(s) to {} changed \
                         file(s); cross-file rules ({}) stay workspace-wide",
                        before - report.diagnostics.len(),
                        files.len(),
                        CROSS_FILE_RULES.join(", ")
                    );
                }
            }
            None => eprintln!(
                "aimq-lint: --changed requested but git is unavailable here; \
                 linting the full workspace"
            ),
        }
    }

    if json {
        println!("{}", xtask::json::to_json(&report));
    } else {
        for diag in &report.diagnostics {
            print!("{}", xtask::render(diag));
            println!();
        }
        let (errors, warnings) = (report.errors(), report.warnings());
        if errors > 0 || warnings > 0 {
            println!(
                "aimq-lint: {errors} error{}, {warnings} warning{}",
                if errors == 1 { "" } else { "s" },
                if warnings == 1 { "" } else { "s" },
            );
        } else {
            println!("aimq-lint: clean");
        }
    }
    if report.failed(deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Print the sorted probing entry-point list (`<path> <fn>` per line),
/// the format checked into `results/PROBE_ENTRYPOINTS.txt`; CI diffs
/// the two so a new probe path requires an explicit commit.
fn probes(args: Vec<String>) -> ExitCode {
    let mut root = default_root();
    let mut write = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--write" => write = true,
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    match xtask::probe_summary(&root) {
        Ok(summary) => {
            let mut rendered = String::new();
            for entry in &summary.entries {
                rendered.push_str(&format!("{} {}\n", entry.path.display(), entry.fn_name));
            }
            if write {
                let pin = root.join("results").join("PROBE_ENTRYPOINTS.txt");
                if let Err(err) = std::fs::write(&pin, &rendered) {
                    eprintln!("error: failed to write {}: {err}", pin.display());
                    return ExitCode::from(2);
                }
                eprintln!(
                    "wrote {} entries to {}",
                    summary.entries.len(),
                    pin.display()
                );
            } else {
                print!("{rendered}");
            }
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: failed to scan {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Parse the shared `[--root DIR] [--write]` tail used by the pinned-
/// artifact commands.
fn pin_flags(args: Vec<String>) -> Result<(PathBuf, bool), ExitCode> {
    let mut root = default_root();
    let mut write = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory");
                    return Err(ExitCode::from(2));
                }
            },
            "--write" => write = true,
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
                return Err(ExitCode::from(2));
            }
        }
    }
    Ok((root, write))
}

/// Print (or, with `--write`, pin) the JSON wire-schema inventory —
/// the exact text CI diffs against `results/WIRE_SCHEMA.json`.
fn wire(args: Vec<String>) -> ExitCode {
    let (root, write) = match pin_flags(args) {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    match xtask::wire_inventory(&root) {
        Ok(rendered) => {
            if write {
                let pin = root.join("results").join("WIRE_SCHEMA.json");
                if let Some(dir) = pin.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                if let Err(err) = std::fs::write(&pin, &rendered) {
                    eprintln!("error: failed to write {}: {err}", pin.display());
                    return ExitCode::from(2);
                }
                eprintln!("wrote wire schema inventory to {}", pin.display());
            } else {
                print!("{rendered}");
            }
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: failed to scan {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Regenerate every pinned artifact in one documented entry point:
/// `results/PROBE_ENTRYPOINTS.txt` (L8) and `results/WIRE_SCHEMA.json`
/// (L11). Without `--write`, prints both with headers so CI and humans
/// can eyeball the would-be pins.
fn pin(args: Vec<String>) -> ExitCode {
    let (root, write) = match pin_flags(args) {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    let probes_rendered = match xtask::probe_summary(&root) {
        Ok(summary) => {
            let mut rendered = String::new();
            for entry in &summary.entries {
                rendered.push_str(&format!("{} {}\n", entry.path.display(), entry.fn_name));
            }
            rendered
        }
        Err(err) => {
            eprintln!("error: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    let wire_rendered = match xtask::wire_inventory(&root) {
        Ok(rendered) => rendered,
        Err(err) => {
            eprintln!("error: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    if write {
        let results = root.join("results");
        let _ = std::fs::create_dir_all(&results);
        for (name, rendered) in [
            ("PROBE_ENTRYPOINTS.txt", &probes_rendered),
            ("WIRE_SCHEMA.json", &wire_rendered),
        ] {
            let pin = results.join(name);
            if let Err(err) = std::fs::write(&pin, rendered) {
                eprintln!("error: failed to write {}: {err}", pin.display());
                return ExitCode::from(2);
            }
            eprintln!("pinned {}", pin.display());
        }
    } else {
        println!("# results/PROBE_ENTRYPOINTS.txt");
        print!("{probes_rendered}");
        println!("# results/WIRE_SCHEMA.json");
        print!("{wire_rendered}");
    }
    ExitCode::SUCCESS
}

/// Turn `--json` output into GitHub Actions annotations. Exit status
/// reflects only I/O and parse health — CI fails via the lint step
/// itself, so annotating never masks (or doubles) that signal.
fn annotate(args: Vec<String>) -> ExitCode {
    let [path] = args.as_slice() else {
        eprintln!("usage: cargo xtask annotate <lint.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("error: cannot read {path}: {err}");
            return ExitCode::from(2);
        }
    };
    let doc = match xtask::json::parse(&text) {
        Ok(doc) => doc,
        Err(err) => {
            eprintln!("error: {path} is not valid lint JSON: {err}");
            return ExitCode::from(2);
        }
    };
    match xtask::json::annotations(&doc) {
        Ok(ann) => {
            print!("{ann}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(2)
        }
    }
}
