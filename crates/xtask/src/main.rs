//! CLI for the workspace's static-analysis suite.
//!
//! ```text
//! cargo xtask lint                 # lint the workspace, exit 1 on errors
//! cargo xtask lint --deny-warnings # promote warnings (indexing) too
//! cargo xtask lint --root DIR      # lint a workspace-shaped tree (fixtures)
//! cargo xtask lint --json          # machine-readable findings on stdout
//! cargo xtask lint --explain RULE  # print a rule's rationale and remedy
//! cargo xtask annotate lint.json   # GitHub ::error annotations from --json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(args.collect()),
        Some("annotate") => annotate(args.collect()),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask lint [--root DIR] [--deny-warnings] [--json] [--explain RULE]\n\
         \x20      cargo xtask annotate <lint.json>"
    );
}

fn explain(rule: &str) -> ExitCode {
    let Some(info) = xtask::rule_info(rule) else {
        eprintln!(
            "unknown rule `{rule}` (known: {})",
            xtask::RULES
                .iter()
                .map(|r| r.id)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(2);
    };
    let severity = match info.severity {
        xtask::Severity::Error => "error",
        xtask::Severity::Warning => "warning",
    };
    println!("aimq::{} ({severity})", info.id);
    println!("  catches:   {}", info.summary);
    println!("  rationale: {}", info.rationale);
    println!("  remedy:    {}", info.remedy);
    ExitCode::SUCCESS
}

fn lint(args: Vec<String>) -> ExitCode {
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let mut deny_warnings = false;
    let mut json = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--deny-warnings" => deny_warnings = true,
            "--json" => json = true,
            "--explain" => match it.next() {
                Some(rule) => return explain(&rule),
                None => {
                    eprintln!("--explain requires a rule id");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }

    let report = match xtask::lint_root(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: failed to lint {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", xtask::json::to_json(&report));
    } else {
        for diag in &report.diagnostics {
            print!("{}", xtask::render(diag));
            println!();
        }
        let (errors, warnings) = (report.errors(), report.warnings());
        if errors > 0 || warnings > 0 {
            println!(
                "aimq-lint: {errors} error{}, {warnings} warning{}",
                if errors == 1 { "" } else { "s" },
                if warnings == 1 { "" } else { "s" },
            );
        } else {
            println!("aimq-lint: clean");
        }
    }
    if report.failed(deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Turn `--json` output into GitHub Actions annotations. Exit status
/// reflects only I/O and parse health — CI fails via the lint step
/// itself, so annotating never masks (or doubles) that signal.
fn annotate(args: Vec<String>) -> ExitCode {
    let [path] = args.as_slice() else {
        eprintln!("usage: cargo xtask annotate <lint.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("error: cannot read {path}: {err}");
            return ExitCode::from(2);
        }
    };
    let doc = match xtask::json::parse(&text) {
        Ok(doc) => doc,
        Err(err) => {
            eprintln!("error: {path} is not valid lint JSON: {err}");
            return ExitCode::from(2);
        }
    };
    match xtask::json::annotations(&doc) {
        Ok(ann) => {
            print!("{ann}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(2)
        }
    }
}
