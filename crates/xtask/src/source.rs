//! Lexical analysis for the lint pass.
//!
//! The container has no crates.io access, so `syn` is unavailable;
//! instead the linter runs on a hand-rolled scan that is precise
//! enough for the rule set: a byte-class mask separating code from
//! comments and string/char literals, a flat token stream over the
//! code bytes, `#[cfg(test)]`/`#[test]` region detection by brace
//! matching, and `aimq-lint: allow(...)` suppression parsing.

/// Classification of every source byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteClass {
    /// Compiled code (incl. whitespace between tokens).
    Code,
    /// Any comment form.
    Comment,
    /// Interior of a string, raw string, byte string or char literal.
    Literal,
}

/// One lexical token drawn from the code bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text (identifier/number) or a single punctuation char.
    pub text: String,
    /// Byte offset in the file.
    pub offset: usize,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (bytes).
    pub col: usize,
    /// `true` for identifier-shaped tokens.
    pub is_ident: bool,
}

/// A scanned source file ready for rule matching.
#[derive(Debug)]
pub struct ScannedFile {
    /// Raw source text.
    pub text: String,
    /// Per-byte classification, same length as `text`.
    pub classes: Vec<ByteClass>,
    /// Code tokens in order.
    pub tokens: Vec<Token>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Parsed suppression directives.
    pub allows: Vec<AllowDirective>,
    /// Parsed `aimq-lock:` family/use annotations.
    pub lock_directives: Vec<LockDirective>,
    /// Parsed `aimq-atomic:` role annotations.
    pub atomic_directives: Vec<AtomicDirective>,
    /// Parsed `aimq-probe: entry` annotations (L8 probe effects).
    pub probe_directives: Vec<ProbeDirective>,
    /// Parsed `aimq-arith:` annotations (L10 counter arithmetic).
    pub arith_directives: Vec<ArithDirective>,
    /// Parsed `aimq-wire: optional` annotations (L11 wire drift).
    pub wire_directives: Vec<WireDirective>,
    /// Parsed `aimq-fault: sink` annotations (L13 degradation flow).
    pub fault_directives: Vec<FaultDirective>,
    /// Malformed directives (missing justification, bad syntax).
    pub bad_directives: Vec<(usize, String)>,
}

/// A parsed `// aimq-lint: allow(rule, ...) -- justification` comment.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Line the directive text sits on (1-based).
    pub line: usize,
    /// The line of code the suppression applies to (1-based).
    pub target_line: usize,
    /// Rule identifiers inside `allow(...)`.
    pub rules: Vec<String>,
    /// Justification text after `--`.
    pub justification: String,
}

/// What an `aimq-lock:` annotation asserts (L5 lock discipline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockAnnotation {
    /// `family(<name>)` on a `Mutex` field declaration: every guard of
    /// that field belongs to the named workspace-global lock family.
    Family(String),
    /// `use(<name>)` on an acquisition site whose receiver the scanner
    /// cannot trace back to an annotated field (e.g. a local borrowed
    /// out of a helper): asserts the acquired family explicitly.
    Use(String),
}

/// A parsed `// aimq-lock: family(..) -- why` / `// aimq-lock: use(..)`.
#[derive(Debug, Clone)]
pub struct LockDirective {
    /// Line the directive text sits on (1-based).
    pub line: usize,
    /// The line of code the annotation applies to (1-based).
    pub target_line: usize,
    /// Family declaration or acquisition-site assertion.
    pub annotation: LockAnnotation,
    /// Justification text after `--` (required for `family`).
    pub justification: String,
}

/// Role taxonomy for atomic fields (L6 atomics audit). The role decides
/// which memory orderings the lint accepts on the field's operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicRole {
    /// Monotone, independently meaningful tally: `Relaxed` everywhere
    /// is correct (per-location modification order is all that matters).
    Counter,
    /// Cross-thread publication latch: stores must be `Release`-or-
    /// stronger, loads `Acquire`-or-stronger; `Relaxed` is an error.
    Flag,
    /// Seqlock protocol word (or the slots it versions): `Relaxed` is
    /// permitted only alongside an Acquire/Release op or fence in the
    /// same function, and the field must exhibit an Acquire/Release
    /// pair somewhere in its file.
    Seqlock,
}

impl AtomicRole {
    /// Parse a role keyword.
    pub fn parse(s: &str) -> Option<AtomicRole> {
        match s {
            "counter" => Some(AtomicRole::Counter),
            "flag" => Some(AtomicRole::Flag),
            "seqlock" => Some(AtomicRole::Seqlock),
            _ => None,
        }
    }

    /// The keyword form used in annotations.
    pub fn as_str(self) -> &'static str {
        match self {
            AtomicRole::Counter => "counter",
            AtomicRole::Flag => "flag",
            AtomicRole::Seqlock => "seqlock",
        }
    }
}

/// A parsed `// aimq-atomic: <role> -- justification` annotation.
#[derive(Debug, Clone)]
pub struct AtomicDirective {
    /// Line the directive text sits on (1-based).
    pub line: usize,
    /// The line of code the annotation applies to (1-based).
    pub target_line: usize,
    /// Declared role.
    pub role: AtomicRole,
    /// Justification text after `--`.
    pub justification: String,
}

/// A parsed `// aimq-probe: entry -- justification` annotation (L8).
///
/// Marks a function that directly calls the `WebDatabase::try_query`
/// boundary as a *sanctioned* probing entry point; the justification
/// must say where its budget/degradation accounting lives. The lint
/// errors on entry points without this annotation and on stale
/// annotations whose function no longer probes.
#[derive(Debug, Clone)]
pub struct ProbeDirective {
    /// Line the directive text sits on (1-based).
    pub line: usize,
    /// The line of code (the `fn` line) the annotation applies to.
    pub target_line: usize,
    /// Justification text after `--`.
    pub justification: String,
}

/// A parsed `// aimq-wire: optional -- justification` annotation (L11).
///
/// Marks a JSON key that is emitted only under a conditional (a match
/// arm or `if` branch inside a `to_json()` body) as *intentionally*
/// optional on the wire; the justification must say when clients can
/// expect the key to be absent. The lint errors on conditional keys
/// without this annotation and on stale annotations whose line no
/// longer emits a conditional key.
#[derive(Debug, Clone)]
pub struct WireDirective {
    /// Line the directive text sits on (1-based).
    pub line: usize,
    /// The line of code (the key literal's line) the annotation covers.
    pub target_line: usize,
    /// Justification text after `--`.
    pub justification: String,
}

/// A parsed `// aimq-fault: sink -- justification` annotation (L13).
///
/// Marks a fault-enum construction site whose value reaches accounting
/// through a path the dataflow walk cannot see (stored into a field
/// read elsewhere, threaded through a callback); the justification
/// must say where the accounting lives. The lint errors on constructed
/// faults that reach no sink and on stale annotations whose line no
/// longer constructs a fault.
#[derive(Debug, Clone)]
pub struct FaultDirective {
    /// Line the directive text sits on (1-based).
    pub line: usize,
    /// The line of code (the construction's line) the annotation covers.
    pub target_line: usize,
    /// Justification text after `--`.
    pub justification: String,
}

/// What an `aimq-arith:` annotation asserts (L10 counter arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithAnnotation {
    /// `counter` on a plain-integer field declaration: the field is a
    /// budget/counter/statistic whose arithmetic must not wrap, so
    /// every `+`/`-`/`*` touching it needs `saturating_*`/`checked_*`
    /// (atomic fields annotated `aimq-atomic: counter` are tracked
    /// automatically and do not need this).
    Counter,
    /// `allow` on an arithmetic site: the stated invariant bounds the
    /// operands, so plain arithmetic cannot wrap there.
    Allow,
}

/// A parsed `// aimq-arith: counter|allow -- justification`.
#[derive(Debug, Clone)]
pub struct ArithDirective {
    /// Line the directive text sits on (1-based).
    pub line: usize,
    /// The line of code the annotation applies to (1-based).
    pub target_line: usize,
    /// Tracked-field marker or per-site escape.
    pub annotation: ArithAnnotation,
    /// Justification text after `--`.
    pub justification: String,
}

const DIRECTIVE: &str = "aimq-lint:";
const LOCK_DIRECTIVE: &str = "aimq-lock:";
const ATOMIC_DIRECTIVE: &str = "aimq-atomic:";
const PROBE_DIRECTIVE: &str = "aimq-probe:";
const ARITH_DIRECTIVE: &str = "aimq-arith:";
const WIRE_DIRECTIVE: &str = "aimq-wire:";
const FAULT_DIRECTIVE: &str = "aimq-fault:";

/// Scan `text` into classes, tokens, test regions and suppressions.
pub fn scan(text: &str) -> ScannedFile {
    let classes = classify(text);
    let tokens = tokenize(text, &classes);
    let test_regions = find_test_regions(&tokens);
    let directives = collect_directives(text, &classes);
    ScannedFile {
        text: text.to_string(),
        classes,
        tokens,
        test_regions,
        allows: directives.allows,
        lock_directives: directives.locks,
        atomic_directives: directives.atomics,
        probe_directives: directives.probes,
        arith_directives: directives.ariths,
        wire_directives: directives.wires,
        fault_directives: directives.faults,
        bad_directives: directives.bad,
    }
}

impl ScannedFile {
    /// Is byte offset `pos` inside a test-only item?
    pub fn in_test_region(&self, pos: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| pos >= start && pos < end)
    }

    /// Does a well-formed allow directive cover `rule` on `line`?
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.target_line == line && a.rules.iter().any(|r| r == rule))
    }
}

fn classify(text: &str) -> Vec<ByteClass> {
    let bytes = text.as_bytes();
    let mut classes = vec![ByteClass::Code; bytes.len()];
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    classes[i] = ByteClass::Comment;
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        classes[i] = ByteClass::Comment;
                        classes[i + 1] = ByteClass::Comment;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        classes[i] = ByteClass::Comment;
                        classes[i + 1] = ByteClass::Comment;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        classes[i] = ByteClass::Comment;
                        i += 1;
                    }
                }
            }
            b'"' => i = eat_string(bytes, &mut classes, i),
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                i = eat_raw_or_byte_string(bytes, &mut classes, i);
            }
            b'\'' => i = eat_char_or_lifetime(bytes, &mut classes, i),
            _ => i += 1,
        }
    }
    classes
}

fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    // r"..", r#".."#, b"..", br"..", br#".."#
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    j > i && bytes.get(j) == Some(&b'"')
}

fn eat_string(bytes: &[u8], classes: &mut [ByteClass], start: usize) -> usize {
    classes[start] = ByteClass::Literal;
    let mut i = start + 1;
    while i < bytes.len() {
        classes[i] = ByteClass::Literal;
        match bytes[i] {
            b'\\' => {
                if i + 1 < bytes.len() {
                    classes[i + 1] = ByteClass::Literal;
                }
                i += 2;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn eat_raw_or_byte_string(bytes: &[u8], classes: &mut [ByteClass], start: usize) -> usize {
    let mut i = start;
    if bytes[i] == b'b' {
        classes[i] = ByteClass::Literal;
        i += 1;
    }
    let raw = bytes.get(i) == Some(&b'r');
    if raw {
        classes[i] = ByteClass::Literal;
        i += 1;
    }
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        classes[i] = ByteClass::Literal;
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    classes[i] = ByteClass::Literal;
    i += 1;
    while i < bytes.len() {
        classes[i] = ByteClass::Literal;
        if !raw && bytes[i] == b'\\' {
            if i + 1 < bytes.len() {
                classes[i + 1] = ByteClass::Literal;
            }
            i += 2;
            continue;
        }
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                for c in classes.iter_mut().take(j).skip(i) {
                    *c = ByteClass::Literal;
                }
                return j;
            }
        }
        i += 1;
    }
    i
}

fn eat_char_or_lifetime(bytes: &[u8], classes: &mut [ByteClass], start: usize) -> usize {
    // `'a` (lifetime) vs `'x'` / `'\n'` (char literal). A lifetime is a
    // quote followed by an identifier NOT closed by another quote.
    let next = bytes.get(start + 1).copied();
    match next {
        Some(b'\\') => {
            // Escaped char literal: consume through the closing quote.
            let mut i = start;
            classes[i] = ByteClass::Literal;
            i += 1;
            while i < bytes.len() {
                classes[i] = ByteClass::Literal;
                if bytes[i] == b'\\' {
                    if i + 1 < bytes.len() {
                        classes[i + 1] = ByteClass::Literal;
                    }
                    i += 2;
                    continue;
                }
                if bytes[i] == b'\'' {
                    return i + 1;
                }
                i += 1;
            }
            i
        }
        Some(_) if bytes.get(start + 2) == Some(&b'\'') => {
            // 'x'
            classes[start] = ByteClass::Literal;
            classes[start + 1] = ByteClass::Literal;
            classes[start + 2] = ByteClass::Literal;
            start + 3
        }
        _ => start + 1, // lifetime or stray quote: leave as code
    }
}

fn tokenize(text: &str, classes: &[ByteClass]) -> Vec<Token> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let (mut line, mut col) = (1usize, 1usize);
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if classes[i] != ByteClass::Code || b.is_ascii_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        if b.is_ascii_alphabetic() || b == b'_' || b.is_ascii_digit() {
            let start = i;
            let (start_line, start_col) = (line, col);
            while i < bytes.len()
                && classes[i] == ByteClass::Code
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
                col += 1;
            }
            tokens.push(Token {
                text: text[start..i].to_string(),
                offset: start,
                line: start_line,
                col: start_col,
                is_ident: !bytes[start].is_ascii_digit(),
            });
        } else {
            tokens.push(Token {
                text: (b as char).to_string(),
                offset: i,
                line,
                col,
                is_ident: false,
            });
            i += 1;
            col += 1;
        }
    }
    tokens
}

/// Locate `#[cfg(test)]` / `#[test]` attributes and return the byte
/// span of the item each one decorates (through its closing brace).
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut k = 0;
    while k < tokens.len() {
        let matched = match_attr(tokens, k, &["cfg", "(", "test", ")"])
            .or_else(|| match_attr(tokens, k, &["test"]));
        let Some(after_attr) = matched else {
            k += 1;
            continue;
        };
        // Scan forward past further attributes to the item body.
        let mut j = after_attr;
        let mut depth = 0usize;
        let mut end = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = Some(tokens[j].offset + 1);
                        break;
                    }
                }
                ";" if depth == 0 => {
                    // `mod foo;` or an associated const — no inline body.
                    end = Some(tokens[j].offset + 1);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let start = tokens[k].offset;
        regions.push((start, end.unwrap_or(usize::MAX)));
        k = after_attr;
    }
    regions
}

/// If `tokens[k..]` starts `#` `[` `<inner...>` `]`, return the index
/// just past `]`.
fn match_attr(tokens: &[Token], k: usize, inner: &[&str]) -> Option<usize> {
    if tokens.get(k)?.text != "#" || tokens.get(k + 1)?.text != "[" {
        return None;
    }
    for (n, want) in inner.iter().enumerate() {
        if tokens.get(k + 2 + n)?.text != *want {
            return None;
        }
    }
    let close = k + 2 + inner.len();
    (tokens.get(close)?.text == "]").then_some(close + 1)
}

/// Everything `collect_directives` extracts from the comment channel.
struct Directives {
    allows: Vec<AllowDirective>,
    locks: Vec<LockDirective>,
    atomics: Vec<AtomicDirective>,
    probes: Vec<ProbeDirective>,
    ariths: Vec<ArithDirective>,
    wires: Vec<WireDirective>,
    faults: Vec<FaultDirective>,
    bad: Vec<(usize, String)>,
}

fn collect_directives(text: &str, classes: &[ByteClass]) -> Directives {
    let mut out = Directives {
        allows: Vec::new(),
        locks: Vec::new(),
        atomics: Vec::new(),
        probes: Vec::new(),
        ariths: Vec::new(),
        wires: Vec::new(),
        faults: Vec::new(),
        bad: Vec::new(),
    };
    let mut offset = 0usize;
    let lines: Vec<&str> = text.split_inclusive('\n').collect();

    // Per-line: does the line hold any code bytes, and the comment text.
    let mut line_info = Vec::with_capacity(lines.len());
    for raw in &lines {
        let start = offset;
        offset += raw.len();
        let mut has_code = false;
        let mut comment = String::new();
        for (n, b) in raw.bytes().enumerate() {
            match classes[start + n] {
                ByteClass::Comment => comment.push(b as char),
                ByteClass::Code if !b.is_ascii_whitespace() => has_code = true,
                _ => {}
            }
        }
        line_info.push((has_code, comment));
    }

    // A trailing directive guards its own line; a standalone comment
    // line guards the next line bearing code.
    let target_of = |idx: usize| -> usize {
        let line = idx + 1;
        if line_info[idx].0 {
            line
        } else {
            line_info
                .iter()
                .enumerate()
                .skip(idx + 1)
                .find(|(_, (code, _))| *code)
                .map(|(n, _)| n + 1)
                .unwrap_or(line)
        }
    };

    for idx in 0..line_info.len() {
        let comment = line_info[idx].1.clone();
        let line = idx + 1;
        if let Some(pos) = comment.find(DIRECTIVE) {
            let body = comment[pos + DIRECTIVE.len()..].trim();
            match parse_allow(body) {
                Ok((rules, justification)) => out.allows.push(AllowDirective {
                    line,
                    target_line: target_of(idx),
                    rules,
                    justification,
                }),
                Err(msg) => out.bad.push((line, msg)),
            }
        } else if let Some(pos) = comment.find(LOCK_DIRECTIVE) {
            let body = comment[pos + LOCK_DIRECTIVE.len()..].trim();
            match parse_lock(body) {
                Ok((annotation, justification)) => out.locks.push(LockDirective {
                    line,
                    target_line: target_of(idx),
                    annotation,
                    justification,
                }),
                Err(msg) => out.bad.push((line, msg)),
            }
        } else if let Some(pos) = comment.find(ATOMIC_DIRECTIVE) {
            let body = comment[pos + ATOMIC_DIRECTIVE.len()..].trim();
            match parse_atomic(body) {
                Ok((role, justification)) => out.atomics.push(AtomicDirective {
                    line,
                    target_line: target_of(idx),
                    role,
                    justification,
                }),
                Err(msg) => out.bad.push((line, msg)),
            }
        } else if let Some(pos) = comment.find(PROBE_DIRECTIVE) {
            let body = comment[pos + PROBE_DIRECTIVE.len()..].trim();
            match parse_probe(body) {
                Ok(justification) => out.probes.push(ProbeDirective {
                    line,
                    target_line: target_of(idx),
                    justification,
                }),
                Err(msg) => out.bad.push((line, msg)),
            }
        } else if let Some(pos) = comment.find(ARITH_DIRECTIVE) {
            let body = comment[pos + ARITH_DIRECTIVE.len()..].trim();
            match parse_arith(body) {
                Ok((annotation, justification)) => out.ariths.push(ArithDirective {
                    line,
                    target_line: target_of(idx),
                    annotation,
                    justification,
                }),
                Err(msg) => out.bad.push((line, msg)),
            }
        } else if let Some(pos) = comment.find(WIRE_DIRECTIVE) {
            let body = comment[pos + WIRE_DIRECTIVE.len()..].trim();
            match parse_wire(body) {
                Ok(justification) => out.wires.push(WireDirective {
                    line,
                    target_line: target_of(idx),
                    justification,
                }),
                Err(msg) => out.bad.push((line, msg)),
            }
        } else if let Some(pos) = comment.find(FAULT_DIRECTIVE) {
            let body = comment[pos + FAULT_DIRECTIVE.len()..].trim();
            match parse_fault(body) {
                Ok(justification) => out.faults.push(FaultDirective {
                    line,
                    target_line: target_of(idx),
                    justification,
                }),
                Err(msg) => out.bad.push((line, msg)),
            }
        }
    }
    out
}

/// Parse `allow(rule, ...) -- justification`.
fn parse_allow(body: &str) -> Result<(Vec<String>, String), String> {
    let rest = body
        .strip_prefix("allow")
        .ok_or_else(|| format!("expected `allow(...)` after `{DIRECTIVE}`"))?
        .trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_string())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed `allow(` directive".to_string())?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("`allow()` names no rules".to_string());
    }
    let tail = rest[close + 1..].trim();
    let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Err(
            "suppression requires a justification: `aimq-lint: allow(rule) -- <why this is safe>`"
                .to_string(),
        );
    }
    Ok((rules, justification.to_string()))
}

/// Validate a family name: lowercase kebab-case identifiers only, so
/// families read as workspace-global class names (`cache-stripe`).
fn valid_family_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_')
}

/// Parse `family(<name>) -- why` or `use(<name>) [-- why]`.
fn parse_lock(body: &str) -> Result<(LockAnnotation, String), String> {
    let (kind, rest) = if let Some(rest) = body.strip_prefix("family") {
        ("family", rest.trim_start())
    } else if let Some(rest) = body.strip_prefix("use") {
        ("use", rest.trim_start())
    } else {
        return Err(format!(
            "expected `family(<name>)` or `use(<name>)` after `{LOCK_DIRECTIVE}`"
        ));
    };
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| format!("expected `(` after `{kind}`"))?;
    let close = rest
        .find(')')
        .ok_or_else(|| format!("unclosed `{kind}(` directive"))?;
    let name = rest[..close].trim().to_string();
    if !valid_family_name(&name) {
        return Err(format!(
            "lock family name `{name}` must be non-empty lowercase kebab-case"
        ));
    }
    let tail = rest[close + 1..].trim();
    let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if kind == "family" && justification.is_empty() {
        return Err(format!(
            "lock family declaration requires a justification: \
             `{LOCK_DIRECTIVE} family({name}) -- <what this lock guards>`"
        ));
    }
    let annotation = match kind {
        "family" => LockAnnotation::Family(name),
        _ => LockAnnotation::Use(name),
    };
    Ok((annotation, justification.to_string()))
}

/// Parse `<role> -- justification` where role ∈ {counter, flag, seqlock}.
fn parse_atomic(body: &str) -> Result<(AtomicRole, String), String> {
    let (word, tail) = match body.find(|c: char| c.is_ascii_whitespace()) {
        Some(n) => (&body[..n], body[n..].trim()),
        None => (body, ""),
    };
    let role = AtomicRole::parse(word).ok_or_else(|| {
        format!("unknown atomic role `{word}`: expected `counter`, `flag` or `seqlock`")
    })?;
    let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Err(format!(
            "atomic role annotation requires a justification: \
             `{ATOMIC_DIRECTIVE} {word} -- <why this role / ordering is sound>`"
        ));
    }
    Ok((role, justification.to_string()))
}

/// Parse `entry -- justification`.
fn parse_probe(body: &str) -> Result<String, String> {
    let tail = body
        .strip_prefix("entry")
        .ok_or_else(|| format!("expected `entry` after `{PROBE_DIRECTIVE}`"))?
        .trim();
    let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Err(format!(
            "probing entry point requires a justification: \
             `{PROBE_DIRECTIVE} entry -- <where budget/degradation accounting lives>`"
        ));
    }
    Ok(justification.to_string())
}

/// Parse `optional -- justification`.
fn parse_wire(body: &str) -> Result<String, String> {
    let tail = body
        .strip_prefix("optional")
        .ok_or_else(|| format!("expected `optional` after `{WIRE_DIRECTIVE}`"))?
        .trim();
    let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Err(format!(
            "optional wire key requires a justification: \
             `{WIRE_DIRECTIVE} optional -- <when clients see the key absent>`"
        ));
    }
    Ok(justification.to_string())
}

/// Parse `sink -- justification`.
fn parse_fault(body: &str) -> Result<String, String> {
    let tail = body
        .strip_prefix("sink")
        .ok_or_else(|| format!("expected `sink` after `{FAULT_DIRECTIVE}`"))?
        .trim();
    let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Err(format!(
            "fault sink annotation requires a justification: \
             `{FAULT_DIRECTIVE} sink -- <where the accounting lives>`"
        ));
    }
    Ok(justification.to_string())
}

/// Parse `counter -- why` or `allow -- invariant`.
fn parse_arith(body: &str) -> Result<(ArithAnnotation, String), String> {
    let (word, tail) = match body.find(|c: char| c.is_ascii_whitespace()) {
        Some(n) => (&body[..n], body[n..].trim()),
        None => (body, ""),
    };
    let annotation = match word {
        "counter" => ArithAnnotation::Counter,
        "allow" => ArithAnnotation::Allow,
        _ => {
            return Err(format!(
                "unknown arith annotation `{word}`: expected `counter` or `allow`"
            ))
        }
    };
    let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Err(match annotation {
            ArithAnnotation::Counter => format!(
                "tracked-counter annotation requires a justification: \
                 `{ARITH_DIRECTIVE} counter -- <what this field counts>`"
            ),
            ArithAnnotation::Allow => format!(
                "arith escape requires the bounding invariant: \
                 `{ARITH_DIRECTIVE} allow -- <why these operands cannot wrap>`"
            ),
        });
    }
    Ok((annotation, justification.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_masked() {
        let src = "let x = \"unwrap()\"; // .unwrap() here\nlet y = 1;";
        let f = scan(src);
        assert!(!f.tokens.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn raw_strings_and_chars_are_masked() {
        let src = "let p = r#\"panic!\"#; let c = '\\''; let l: &'static str = \"x\";";
        let f = scan(src);
        assert!(!f.tokens.iter().any(|t| t.text == "panic"));
        assert!(f.tokens.iter().any(|t| t.text == "static"));
    }

    #[test]
    fn cfg_test_region_spans_the_module() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}";
        let f = scan(src);
        let unwrap_tok = f.tokens.iter().find(|t| t.text == "unwrap").expect("tok");
        assert!(f.in_test_region(unwrap_tok.offset));
        let tail_tok = f.tokens.iter().find(|t| t.text == "tail").expect("tok");
        assert!(!f.in_test_region(tail_tok.offset));
    }

    #[test]
    fn allow_directive_parses_with_justification() {
        let src = "// aimq-lint: allow(panic, indexing) -- index bounded by arity\nlet v = xs[0].unwrap();";
        let f = scan(src);
        assert!(f.bad_directives.is_empty());
        assert!(f.is_allowed("panic", 2));
        assert!(f.is_allowed("indexing", 2));
        assert!(!f.is_allowed("hashmap", 2));
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let src = "let v = xs[0]; // aimq-lint: allow(indexing) -- len checked above";
        let f = scan(src);
        assert!(f.is_allowed("indexing", 1));
    }

    #[test]
    fn unjustified_allow_is_rejected() {
        let src = "// aimq-lint: allow(panic)\nlet v = x.unwrap();";
        let f = scan(src);
        assert_eq!(f.bad_directives.len(), 1);
        assert!(f.allows.is_empty());
    }

    #[test]
    fn lock_family_directive_parses() {
        let src = "// aimq-lock: family(cache-stripe) -- guards one stripe's pages\nstate: Mutex<CacheState>,";
        let f = scan(src);
        assert!(f.bad_directives.is_empty(), "{:?}", f.bad_directives);
        assert_eq!(f.lock_directives.len(), 1);
        let d = &f.lock_directives[0];
        assert_eq!(d.annotation, LockAnnotation::Family("cache-stripe".into()));
        assert_eq!(d.target_line, 2);
    }

    #[test]
    fn lock_use_directive_allows_bare_form() {
        let src = "let mut s = lock_stats(stripe); // aimq-lock: use(cache-stripe)";
        let f = scan(src);
        assert!(f.bad_directives.is_empty(), "{:?}", f.bad_directives);
        assert_eq!(
            f.lock_directives[0].annotation,
            LockAnnotation::Use("cache-stripe".into())
        );
        assert_eq!(f.lock_directives[0].target_line, 1);
    }

    #[test]
    fn lock_family_requires_justification_and_kebab_name() {
        let unjustified = scan("// aimq-lock: family(queue)\nstate: Mutex<u32>,");
        assert_eq!(unjustified.bad_directives.len(), 1);
        let bad_name = scan("// aimq-lock: family(Queue State) -- x\nstate: Mutex<u32>,");
        assert_eq!(bad_name.bad_directives.len(), 1);
    }

    #[test]
    fn atomic_role_directive_parses() {
        let src = "// aimq-atomic: seqlock -- even/odd version word\nversion: AtomicU64,";
        let f = scan(src);
        assert!(f.bad_directives.is_empty(), "{:?}", f.bad_directives);
        assert_eq!(f.atomic_directives[0].role, AtomicRole::Seqlock);
        assert_eq!(f.atomic_directives[0].target_line, 2);
    }

    #[test]
    fn atomic_role_rejects_unknown_role_and_missing_why() {
        let unknown = scan("// aimq-atomic: gauge -- hmm\nx: AtomicU64,");
        assert_eq!(unknown.bad_directives.len(), 1);
        assert!(unknown.bad_directives[0].1.contains("unknown atomic role"));
        let bare = scan("// aimq-atomic: counter\nx: AtomicU64,");
        assert_eq!(bare.bad_directives.len(), 1);
    }

    #[test]
    fn probe_entry_directive_parses_and_targets_the_fn_line() {
        let src =
            "// aimq-probe: entry -- budget accounted in ResilienceReport\nfn probe(&self) {}";
        let f = scan(src);
        assert!(f.bad_directives.is_empty(), "{:?}", f.bad_directives);
        assert_eq!(f.probe_directives.len(), 1);
        assert_eq!(f.probe_directives[0].target_line, 2);
    }

    #[test]
    fn probe_entry_requires_keyword_and_justification() {
        let bare = scan("// aimq-probe: entry\nfn probe(&self) {}");
        assert_eq!(bare.bad_directives.len(), 1);
        let wrong = scan("// aimq-probe: exit -- nope\nfn probe(&self) {}");
        assert_eq!(wrong.bad_directives.len(), 1);
    }

    #[test]
    fn arith_directives_parse_both_kinds() {
        let src = "// aimq-arith: counter -- probe budget\nattempts: u64,\n\
                   fn f(&self) { let x = self.attempts + 1; } // aimq-arith: allow -- bounded by budget";
        let f = scan(src);
        assert!(f.bad_directives.is_empty(), "{:?}", f.bad_directives);
        assert_eq!(f.arith_directives.len(), 2);
        assert_eq!(f.arith_directives[0].annotation, ArithAnnotation::Counter);
        assert_eq!(f.arith_directives[0].target_line, 2);
        assert_eq!(f.arith_directives[1].annotation, ArithAnnotation::Allow);
        assert_eq!(f.arith_directives[1].target_line, 3);
    }

    #[test]
    fn arith_directive_rejects_unknown_kind_and_missing_invariant() {
        let unknown = scan("// aimq-arith: gauge -- hmm\nx: u64,");
        assert_eq!(unknown.bad_directives.len(), 1);
        let bare = scan("x += 1; // aimq-arith: allow");
        assert_eq!(bare.bad_directives.len(), 1);
    }

    #[test]
    fn wire_optional_directive_parses_and_targets_the_key_line() {
        let src = "// aimq-wire: optional -- only on relaxed answers\n(\"base_index\", Json::Num(i)),";
        let f = scan(src);
        assert!(f.bad_directives.is_empty(), "{:?}", f.bad_directives);
        assert_eq!(f.wire_directives.len(), 1);
        assert_eq!(f.wire_directives[0].target_line, 2);
        let trailing = scan("(\"kind\", Json::Str(s)), // aimq-wire: optional -- arm-specific");
        assert_eq!(trailing.wire_directives[0].target_line, 1);
    }

    #[test]
    fn wire_directive_requires_keyword_and_justification() {
        let bare = scan("// aimq-wire: optional\n(\"k\", Json::Null),");
        assert_eq!(bare.bad_directives.len(), 1);
        let wrong = scan("// aimq-wire: maybe -- nope\n(\"k\", Json::Null),");
        assert_eq!(wrong.bad_directives.len(), 1);
    }

    #[test]
    fn fault_sink_directive_parses_and_targets_the_construction_line() {
        let src = "// aimq-fault: sink -- recorded into AccessStats by the caller\nlet e = QueryError::Timeout;";
        let f = scan(src);
        assert!(f.bad_directives.is_empty(), "{:?}", f.bad_directives);
        assert_eq!(f.fault_directives.len(), 1);
        assert_eq!(f.fault_directives[0].target_line, 2);
    }

    #[test]
    fn fault_directive_requires_keyword_and_justification() {
        let bare = scan("// aimq-fault: sink\nlet e = QueryError::Timeout;");
        assert_eq!(bare.bad_directives.len(), 1);
        let wrong = scan("// aimq-fault: source -- nope\nlet e = QueryError::Timeout;");
        assert_eq!(wrong.bad_directives.len(), 1);
    }
}
