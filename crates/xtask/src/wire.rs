//! L11 `wire-drift` and L12 `error-surface`: static guards over the
//! JSON wire contract.
//!
//! **L11** extracts the JSON shape every `to_json()` body produces,
//! straight from the token stream: each `Json::obj(vec![("key", ..)])`
//! literal contributes its keys (read from the raw text, since string
//! contents are masked out of the token stream), a direct `Json::Obj(`
//! construction marks the shape *dynamic* (keys computed at runtime,
//! as in `Tuple::to_json`), and a body with neither is *opaque* (a
//! scalar encoder, as in `Value::to_json`). The per-type inventory is
//! pinned at `results/WIRE_SCHEMA.json` — regenerated with `cargo
//! xtask wire --write` (or `pin --write`) and diffed in CI — so
//! renaming or dropping a key is a lint failure before it is a
//! client-visible break. Two per-site findings ride along: a key
//! emitted twice in one object literal, and a key emitted under a
//! conditional (a `match` arm or `if` branch) without an
//! `// aimq-wire: optional -- <why>` annotation saying when clients
//! see it absent. Stale `aimq-wire:` annotations are errors too.
//!
//! **L12** guards the fault→status mapping at the HTTP boundary. Every
//! watched fault enum ([`WATCHED_FAULT_ENUMS`]) that the boundary
//! crate mentions must have *every* variant named there as
//! `Enum::Variant` — deleting a match arm (or absorbing a variant into
//! a rewritten match) un-names it and fails the lint, complementing
//! L9's wildcard ban. And every `Response::error(status, "code", ..)`
//! call site must carry a string-literal machine code that appears,
//! with the same status, in the DESIGN.md status-code table (anchored
//! at the `| machine code | status |` header); table rows no call
//! site uses are doc drift and equally fatal.

use std::collections::{BTreeMap, BTreeSet};

use crate::rules::{Finding, Severity};
use crate::source::{ByteClass, ScannedFile, Token};
use crate::structure::find_functions;

/// Fault enums whose variant coverage L12 audits at the HTTP boundary.
/// `JsonError` is carried for completeness: it is a struct today, so
/// no enum definition is found and it imposes no obligation — but the
/// day it grows variants, the audit starts without a lint change.
pub const WATCHED_FAULT_ENUMS: &[&str] =
    &["ServeError", "QueryError", "ProbeError", "JsonError"];

/// The crate that maps fault enums onto wire responses.
pub const BOUNDARY_CRATE: &str = "http";

const DUPLICATE_HELP: &str =
    "remove or rename one of the duplicate keys: the JSON object keeps only one, and which \
     one clients see is an accident of construction order";

const OPTIONAL_HELP: &str =
    "annotate with `// aimq-wire: optional -- <when clients see the key absent>` on the \
     key's line, or hoist the key out of the conditional so it is always emitted";

const STALE_WIRE_HELP: &str =
    "remove the stale annotation, or re-point it at the line of a key emitted under a \
     conditional";

const VARIANT_HELP: &str =
    "name the variant in an HTTP mapping match (and decide its status code), or remove it \
     from the enum; a variant the boundary never names is a fault clients cannot see";

const CODE_HELP: &str =
    "add the machine code to the DESIGN.md status-code table (the `| machine code | \
     status |` table) with this status, or reuse a documented code";

const LITERAL_HELP: &str =
    "pass the machine code as a string literal so clients (and this lint) can rely on the \
     published set of codes";

/// One file's inputs to the wire-contract pass.
pub struct WireFile<'a> {
    /// Index the caller uses to map findings back to the file.
    pub idx: usize,
    /// Owning crate (directory name under `crates/`).
    pub crate_name: &'a str,
    /// Path relative to the lint root, as rendered in the inventory.
    pub rel: String,
    /// Lexical scan (tokens, classes, directives).
    pub scanned: &'a ScannedFile,
}

/// How a `to_json` body builds its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeKind {
    /// Object literal(s) with statically known keys.
    Keyed,
    /// Direct `Json::Obj(..)` construction — keys computed at runtime.
    Dynamic,
    /// No object construction at all (scalar/array encoder).
    Opaque,
}

impl ShapeKind {
    fn as_str(self) -> &'static str {
        match self {
            ShapeKind::Keyed => "keyed",
            ShapeKind::Dynamic => "dynamic",
            ShapeKind::Opaque => "opaque",
        }
    }
}

/// One key in a keyed shape (deduplicated across match arms).
#[derive(Debug, Clone)]
pub struct WireKey {
    /// Key name as it appears on the wire.
    pub name: String,
    /// Lexically classified value kind (`num`, `str`, `bool`, `null`,
    /// `arr`, `obj`, `nested`, `expr`).
    pub value: &'static str,
    /// Every emission site sits under a conditional.
    pub optional: bool,
}

/// The extracted JSON shape of one `to_json` implementation.
#[derive(Debug, Clone)]
pub struct WireShape {
    /// File index (same space as [`WireFile::idx`]).
    pub idx: usize,
    /// Path relative to the lint root.
    pub file: String,
    /// Type the `impl` block attributes the function to.
    pub type_name: String,
    /// Construction style.
    pub kind: ShapeKind,
    /// Keys sorted by name (empty unless [`ShapeKind::Keyed`]).
    pub keys: Vec<WireKey>,
}

/// A finding anchored in DESIGN.md rather than a scanned source file.
#[derive(Debug, Clone)]
pub struct DesignFinding {
    /// 1-based line in DESIGN.md.
    pub line: usize,
    /// Description of the drift.
    pub message: String,
    /// Remedy note.
    pub help: &'static str,
}

/// Output of [`check_workspace`].
#[derive(Debug, Default)]
pub struct WireReport {
    /// Findings, tagged with the file index they occur in.
    pub findings: Vec<(usize, Finding)>,
    /// Extracted shapes, sorted by (file, type) — the inventory input.
    pub shapes: Vec<WireShape>,
    /// Doc-drift findings anchored in DESIGN.md.
    pub design_findings: Vec<DesignFinding>,
}

/// Run L11 shape extraction and L12 error-surface checks. `design`
/// is the DESIGN.md text when present (the status-code table source).
pub fn check_workspace(files: &[WireFile], design: Option<&str>) -> WireReport {
    let mut report = WireReport::default();
    for file in files {
        extract_file_shapes(file, &mut report);
    }
    report
        .shapes
        .sort_by(|a, b| (&a.file, &a.type_name).cmp(&(&b.file, &b.type_name)));
    check_error_surface(files, design, &mut report);
    report
}

/// Render the pinned inventory (`results/WIRE_SCHEMA.json`) for the
/// extracted shapes: stable field order, one key per line, sorted by
/// (file, type) — byte-identical run over run.
pub fn render_inventory(shapes: &[WireShape]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"shapes\": [\n");
    for (i, shape) in shapes.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"file\": \"{}\",\n", shape.file));
        out.push_str(&format!("      \"type\": \"{}\",\n", shape.type_name));
        out.push_str(&format!("      \"kind\": \"{}\",\n", shape.kind.as_str()));
        if shape.keys.is_empty() {
            out.push_str("      \"keys\": []\n");
        } else {
            out.push_str("      \"keys\": [\n");
            for (k, key) in shape.keys.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"name\": \"{}\", \"value\": \"{}\", \"optional\": {}}}{}\n",
                    key.name,
                    key.value,
                    key.optional,
                    if k + 1 < shape.keys.len() { "," } else { "" }
                ));
            }
            out.push_str("      ]\n");
        }
        out.push_str(if i + 1 < shapes.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

// ---- L11: shape extraction ----

/// Byte offset of the start of each 1-based line.
fn line_offsets(text: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

fn line_col_at(starts: &[usize], offset: usize) -> (usize, usize) {
    let line = starts.partition_point(|&s| s <= offset);
    let col = offset - starts.get(line.saturating_sub(1)).copied().unwrap_or(0) + 1;
    (line.max(1), col)
}

/// `impl` block body spans with the type each attributes methods to:
/// the last path ident before the body `{` (after `for`, when present).
fn impl_targets(toks: &[Token]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut k = 0;
    while k < toks.len() {
        if toks[k].text != "impl" {
            k += 1;
            continue;
        }
        let mut angle = 0i32;
        let mut name: Option<String> = None;
        let mut j = k + 1;
        let mut open = None;
        while j < toks.len() {
            let t = &toks[j];
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => {
                    open = Some(j);
                    break;
                }
                ";" if angle <= 0 => break,
                "for" if angle <= 0 => name = None,
                "where" if angle <= 0 => {
                    // `where` clauses carry bounds, not the target.
                    while j < toks.len() && toks[j].text != "{" {
                        j += 1;
                    }
                    open = (j < toks.len()).then_some(j);
                    break;
                }
                _ if angle <= 0 && t.is_ident => name = Some(t.text.clone()),
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            k = j + 1;
            continue;
        };
        let mut depth = 0i32;
        let mut close = toks.len();
        for (m, t) in toks.iter().enumerate().skip(open) {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        close = m;
                        break;
                    }
                }
                _ => {}
            }
        }
        if let Some(name) = name {
            out.push((open, close, name));
        }
        k = open + 1; // nested impls (rare) still resolve innermost-first
    }
    out
}

/// Token spans of `match`/`if`/`else` bodies within `[start, end)` —
/// a `Json::obj` call inside one emits its keys conditionally.
fn conditional_spans(toks: &[Token], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for k in start..end {
        let t = &toks[k];
        if !t.is_ident || !matches!(t.text.as_str(), "match" | "if" | "else") {
            continue;
        }
        let mut depth = 0i32;
        let mut j = k + 1;
        let mut open = None;
        while j < end {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let mut brace = 0i32;
        for m in open..end {
            match toks[m].text.as_str() {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        out.push((open, m));
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// One `Json::obj(` / `Json::Obj(` construction site inside a body.
struct ObjCall {
    /// Token index of the opening `(`.
    open: usize,
    /// Token index of the matching `)`.
    close: usize,
    /// Direct variant construction (`Obj`) — dynamic keys.
    dynamic: bool,
    /// The call sits inside a `match`/`if`/`else` body.
    conditional: bool,
}

fn balanced_close(toks: &[Token], open: usize, open_text: &str, close_text: &str) -> usize {
    let mut depth = 0i32;
    for (m, t) in toks.iter().enumerate().skip(open) {
        if t.text == open_text {
            depth += 1;
        } else if t.text == close_text {
            depth -= 1;
            if depth == 0 {
                return m;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Extract every non-test `to_json` shape in `file`, pushing L11
/// findings (duplicate keys, unannotated conditional keys, stale
/// `aimq-wire:` annotations) as it goes.
fn extract_file_shapes(file: &WireFile, report: &mut WireReport) {
    let toks = &file.scanned.tokens;
    let text = &file.scanned.text;
    let starts = line_offsets(text);
    let impls = impl_targets(toks);
    let mut used_wire_lines: BTreeSet<usize> = BTreeSet::new();

    for span in find_functions(toks) {
        if span.name != "to_json" || file.scanned.in_test_region(toks[span.body_start].offset) {
            continue;
        }
        let type_name = impls
            .iter()
            .filter(|(open, close, _)| *open < span.body_start && span.body_end <= close + 1)
            .min_by_key(|(open, close, _)| close - open)
            .map(|(_, _, name)| name.clone())
            .unwrap_or_else(|| "(free)".to_string());
        let cond = conditional_spans(toks, span.body_start, span.body_end);
        let mut calls: Vec<ObjCall> = Vec::new();
        for k in span.body_start..span.body_end {
            let t = &toks[k];
            let qualified = matches!(t.text.as_str(), "obj" | "Obj")
                && k >= 3
                && toks[k - 1].text == ":"
                && toks[k - 2].text == ":"
                && toks[k - 3].text == "Json"
                && toks.get(k + 1).is_some_and(|n| n.text == "(");
            if qualified {
                calls.push(ObjCall {
                    open: k + 1,
                    close: balanced_close(toks, k + 1, "(", ")"),
                    dynamic: t.text == "Obj",
                    conditional: cond.iter().any(|&(s, e)| s < k && k < e),
                });
            }
        }

        // Keys: string literals inside an obj call's argument bytes,
        // shaped `("name", ...` — attributed to the innermost call.
        let mut per_call_seen: Vec<BTreeMap<String, usize>> =
            calls.iter().map(|_| BTreeMap::new()).collect();
        let mut keys: BTreeMap<String, (&'static str, bool, bool)> = BTreeMap::new();
        let fn_lo = toks[span.body_start].offset;
        let fn_hi = toks
            .get(span.body_end.saturating_sub(1))
            .map_or(text.len(), |t| t.offset);
        let bytes = text.as_bytes();
        let classes = &file.scanned.classes;
        let mut p = fn_lo;
        while p < fn_hi {
            let is_start = classes[p] == ByteClass::Literal
                && (p == 0 || classes[p - 1] != ByteClass::Literal);
            if !is_start {
                p += 1;
                continue;
            }
            let mut q = p;
            while q < bytes.len() && classes[q] == ByteClass::Literal {
                q += 1;
            }
            let run = (p, q);
            p = q;
            if bytes[run.0] != b'"' || run.1 - run.0 < 2 {
                continue; // raw/byte string or char — never a JSON key
            }
            // `("name",` shape: `(` immediately before, `,` after.
            let before = (0..run.0)
                .rev()
                .find(|&b| classes[b] == ByteClass::Code && !bytes[b].is_ascii_whitespace());
            let after = (run.1..fn_hi)
                .find(|&b| classes[b] == ByteClass::Code && !bytes[b].is_ascii_whitespace());
            let (Some(before), Some(after)) = (before, after) else {
                continue;
            };
            if bytes[before] != b'(' || bytes[after] != b',' {
                continue;
            }
            let Some(call_idx) = calls
                .iter()
                .enumerate()
                .filter(|(_, c)| toks[c.open].offset < run.0 && run.1 <= toks[c.close].offset)
                .min_by_key(|(_, c)| toks[c.close].offset - toks[c.open].offset)
                .map(|(i, _)| i)
            else {
                continue;
            };
            let name = text[run.0 + 1..run.1 - 1].to_string();
            let (line, col) = line_col_at(&starts, run.0);
            if per_call_seen[call_idx].insert(name.clone(), line).is_some() {
                report.findings.push((
                    file.idx,
                    Finding {
                        rule: "wire-drift",
                        severity: Severity::Error,
                        line,
                        col,
                        message: format!(
                            "duplicate key `{name}` in the `{type_name}` JSON object literal"
                        ),
                        help: DUPLICATE_HELP,
                    },
                ));
            }
            let conditional = calls[call_idx].conditional;
            if conditional {
                let annotated = file
                    .scanned
                    .wire_directives
                    .iter()
                    .any(|d| d.target_line == line);
                if annotated {
                    used_wire_lines.insert(line);
                } else {
                    report.findings.push((
                        file.idx,
                        Finding {
                            rule: "wire-drift",
                            severity: Severity::Error,
                            line,
                            col,
                            message: format!(
                                "key `{name}` of `{type_name}` is emitted under a conditional \
                                 without an `aimq-wire: optional` annotation"
                            ),
                            help: OPTIONAL_HELP,
                        },
                    ));
                }
            }
            let value = classify_value(toks, &calls[call_idx], run.1);
            keys.entry(name)
                .and_modify(|(_, opt, _)| *opt = *opt && conditional)
                .or_insert((value, conditional, true));
        }

        let kind = if calls.iter().any(|c| c.dynamic) {
            ShapeKind::Dynamic
        } else if calls.is_empty() {
            ShapeKind::Opaque
        } else {
            ShapeKind::Keyed
        };
        report.shapes.push(WireShape {
            idx: file.idx,
            file: file.rel.clone(),
            type_name,
            kind,
            keys: keys
                .into_iter()
                .map(|(name, (value, optional, _))| WireKey {
                    name,
                    value,
                    optional,
                })
                .collect(),
        });
    }

    // Stale annotations: every `aimq-wire: optional` must cover a
    // conditional key; an annotation anywhere else is stale by
    // definition.
    for d in &file.scanned.wire_directives {
        let target_offset = line_offsets(text)
            .get(d.target_line.saturating_sub(1))
            .copied()
            .unwrap_or(usize::MAX);
        if file.scanned.in_test_region(target_offset) {
            continue;
        }
        if !used_wire_lines.contains(&d.target_line) {
            report.findings.push((
                file.idx,
                Finding {
                    rule: "wire-drift",
                    severity: Severity::Error,
                    line: d.line,
                    col: 1,
                    message: format!(
                        "stale `aimq-wire: optional` annotation: line {} emits no key under \
                         a conditional",
                        d.target_line
                    ),
                    help: STALE_WIRE_HELP,
                },
            ));
        }
    }
}

/// Lexical classification of a key's value expression: the tokens
/// between the key's trailing comma and the tuple's closing paren.
fn classify_value(toks: &[Token], call: &ObjCall, key_end: usize) -> &'static str {
    // Tuple open: the innermost `(` before the key literal.
    let tuple_open = (call.open..=call.close)
        .filter(|&i| toks[i].text == "(" && toks[i].offset < key_end)
        .max_by_key(|&i| toks[i].offset);
    let Some(tuple_open) = tuple_open else {
        return "expr";
    };
    let tuple_close = balanced_close(toks, tuple_open, "(", ")");
    let value: Vec<&Token> = toks[tuple_open + 1..tuple_close]
        .iter()
        .skip_while(|t| t.offset < key_end || t.text == ",")
        .collect();
    if value.len() >= 4
        && value[0].text == "Json"
        && value[1].text == ":"
        && value[2].text == ":"
    {
        return match value[3].text.as_str() {
            "Num" => "num",
            "Str" => "str",
            "Bool" => "bool",
            "Null" => "null",
            "Arr" => "arr",
            "obj" | "Obj" => "obj",
            _ => "expr",
        };
    }
    if value.iter().any(|t| t.text == "to_json") {
        "nested"
    } else {
        "expr"
    }
}

// ---- L12: error surface ----

/// Variant names of the watched enums, from their (non-test)
/// definitions anywhere in the workspace.
fn enum_definitions(files: &[WireFile]) -> BTreeMap<&'static str, Vec<String>> {
    let mut out = BTreeMap::new();
    for &name in WATCHED_FAULT_ENUMS {
        'files: for file in files {
            let toks = &file.scanned.tokens;
            for k in 0..toks.len() {
                if toks[k].text != "enum"
                    || !toks.get(k + 1).is_some_and(|t| t.text == name)
                    || file.scanned.in_test_region(toks[k].offset)
                {
                    continue;
                }
                let Some(open) = (k + 2..toks.len()).find(|&j| toks[j].text == "{") else {
                    continue;
                };
                let close = balanced_close(toks, open, "{", "}");
                let mut variants = Vec::new();
                let (mut brace, mut paren, mut square) = (0i32, 0i32, 0i32);
                for j in open..close {
                    match toks[j].text.as_str() {
                        "{" => brace += 1,
                        "}" => brace -= 1,
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        "[" => square += 1,
                        "]" => square -= 1,
                        _ if brace == 1
                            && paren == 0
                            && square == 0
                            && toks[j].is_ident
                            && matches!(toks[j - 1].text.as_str(), "{" | ",") =>
                        {
                            variants.push(toks[j].text.clone());
                        }
                        _ => {}
                    }
                }
                if !variants.is_empty() {
                    out.insert(name, variants);
                    break 'files;
                }
            }
        }
    }
    out
}

/// One `Response::error(status, "code", ..)` call site.
struct ErrorSite {
    idx: usize,
    line: usize,
    col: usize,
    status: Option<u16>,
    code: Option<String>,
}

fn error_sites(files: &[WireFile], report: &mut WireReport) -> Vec<ErrorSite> {
    let mut sites = Vec::new();
    for file in files {
        let toks = &file.scanned.tokens;
        let text = &file.scanned.text;
        let bytes = text.as_bytes();
        let classes = &file.scanned.classes;
        for k in 0..toks.len() {
            let is_site = toks[k].text == "error"
                && k >= 3
                && toks[k - 1].text == ":"
                && toks[k - 2].text == ":"
                && toks[k - 3].text == "Response"
                && toks.get(k + 1).is_some_and(|n| n.text == "(")
                && !file.scanned.in_test_region(toks[k].offset);
            if !is_site {
                continue;
            }
            let open = k + 1;
            let close = balanced_close(toks, open, "(", ")");
            let status = toks
                .get(open + 1)
                .filter(|t| !t.is_ident && t.text.chars().all(|c| c.is_ascii_digit()))
                .and_then(|t| t.text.parse::<u16>().ok());
            // First `,` at depth 1, then the raw text after it: the
            // code literal is masked out of the token stream.
            let mut depth = 0i32;
            let mut comma = None;
            for (j, t) in toks.iter().enumerate().take(close).skip(open) {
                match t.text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "," if depth == 1 => {
                        comma = Some(j);
                        break;
                    }
                    _ => {}
                }
            }
            let code = comma.and_then(|j| {
                let from = toks[j].offset + 1;
                let at = (from..toks[close].offset)
                    .find(|&b| !bytes[b].is_ascii_whitespace() && classes[b] != ByteClass::Comment)?;
                if classes[at] != ByteClass::Literal || bytes[at] != b'"' {
                    return None;
                }
                let mut q = at + 1;
                while q < bytes.len() && classes[q] == ByteClass::Literal {
                    q += 1;
                }
                Some(text[at + 1..q - 1].to_string())
            });
            if code.is_none() {
                report.findings.push((
                    file.idx,
                    Finding {
                        rule: "error-surface",
                        severity: Severity::Error,
                        line: toks[k].line,
                        col: toks[k].col,
                        message: "`Response::error` machine code is not a string literal — \
                                  clients cannot rely on the published code set"
                            .to_string(),
                        help: LITERAL_HELP,
                    },
                ));
            }
            sites.push(ErrorSite {
                idx: file.idx,
                line: toks[k].line,
                col: toks[k].col,
                status,
                code,
            });
        }
    }
    sites
}

/// Parse the DESIGN.md status-code table: rows following the
/// `| machine code | status |` header, mapping code → (status, line).
fn parse_code_table(design: &str) -> Option<BTreeMap<String, (u16, usize)>> {
    let mut lines = design.lines().enumerate();
    let _header = lines.find(|(_, l)| l.trim_start().starts_with("| machine code |"))?;
    let mut rows = BTreeMap::new();
    for (n, line) in lines {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            break;
        }
        let cells: Vec<&str> = trimmed.split('|').map(str::trim).collect();
        let (Some(code_cell), Some(status_cell)) = (cells.get(1), cells.get(2)) else {
            continue;
        };
        if code_cell.starts_with('-') {
            continue; // the `|---|` separator row
        }
        let code = code_cell.trim_matches('`').to_string();
        let Ok(status) = status_cell.parse::<u16>() else {
            continue;
        };
        rows.entry(code).or_insert((status, n + 1));
    }
    Some(rows)
}

fn check_error_surface(files: &[WireFile], design: Option<&str>, report: &mut WireReport) {
    // Variant coverage at the boundary.
    let defs = enum_definitions(files);
    let boundary: Vec<&WireFile> = files
        .iter()
        .filter(|f| f.crate_name == BOUNDARY_CRATE)
        .collect();
    for (name, variants) in &defs {
        let mention = boundary.iter().find_map(|f| {
            f.scanned
                .tokens
                .iter()
                .find(|t| t.text == *name && !f.scanned.in_test_region(t.offset))
                .map(|t| (f.idx, t.line, t.col))
        });
        let Some((idx, line, col)) = mention else {
            continue; // the boundary never names this enum: no mapping to audit
        };
        for variant in variants {
            let named = boundary.iter().any(|f| {
                let toks = &f.scanned.tokens;
                (0..toks.len()).any(|k| {
                    toks[k].text == *name
                        && toks.get(k + 1).is_some_and(|t| t.text == ":")
                        && toks.get(k + 2).is_some_and(|t| t.text == ":")
                        && toks.get(k + 3).is_some_and(|t| t.text == *variant)
                        && !f.scanned.in_test_region(toks[k].offset)
                })
            });
            if !named {
                report.findings.push((
                    idx,
                    Finding {
                        rule: "error-surface",
                        severity: Severity::Error,
                        line,
                        col,
                        message: format!(
                            "`{name}::{variant}` is never named at the HTTP mapping boundary: \
                             the crate handles `{name}` but this variant has no explicit arm"
                        ),
                        help: VARIANT_HELP,
                    },
                ));
            }
        }
    }

    // Machine codes vs the DESIGN.md table.
    let sites = error_sites(files, report);
    if sites.is_empty() {
        return;
    }
    let Some(table) = design.and_then(parse_code_table) else {
        report.design_findings.push(DesignFinding {
            line: 1,
            message: format!(
                "{} `Response::error` call site(s) exist but DESIGN.md has no \
                 `| machine code | status |` table to check them against",
                sites.len()
            ),
            help: CODE_HELP,
        });
        return;
    };
    let mut used: BTreeSet<&str> = BTreeSet::new();
    for site in &sites {
        let Some(code) = &site.code else { continue };
        match table.get(code.as_str()) {
            None => report.findings.push((
                site.idx,
                Finding {
                    rule: "error-surface",
                    severity: Severity::Error,
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "machine code `{code}` is not in the DESIGN.md status-code table"
                    ),
                    help: CODE_HELP,
                },
            )),
            Some((status, _)) => {
                used.insert(code.as_str());
                if site.status.is_some_and(|s| s != *status) {
                    report.findings.push((
                        site.idx,
                        Finding {
                            rule: "error-surface",
                            severity: Severity::Error,
                            line: site.line,
                            col: site.col,
                            message: format!(
                                "machine code `{code}` is documented as status {status} in \
                                 DESIGN.md but this call sends {}",
                                site.status.unwrap_or(0)
                            ),
                            help: CODE_HELP,
                        },
                    ));
                }
            }
        }
    }
    for (code, (status, line)) in &table {
        if !used.contains(code.as_str()) {
            report.design_findings.push(DesignFinding {
                line: *line,
                message: format!(
                    "stale status-code table row: machine code `{code}` (status {status}) \
                     has no `Response::error` call site"
                ),
                help: "remove the row, or wire the code back into an error mapping",
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;

    fn run(srcs: &[(&str, &str)], design: Option<&str>) -> WireReport {
        let scanned: Vec<_> = srcs.iter().map(|(_, s)| scan(s)).collect();
        let files: Vec<WireFile> = srcs
            .iter()
            .enumerate()
            .map(|(i, (krate, _))| WireFile {
                idx: i,
                crate_name: krate,
                rel: format!("crates/{krate}/src/lib.rs"),
                scanned: &scanned[i],
            })
            .collect();
        check_workspace(&files, design)
    }

    fn rules(report: &WireReport) -> Vec<&str> {
        report.findings.iter().map(|(_, f)| f.rule).collect()
    }

    #[test]
    fn keyed_shape_extracts_names_and_value_kinds() {
        let report = run(
            &[(
                "core",
                "impl WorkStats {\n\
                 pub fn to_json(&self) -> Json {\n\
                 Json::obj(vec![\n\
                 (\"ticks\", Json::Num(self.ticks as f64)),\n\
                 (\"label\", Json::Str(self.label.clone())),\n\
                 (\"done\", Json::Bool(self.done)),\n\
                 (\"inner\", self.inner.to_json()),\n\
                 ])\n\
                 }\n\
                 }\n",
            )],
            None,
        );
        assert!(report.findings.is_empty(), "{:#?}", report.findings);
        assert_eq!(report.shapes.len(), 1);
        let shape = &report.shapes[0];
        assert_eq!(shape.type_name, "WorkStats");
        assert_eq!(shape.kind, ShapeKind::Keyed);
        let keys: Vec<(&str, &str)> = shape
            .keys
            .iter()
            .map(|k| (k.name.as_str(), k.value))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("done", "bool"),
                ("inner", "nested"),
                ("label", "str"),
                ("ticks", "num"),
            ]
        );
    }

    #[test]
    fn dynamic_and_opaque_shapes_are_classified() {
        let report = run(
            &[(
                "catalog",
                "impl Tuple {\n\
                 pub fn to_json(&self) -> Json {\n\
                 Json::Obj(self.values.iter().map(|v| (name(v), v.to_json())).collect())\n\
                 }\n\
                 }\n\
                 impl Value {\n\
                 pub fn to_json(&self) -> Json {\n\
                 match self { Value::Num(n) => Json::Num(*n), _ => Json::Null }\n\
                 }\n\
                 }\n",
            )],
            None,
        );
        assert_eq!(report.shapes.len(), 2);
        assert_eq!(report.shapes[0].type_name, "Tuple");
        assert_eq!(report.shapes[0].kind, ShapeKind::Dynamic);
        assert_eq!(report.shapes[1].type_name, "Value");
        assert_eq!(report.shapes[1].kind, ShapeKind::Opaque);
    }

    #[test]
    fn duplicate_key_is_flagged() {
        let report = run(
            &[(
                "core",
                "impl S {\n\
                 pub fn to_json(&self) -> Json {\n\
                 Json::obj(vec![(\"k\", Json::Null), (\"k\", Json::Num(1.0))])\n\
                 }\n\
                 }\n",
            )],
            None,
        );
        assert_eq!(rules(&report), vec!["wire-drift"]);
        assert!(report.findings[0].1.message.contains("duplicate key `k`"));
    }

    #[test]
    fn conditional_key_requires_annotation_and_stale_is_flagged() {
        let bare = run(
            &[(
                "core",
                "impl P {\n\
                 pub fn to_json(&self) -> Json {\n\
                 match self {\n\
                 P::A => Json::obj(vec![(\"kind\", Json::Null)]),\n\
                 P::B => Json::Null,\n\
                 }\n\
                 }\n\
                 }\n",
            )],
            None,
        );
        assert_eq!(rules(&bare), vec!["wire-drift"]);
        assert!(bare.findings[0].1.message.contains("under a conditional"));
        assert!(bare.shapes[0].keys[0].optional);

        let annotated = run(
            &[(
                "core",
                "impl P {\n\
                 pub fn to_json(&self) -> Json {\n\
                 match self {\n\
                 // aimq-wire: optional -- only the A arm emits it\n\
                 P::A => Json::obj(vec![(\"kind\", Json::Null)]),\n\
                 P::B => Json::Null,\n\
                 }\n\
                 }\n\
                 }\n",
            )],
            None,
        );
        assert!(annotated.findings.is_empty(), "{:#?}", annotated.findings);

        let stale = run(
            &[(
                "core",
                "impl P {\n\
                 pub fn to_json(&self) -> Json {\n\
                 // aimq-wire: optional -- nothing conditional here\n\
                 Json::obj(vec![(\"kind\", Json::Null)])\n\
                 }\n\
                 }\n",
            )],
            None,
        );
        assert_eq!(rules(&stale), vec!["wire-drift"]);
        assert!(stale.findings[0].1.message.contains("stale"));
    }

    #[test]
    fn inventory_rendering_is_stable_json() {
        let report = run(
            &[(
                "core",
                "impl S {\n\
                 pub fn to_json(&self) -> Json {\n\
                 Json::obj(vec![(\"b\", Json::Num(1.0)), (\"a\", Json::Null)])\n\
                 }\n\
                 }\n",
            )],
            None,
        );
        let text = render_inventory(&report.shapes);
        assert!(text.contains("\"type\": \"S\""));
        // Keys are name-sorted regardless of source order.
        let a = text.find("\"name\": \"a\"").expect("a");
        let b = text.find("\"name\": \"b\"").expect("b");
        assert!(a < b);
    }

    #[test]
    fn missing_variant_at_boundary_is_flagged() {
        let serve = "pub enum ServeError { Overloaded, ShuttingDown }\n";
        let full = "fn map(e: &ServeError) -> u16 {\n\
                    match e { ServeError::Overloaded => 429, ServeError::ShuttingDown => 503 }\n\
                    }\n";
        let partial = "fn map(e: &ServeError) -> u16 {\n\
                       match e { ServeError::Overloaded => 429, other => 500 }\n\
                       }\n";
        let clean = run(&[("serve", serve), ("http", full)], None);
        assert!(clean.findings.is_empty(), "{:#?}", clean.findings);
        let broken = run(&[("serve", serve), ("http", partial)], None);
        assert_eq!(rules(&broken), vec!["error-surface"]);
        assert!(broken.findings[0]
            .1
            .message
            .contains("`ServeError::ShuttingDown` is never named"));
    }

    #[test]
    fn unwatched_enum_and_unmentioned_enum_impose_nothing() {
        // QueryError defined but never mentioned in http: no findings.
        let report = run(
            &[
                ("storage", "pub enum QueryError { Timeout, Transient }\n"),
                ("http", "fn route() -> u16 { 200 }\n"),
            ],
            None,
        );
        assert!(report.findings.is_empty(), "{:#?}", report.findings);
    }

    #[test]
    fn machine_codes_check_against_the_design_table() {
        let design = "\
# Design\n\
\n\
| machine code | status | meaning |\n\
|---|---|---|\n\
| `bad_request` | 400 | malformed body |\n\
| `overloaded` | 429 | queue full |\n";
        let good = "fn f() -> Response { Response::error(400, \"bad_request\", \"nope\") }\n\
                    fn g() -> Response { Response::error(429, \"overloaded\", \"later\") }\n";
        let clean = run(&[("http", good)], Some(design));
        assert!(clean.findings.is_empty(), "{:#?}", clean.findings);
        assert!(clean.design_findings.is_empty(), "{:#?}", clean.design_findings);

        let unknown = run(
            &[("http", "fn f() -> Response { Response::error(400, \"mystery\", \"m\") }\n")],
            Some(design),
        );
        assert!(unknown
            .findings
            .iter()
            .any(|(_, f)| f.message.contains("`mystery` is not in the DESIGN.md")));
        // Both documented rows are now stale.
        assert_eq!(unknown.design_findings.len(), 2);

        let mismatch = run(
            &[(
                "http",
                "fn f() -> Response { Response::error(500, \"bad_request\", \"m\") }\n\
                 fn g() -> Response { Response::error(429, \"overloaded\", \"later\") }\n",
            )],
            Some(design),
        );
        assert!(mismatch
            .findings
            .iter()
            .any(|(_, f)| f.message.contains("documented as status 400") && f.message.contains("sends 500")));
    }

    #[test]
    fn non_literal_code_and_missing_table_are_flagged() {
        let src = "fn f(code: &str) -> Response { Response::error(400, code, \"m\") }\n";
        let report = run(&[("http", src)], Some("# Design\nno table here\n"));
        assert!(report
            .findings
            .iter()
            .any(|(_, f)| f.message.contains("not a string literal")));
        assert_eq!(report.design_findings.len(), 1);
        assert!(report.design_findings[0].message.contains("no `| machine code | status |` table"));
    }
}
