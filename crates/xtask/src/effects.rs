//! L8 `probe-effect`, L9 `result-discipline` and L10 `counter-arith`.
//!
//! **L8** infers, via a boolean reachability fixpoint over the shared
//! [`crate::callgraph`], the set of functions that can transitively
//! reach the `WebDatabase::try_query` boundary ("probing" functions).
//! Three findings follow: a probing path anywhere in the probe-free
//! crates ([`PROBE_FREE_CRATES`]), a probing call made while a lock
//! guard is live (composing with the L5 scope tracker; direct blocking
//! calls stay L5's), and a function that calls `try_query` directly
//! without an `// aimq-probe: entry -- <why>` annotation. Stale
//! annotations — pointing at a function that no longer probes — are
//! errors too, so the annotated entry-point list stays exact.
//!
//! **L9** bans silently discarded fallible results in non-test code:
//! `let _ = ...;` and terminal `.ok();` unconditionally (both erase an
//! error no matter its type), bare call statements whose callee's
//! signature carries one of the workspace fault enums
//! ([`FAULT_ERRORS`]), and wildcard `_ =>` arms inside matches that
//! mention those enums (a new fault variant must force a decision, not
//! be absorbed).
//!
//! **L10** audits arithmetic on budget/counter/statistic integers: any
//! field annotated `aimq-atomic: counter` or `aimq-arith: counter`
//! becomes *tracked in its declaring file*, and a plain `+`/`-`/`*`
//! (or `+=`/`-=`/`*=`) in a statement touching a tracked name is an
//! error — wrap-around in a release build corrupts budgets silently.
//! The escape is `// aimq-arith: allow -- <invariant>` on the site.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, CALLEE_BLOCKLIST};
use crate::rules::{Finding, Severity};
use crate::source::{ArithAnnotation, AtomicRole, ScannedFile, Token};
use crate::structure::{FileAnalysis, BLOCKING_CALLS};

/// Crates that must never reach the probing boundary: mining and
/// statistics passes assume a consistent snapshot of the source, so
/// all source I/O flows through `storage` (sampling, caching, budget
/// accounting) before they see it.
pub const PROBE_FREE_CRATES: &[&str] = &["afd", "catalog", "rock", "sim"];

/// Error enums whose silent disposal L9 forbids.
pub const FAULT_ERRORS: &[&str] = &["QueryError", "ProbeError", "ServeError"];

/// The probing boundary callee.
const PROBE_TARGET: &str = "try_query";

const PROBE_FREE_HELP: &str =
    "mining/similarity crates must stay probe-free: route source I/O through the storage \
     boundary (sampler/cache) instead, or justify with \
     `// aimq-lint: allow(probe-effect) -- <why>` on the `fn` line";

const GUARD_HELP: &str =
    "a probe can spend unbounded retry/deadline time; drop (or scope) the guard before the \
     probing call, or justify with `// aimq-lint: allow(probe-effect) -- <why the wait is \
     bounded>`";

const ENTRY_HELP: &str =
    "annotate with `// aimq-probe: entry -- <where budget/degradation accounting lives>` on \
     the `fn` line, or route the probe through an existing annotated entry point";

const STALE_HELP: &str =
    "remove the stale annotation, or re-point it at the `fn` line that calls `try_query` \
     directly";

const RESULT_HELP: &str =
    "handle or propagate the error (`?`, `match`, `if let Err`), or justify with \
     `// aimq-lint: allow(result-discipline) -- <why ignoring this error is sound>`";

const WILDCARD_HELP: &str =
    "name every variant (or bind `other` and handle it) so a new fault variant forces a \
     decision here; justify with `// aimq-lint: allow(result-discipline) -- <why>` if \
     absorption is intended";

const ARITH_HELP: &str = "use `saturating_*`/`checked_*` arithmetic, or justify with \
     `// aimq-arith: allow -- <invariant bounding the operands>` on the site";

/// One file's inputs to the workspace effects pass.
pub struct EffectsFile<'a> {
    /// Index the caller uses to map findings back to the file.
    pub idx: usize,
    /// Owning crate (directory name under `crates/`).
    pub crate_name: &'a str,
    /// Lexical scan (tokens, test regions, directives).
    pub scanned: &'a ScannedFile,
    /// Structural facts (functions, fields, held calls).
    pub analysis: &'a FileAnalysis,
}

/// A sanctioned (or to-be-sanctioned) probing entry point: a non-test
/// function that calls `try_query` directly.
#[derive(Debug, Clone)]
pub struct ProbeEntry {
    /// File index (same space as [`EffectsFile::idx`]).
    pub idx: usize,
    /// Function name.
    pub fn_name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether an `aimq-probe: entry` annotation covers it.
    pub annotated: bool,
}

/// Output of [`check_workspace`].
#[derive(Debug, Default)]
pub struct EffectsReport {
    /// Findings, tagged with the file index they occur in.
    pub findings: Vec<(usize, Finding)>,
    /// Direct probing entry points outside the probe-free crates.
    pub entries: Vec<ProbeEntry>,
    /// Probing (merged) function names per crate — empty sets for the
    /// probe-free crates is the workspace invariant.
    pub probing_by_crate: BTreeMap<String, BTreeSet<String>>,
}

/// Run L8–L10 over the whole workspace.
pub fn check_workspace(files: &[EffectsFile]) -> EffectsReport {
    let mut report = EffectsReport::default();

    // ---- L8: probe-effect ----
    let graph = CallGraph::build(files.iter().map(|f| f.analysis));
    let targets: BTreeSet<&str> = [PROBE_TARGET].into_iter().collect();
    let probing = graph.reaches_callee(&targets);
    let chain_of = |name: &str| -> String {
        match graph.witness(name, &targets) {
            Some(chain) => format!("`{}`", chain.join("` → `")),
            None => format!("`{name}`"),
        }
    };

    for file in files {
        let probe_free = PROBE_FREE_CRATES.contains(&file.crate_name);
        let line_starts = line_offsets(&file.scanned.text);
        let mut direct_lines: BTreeSet<usize> = BTreeSet::new();
        for f in &file.analysis.functions {
            let direct = f.calls.iter().any(|c| c == PROBE_TARGET);
            if direct {
                direct_lines.insert(f.line);
            }
            // Taint is judged per *definition*, not per merged name:
            // this definition probes iff one of its own callees reaches
            // the boundary. (Judging by merged name would taint an
            // innocent `rock::answer` because `core::answer` probes.)
            let taint = f.calls.iter().find(|c| {
                !CALLEE_BLOCKLIST.contains(&c.as_str())
                    && (c.as_str() == PROBE_TARGET || probing.contains(c.as_str()))
            });
            report
                .probing_by_crate
                .entry(file.crate_name.to_string())
                .or_default()
                .extend(taint.is_some().then(|| f.name.clone()));
            if probe_free {
                if let Some(callee) = taint {
                    report.findings.push((
                        file.idx,
                        Finding {
                            rule: "probe-effect",
                            severity: Severity::Error,
                            line: f.line,
                            col: 1,
                            message: format!(
                                "`{}` in probe-free crate `{}` can reach the source \
                                 boundary: `{}` → {}",
                                f.name,
                                file.crate_name,
                                f.name,
                                chain_of(callee)
                            ),
                            help: PROBE_FREE_HELP,
                        },
                    ));
                }
            }
            // Probing call while a guard is live. Direct blocking calls
            // (`try_query` itself, `query`, ...) are already L5 findings;
            // this catches probes hidden behind a helper.
            for call in &f.held_calls {
                let callee = call.callee.as_str();
                if BLOCKING_CALLS.contains(&callee)
                    || CALLEE_BLOCKLIST.contains(&callee)
                    || !probing.contains(callee)
                {
                    continue;
                }
                report.findings.push((
                    file.idx,
                    Finding {
                        rule: "probe-effect",
                        severity: Severity::Error,
                        line: call.line,
                        col: call.col,
                        message: format!(
                            "call to `{callee}` may probe the source ({}) while holding \
                             guard(s) of family {} in `{}`",
                            chain_of(callee),
                            call.held
                                .iter()
                                .map(|h| format!("`{h}`"))
                                .collect::<Vec<_>>()
                                .join(", "),
                            f.name
                        ),
                        help: GUARD_HELP,
                    },
                ));
            }
            // Entry-point discipline: a direct boundary call must carry
            // an annotation (pointless in probe-free crates, where the
            // call itself is the error).
            if direct && !probe_free {
                let annotated = file
                    .scanned
                    .probe_directives
                    .iter()
                    .any(|d| d.target_line == f.line);
                if !annotated {
                    report.findings.push((
                        file.idx,
                        Finding {
                            rule: "probe-effect",
                            severity: Severity::Error,
                            line: f.line,
                            col: 1,
                            message: format!(
                                "`{}` calls `{PROBE_TARGET}` directly but is not annotated \
                                 as a probing entry point",
                                f.name
                            ),
                            help: ENTRY_HELP,
                        },
                    ));
                }
                report.entries.push(ProbeEntry {
                    idx: file.idx,
                    fn_name: f.name.clone(),
                    line: f.line,
                    annotated,
                });
            }
        }
        report
            .probing_by_crate
            .entry(file.crate_name.to_string())
            .or_default();
        // Stale annotations: every `aimq-probe: entry` must target a
        // non-test `fn` line with a direct boundary call.
        for d in &file.scanned.probe_directives {
            let target_offset = line_starts
                .get(d.target_line.saturating_sub(1))
                .copied()
                .unwrap_or(usize::MAX);
            if file.scanned.in_test_region(target_offset) {
                continue;
            }
            if !direct_lines.contains(&d.target_line) {
                report.findings.push((
                    file.idx,
                    Finding {
                        rule: "probe-effect",
                        severity: Severity::Error,
                        line: d.line,
                        col: 1,
                        message: format!(
                            "stale `aimq-probe: entry` annotation: no function on line {} \
                             calls `{PROBE_TARGET}` directly",
                            d.target_line
                        ),
                        help: STALE_HELP,
                    },
                ));
            }
        }
    }

    // ---- L9: result-discipline ----
    let faulty = fault_fns(files);
    for file in files {
        check_result_discipline(file, &faulty, &mut report.findings);
    }

    // ---- L10: counter-arith ----
    for file in files {
        check_counter_arith(file, &mut report.findings);
    }

    report
}

/// Byte offset of the start of each 1-based line.
fn line_offsets(text: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Function names whose signature returns a `Result` carrying one of
/// the workspace fault enums, merged across the whole workspace (trait
/// declarations included — a bodiless `fn try_query(..) -> Result<_,
/// QueryError>;` registers the name).
fn fault_fns(files: &[EffectsFile]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for file in files {
        let toks = &file.scanned.tokens;
        let mut i = 0;
        while i < toks.len() {
            if toks[i].text != "fn" || !toks.get(i + 1).is_some_and(|t| t.is_ident) {
                i += 1;
                continue;
            }
            let name = toks[i + 1].text.clone();
            let mut has_result = false;
            let mut has_fault = false;
            let mut bracket_depth = 0i32;
            let mut j = i + 2;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => bracket_depth += 1,
                    "]" => bracket_depth -= 1,
                    "{" => break,
                    // `;` ends a bodiless trait declaration; inside
                    // `[u8; N]` it is part of an array type.
                    ";" if bracket_depth == 0 => break,
                    "Result" => has_result = true,
                    t if FAULT_ERRORS.contains(&t) => has_fault = true,
                    _ => {}
                }
                j += 1;
            }
            if has_result && has_fault {
                out.insert(name);
            }
            i = j.max(i + 2);
        }
    }
    out
}

/// Tokens that, appearing before a call in its statement, mean the
/// call's result is consumed rather than discarded.
fn consumes_result(text: &str) -> bool {
    matches!(
        text,
        "let" | "=" | "return" | "match" | "if" | "while" | "for" | "?" | "=>" | "&" | "!"
    )
}

fn check_result_discipline(
    file: &EffectsFile,
    faulty: &BTreeSet<String>,
    findings: &mut Vec<(usize, Finding)>,
) {
    let toks = &file.scanned.tokens;
    let in_test = |i: usize| file.scanned.in_test_region(toks[i].offset);
    let mut push = |line: usize, col: usize, message: String, help: &'static str| {
        findings.push((
            file.idx,
            Finding {
                rule: "result-discipline",
                severity: Severity::Error,
                line,
                col,
                message,
                help,
            },
        ));
    };

    for i in 0..toks.len() {
        if in_test(i) {
            continue;
        }
        let t = &toks[i];
        // Form 1: `let _ = ...;` — erases any error, typed or not.
        if t.text == "let"
            && toks.get(i + 1).is_some_and(|n| n.text == "_")
            && toks.get(i + 2).is_some_and(|n| n.text == "=")
        {
            push(
                t.line,
                t.col,
                "`let _ =` silently discards the result — a swallowed error vanishes \
                 without a trace"
                    .to_string(),
                RESULT_HELP,
            );
        }
        // Form 2: terminal `.ok();` — converts the error to `None` and
        // drops it in one move.
        if t.text == "ok"
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && toks.get(i + 2).is_some_and(|n| n.text == ")")
            && toks.get(i + 3).is_some_and(|n| n.text == ";")
        {
            push(
                t.line,
                t.col,
                "terminal `.ok();` silently swallows the error".to_string(),
                RESULT_HELP,
            );
        }
        // Form 3: a bare call statement to a fault-returning function.
        if t.is_ident
            && faulty.contains(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && !(i > 0 && toks[i - 1].text == "fn")
        {
            // Close the argument list; the call is a statement only if
            // `;` follows immediately.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut end = None;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            end = Some(j);
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(end) = end {
                if toks.get(end + 1).is_some_and(|n| n.text == ";") {
                    // Backward to the statement floor: any consuming
                    // token means the result is used.
                    let mut k = i;
                    let mut discarded = true;
                    while k > 0 {
                        let prev = &toks[k - 1].text;
                        if matches!(prev.as_str(), ";" | "{" | "}") {
                            break;
                        }
                        if consumes_result(prev) {
                            discarded = false;
                            break;
                        }
                        k -= 1;
                    }
                    if discarded {
                        push(
                            t.line,
                            t.col,
                            format!(
                                "result of `{}` (returns a fault-carrying `Result`) is \
                                 discarded by this bare call statement",
                                t.text
                            ),
                            RESULT_HELP,
                        );
                    }
                }
            }
        }
        // Form 4: wildcard `_ =>` arm in a match that mentions a fault
        // enum.
        if t.text == "match" && t.is_ident {
            check_match_wildcard(file, toks, i, &mut push);
        }
    }
}

fn check_match_wildcard(
    file: &EffectsFile,
    toks: &[Token],
    match_idx: usize,
    push: &mut impl FnMut(usize, usize, String, &'static str),
) {
    // Find the body `{` of this match (skip over parens/brackets in
    // the scrutinee expression).
    let mut depth = 0i32;
    let mut open = None;
    let mut j = match_idx + 1;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => {
                open = Some(j);
                break;
            }
            ";" if depth == 0 => return,
            _ => {}
        }
        j += 1;
    }
    let Some(open) = open else { return };
    let mut brace = 0i32;
    let mut close = None;
    for (k, tok) in toks.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "{" => brace += 1,
            "}" => {
                brace -= 1;
                if brace == 0 {
                    close = Some(k);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(close) = close else { return };
    let mentions_fault = toks[match_idx..=close]
        .iter()
        .any(|t| FAULT_ERRORS.contains(&t.text.as_str()));
    if !mentions_fault {
        return;
    }
    // Wildcard arms at this match's own arm level (depth 1): `_` as the
    // entire pattern, not `Err(_)` or `(_, x)`.
    let mut level = 1i32;
    for k in open + 1..close {
        match toks[k].text.as_str() {
            "{" | "(" | "[" => level += 1,
            "}" | ")" | "]" => level -= 1,
            "_" if level == 1
                && matches!(toks[k - 1].text.as_str(), "{" | "," | "}" | "|")
                && toks.get(k + 1).is_some_and(|n| n.text == "=")
                && toks.get(k + 2).is_some_and(|n| n.text == ">") =>
            {
                if !file.scanned.in_test_region(toks[k].offset) {
                    push(
                        toks[k].line,
                        toks[k].col,
                        "wildcard `_ =>` arm in a match over a fault enum: a newly added \
                         fault variant would be silently absorbed"
                            .to_string(),
                        WILDCARD_HELP,
                    );
                }
            }
            _ => {}
        }
    }
}

/// Keywords that can directly precede a `+`/`-`/`*` token without
/// making it a binary arithmetic operator (`as *const u8`,
/// `return -x`, ...).
const NON_BINARY_PREV: &[&str] = &[
    "as", "return", "in", "break", "if", "while", "match", "else",
];

fn check_counter_arith(file: &EffectsFile, findings: &mut Vec<(usize, Finding)>) {
    let toks = &file.scanned.tokens;

    // Tracked names: atomic counter fields plus `aimq-arith: counter`
    // annotated integer fields, scoped to this (declaring) file.
    let mut tracked: BTreeSet<String> = file
        .analysis
        .atomic_fields
        .iter()
        .filter(|f| f.role == Some(AtomicRole::Counter))
        .map(|f| f.name.clone())
        .collect();
    for d in &file.scanned.arith_directives {
        if d.annotation != ArithAnnotation::Counter {
            continue;
        }
        let field = toks.iter().enumerate().find_map(|(i, t)| {
            (t.line == d.target_line
                && t.is_ident
                && toks.get(i + 1).is_some_and(|n| n.text == ":"))
            .then(|| t.text.clone())
        });
        match field {
            Some(name) => {
                tracked.insert(name);
            }
            None => findings.push((
                file.idx,
                Finding {
                    rule: "counter-arith",
                    severity: Severity::Error,
                    line: d.line,
                    col: 1,
                    message: format!(
                        "`aimq-arith: counter` targets line {}, which declares no field",
                        d.target_line
                    ),
                    help: "place the annotation on (or directly above) the integer field \
                           declaration it tracks",
                },
            )),
        }
    }
    if tracked.is_empty() {
        return;
    }
    let allowed_lines: BTreeSet<usize> = file
        .scanned
        .arith_directives
        .iter()
        .filter(|d| d.annotation == ArithAnnotation::Allow)
        .map(|d| d.target_line)
        .collect();

    // `,` bounds the span too: in struct literals and argument lists
    // the operator's operands never cross a comma, and without the
    // bound a tracked field elsewhere in the literal would taint
    // unrelated arithmetic.
    let boundary = |text: &str| matches!(text, ";" | "{" | "}" | ",");
    for i in 0..toks.len() {
        let t = &toks[i];
        if !matches!(t.text.as_str(), "+" | "-" | "*") || file.scanned.in_test_region(t.offset) {
            continue;
        }
        // `->` arrow.
        if t.text == "-" && toks.get(i + 1).is_some_and(|n| n.text == ">") {
            continue;
        }
        // Binary position: the previous token must be an operand end
        // (identifier, number, `)`, `]`) and not a keyword that forces
        // a unary/typing reading. Covers both `a + b` and `a += b`.
        let Some(prev) = (i > 0).then(|| &toks[i - 1]) else {
            continue;
        };
        let operand_end = prev.text == ")"
            || prev.text == "]"
            || prev
                .text
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if !operand_end || NON_BINARY_PREV.contains(&prev.text.as_str()) {
            continue;
        }
        // Statement span around the operator.
        let mut start = i;
        while start > 0 && !boundary(&toks[start - 1].text) {
            start -= 1;
        }
        let mut end = i;
        while end + 1 < toks.len() && !boundary(&toks[end + 1].text) {
            end += 1;
        }
        let span = &toks[start..=end];
        // Signatures and generic bounds (`T: Add + Copy`) are not
        // value arithmetic.
        if span
            .iter()
            .any(|s| matches!(s.text.as_str(), "fn" | "impl" | "where" | "dyn"))
        {
            continue;
        }
        let Some(name) = span
            .iter()
            .find(|s| s.is_ident && tracked.contains(&s.text))
        else {
            continue;
        };
        if allowed_lines.contains(&t.line) {
            continue;
        }
        let op = if toks.get(i + 1).is_some_and(|n| n.text == "=") {
            format!("{}=", t.text)
        } else {
            t.text.clone()
        };
        findings.push((
            file.idx,
            Finding {
                rule: "counter-arith",
                severity: Severity::Error,
                line: t.line,
                col: t.col,
                message: format!(
                    "unchecked `{op}` in a statement touching tracked counter `{}` can wrap \
                     in release builds",
                    name.text
                ),
                help: ARITH_HELP,
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;
    use crate::structure::analyze;

    fn run(srcs: &[(&str, &str)]) -> EffectsReport {
        let scanned: Vec<_> = srcs.iter().map(|(_, s)| scan(s)).collect();
        let analyses: Vec<_> = scanned.iter().map(analyze).collect();
        let files: Vec<EffectsFile> = srcs
            .iter()
            .enumerate()
            .map(|(i, (krate, _))| EffectsFile {
                idx: i,
                crate_name: krate,
                scanned: &scanned[i],
                analysis: &analyses[i],
            })
            .collect();
        check_workspace(&files)
    }

    fn messages(report: &EffectsReport) -> Vec<&str> {
        report
            .findings
            .iter()
            .map(|(_, f)| f.message.as_str())
            .collect()
    }

    #[test]
    fn transitive_probe_in_probe_free_crate_is_flagged_with_chain() {
        let report = run(&[(
            "sim",
            "pub fn estimate(db: &D) -> f64 { refresh(db) }\n\
             fn refresh(db: &D) -> f64 { db.try_query(q); 0.0 }\n",
        )]);
        let msgs = messages(&report);
        assert!(
            msgs.iter()
                .any(|m| m.contains("`estimate` in probe-free crate `sim`")
                    && m.contains("`estimate` → `refresh` → `try_query`")),
            "{msgs:#?}"
        );
        assert!(!report.probing_by_crate["sim"].is_empty());
    }

    #[test]
    fn annotated_entry_point_is_clean_and_listed() {
        let report = run(&[(
            "storage",
            "// aimq-probe: entry -- budget accounted by the resilience report\n\
             fn probe_once(db: &D) -> Result<Page, QueryError> { db.try_query(q) }\n",
        )]);
        let probe_findings: Vec<_> = report
            .findings
            .iter()
            .filter(|(_, f)| f.rule == "probe-effect")
            .collect();
        assert!(probe_findings.is_empty(), "{probe_findings:#?}");
        assert_eq!(report.entries.len(), 1);
        assert!(report.entries[0].annotated);
    }

    #[test]
    fn unannotated_entry_and_stale_annotation_are_flagged() {
        let report = run(&[(
            "storage",
            "fn probe_once(db: &D) -> u32 { db.try_query(q) }\n\
             // aimq-probe: entry -- stale, probes nothing\n\
             fn local(x: u64) -> u64 { x.saturating_add(1) }\n",
        )]);
        let msgs = messages(&report);
        assert!(
            msgs.iter().any(|m| m.contains("not annotated")),
            "{msgs:#?}"
        );
        assert!(msgs.iter().any(|m| m.contains("stale")), "{msgs:#?}");
    }

    #[test]
    fn probing_helper_call_under_guard_is_flagged() {
        let report = run(&[(
            "storage",
            "struct S {\n\
             // aimq-lock: family(memo) -- guards the memo\n\
             state: Mutex<u32>,\n\
             }\n\
             impl S {\n\
             // aimq-probe: entry -- forwards to the boundary\n\
             fn refresh(&self, q: &Q) -> u32 { self.inner.try_query(q) }\n\
             fn locked(&self, q: &Q) -> u32 { let g = lock(&self.state); self.refresh(q) }\n\
             }\n",
        )]);
        let msgs = messages(&report);
        assert!(
            msgs.iter()
                .any(|m| m.contains("`refresh` may probe the source")
                    && m.contains("while holding guard(s) of family `memo`")),
            "{msgs:#?}"
        );
    }

    #[test]
    fn discarded_results_are_flagged_in_all_three_forms() {
        let report = run(&[(
            "storage",
            "trait D { fn try_query(&self, q: &Q) -> Result<Page, QueryError>; }\n\
             fn a(db: &dyn D, q: &Q) { let _ = db.try_query(q); }\n\
             fn b(db: &dyn D, q: &Q) { db.try_query(q).ok(); }\n\
             fn c(db: &dyn D, q: &Q) { db.try_query(q); }\n",
        )]);
        let msgs: Vec<&str> = report
            .findings
            .iter()
            .filter(|(_, f)| f.rule == "result-discipline")
            .map(|(_, f)| f.message.as_str())
            .collect();
        assert!(msgs.iter().any(|m| m.contains("`let _ =`")), "{msgs:#?}");
        assert!(msgs.iter().any(|m| m.contains("`.ok();`")), "{msgs:#?}");
        assert!(
            msgs.iter().any(|m| m.contains("bare call statement")),
            "{msgs:#?}"
        );
    }

    #[test]
    fn used_results_are_not_flagged() {
        let report = run(&[(
            "storage",
            "trait D { fn try_query(&self, q: &Q) -> Result<Page, QueryError>; }\n\
             // aimq-probe: entry -- test shape\n\
             fn a(db: &dyn D, q: &Q) -> Result<Page, QueryError> { db.try_query(q) }\n\
             // aimq-probe: entry -- test shape\n\
             fn b(db: &dyn D, q: &Q) -> Result<u32, QueryError> {\n\
             let page = db.try_query(q)?;\n\
             Ok(page.total)\n\
             }\n",
        )]);
        let bad: Vec<_> = report
            .findings
            .iter()
            .filter(|(_, f)| f.rule == "result-discipline")
            .collect();
        assert!(bad.is_empty(), "{bad:#?}");
    }

    #[test]
    fn wildcard_arm_over_fault_enum_is_flagged_but_named_arms_are_not() {
        let report = run(&[(
            "storage",
            "fn classify(e: QueryError) -> u32 {\n\
             match e {\n\
             QueryError::Timeout => 1,\n\
             _ => 0,\n\
             }\n\
             }\n\
             fn named(e: QueryError) -> u32 {\n\
             match e {\n\
             QueryError::Timeout => 1,\n\
             other => cost(other),\n\
             }\n\
             }\n\
             fn unrelated(x: u32) -> u32 { match x { 1 => 2, _ => 0 } }\n",
        )]);
        let bad: Vec<_> = report
            .findings
            .iter()
            .filter(|(_, f)| f.rule == "result-discipline")
            .collect();
        assert_eq!(bad.len(), 1, "{bad:#?}");
        assert_eq!(bad[0].1.line, 4);
    }

    #[test]
    fn tracked_counter_arithmetic_is_flagged_and_saturating_is_not() {
        let report = run(&[(
            "serve",
            "struct Budget {\n\
             // aimq-arith: counter -- probe budget accounting\n\
             attempts: u64,\n\
             }\n\
             impl Budget {\n\
             fn bump(&mut self) { self.attempts += 1; }\n\
             fn project(&self, extra: u64) -> u64 { self.attempts + extra }\n\
             fn safe(&mut self) { self.attempts = self.attempts.saturating_add(1); }\n\
             }\n",
        )]);
        let bad: Vec<_> = report
            .findings
            .iter()
            .filter(|(_, f)| f.rule == "counter-arith")
            .collect();
        assert_eq!(bad.len(), 2, "{bad:#?}");
        assert!(bad[0].1.message.contains("`+=`"), "{bad:#?}");
        assert!(bad[1].1.message.contains("`+`"), "{bad:#?}");
    }

    #[test]
    fn arith_allow_escape_and_atomic_counter_tracking_work() {
        let report = run(&[(
            "serve",
            "struct Stats {\n\
             // aimq-atomic: counter -- monotone tally\n\
             hits: AtomicU64,\n\
             }\n\
             fn delta(a: u64, hits: u64) -> u64 {\n\
             a + hits // aimq-arith: allow -- both operands are snapshot-bounded\n\
             }\n\
             fn wraps(a: u64, hits: u64) -> u64 { a * hits }\n",
        )]);
        let bad: Vec<_> = report
            .findings
            .iter()
            .filter(|(_, f)| f.rule == "counter-arith")
            .collect();
        assert_eq!(bad.len(), 1, "{bad:#?}");
        assert!(bad[0].1.message.contains("`*`"), "{bad:#?}");
    }

    #[test]
    fn test_code_is_exempt_from_l9_and_l10() {
        let report = run(&[(
            "serve",
            "struct Stats {\n\
             // aimq-atomic: counter -- monotone tally\n\
             hits: u64,\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             fn t(db: &D, hits: u64) {\n\
             let _ = db.try_query(q);\n\
             let x = hits + 1;\n\
             }\n\
             }\n",
        )]);
        let bad: Vec<_> = report
            .findings
            .iter()
            .filter(|(_, f)| f.rule != "probe-effect")
            .collect();
        assert!(bad.is_empty(), "{bad:#?}");
    }
}
