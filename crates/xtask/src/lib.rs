//! `cargo xtask` — repo-specific static analysis for the AIMQ
//! workspace.
//!
//! The headline command, `cargo xtask lint`, enforces four invariants
//! that ordinary type-checking cannot (see DESIGN.md, "Static analysis
//! & invariants"):
//!
//! - **L1 panic-freedom**: library crates route failures through the
//!   `AimqError` taxonomy instead of panicking.
//! - **L2 float-ordering safety**: similarity/importance scores are
//!   compared with `f64::total_cmp`/`OrderedScore`, never the
//!   NaN-unsafe `partial_cmp`.
//! - **L3 mining determinism**: the mining/ranking/answering crates
//!   (`afd`, `sim`, `rock`, `core`, `serve`) never use
//!   `HashMap`/`HashSet`, whose iteration order varies run to run.
//!   Insert-only membership sets that are never iterated are safe but
//!   still flagged: each surviving use carries an
//!   `aimq-lint: allow(hashmap)` justification recording the audit.
//! - **L4 wall-clock independence**: the same crates never call
//!   `std::thread::sleep` or `Instant::now()` — results and deadline
//!   behavior replay over `VirtualClock` ticks, so real time must not
//!   leak into them. Offline timing measurements (training-phase
//!   stopwatches) carry an `aimq-lint: allow(wallclock)` justification.
//!
//! With the concurrent runtime (worker pool, striped cache, atomic
//! stats), three structure-aware families joined (see the `structure`
//! module for the analysis engine):
//!
//! - **L5 lock-discipline**: every owned `Mutex` belongs to a named
//!   lock family (`// aimq-lock: family(..) -- why`); acquisitions are
//!   tracked guard-by-guard, and the workspace-wide family graph must
//!   stay acyclic — plus no guard may be held across a blocking call
//!   (`try_query`, `Condvar::wait`, channel `recv`).
//! - **L6 atomics-audit**: every atomic field declares a role
//!   (`// aimq-atomic: counter|flag|seqlock -- why`);
//!   `Ordering::Relaxed` is legal only for counters (or fenced seqlock
//!   payloads), and flag/seqlock roles must pair Acquire with Release.
//! - **L7 layering**: cross-crate imports and `Cargo.toml` dependencies
//!   must follow the crate DAG
//!   (catalog → storage → {afd, sim} → rock → core → serve → http →
//!   bins).
//!
//! Three effect-system families ride on a shared call-graph fixpoint
//! (`callgraph` module) and the directive grammar (see the `effects`
//! module):
//!
//! - **L8 probe-effect**: a workspace may-call fixpoint computes every
//!   function that can transitively reach `WebDatabase::try_query`;
//!   probing paths are banned in the probe-free crates (`afd`, `sim`,
//!   `rock`, `catalog`), banned under a live lock guard, and direct
//!   boundary callers must be annotated
//!   `// aimq-probe: entry -- <why>` (stale annotations are errors).
//! - **L9 result-discipline**: non-test code may not discard fallible
//!   results — `let _ =`, terminal `.ok();`, bare call statements to
//!   functions returning `QueryError`/`ProbeError`/`ServeError`
//!   results, and wildcard `_ =>` arms in matches over those enums are
//!   all errors.
//! - **L10 counter-arith**: fields annotated `aimq-atomic: counter` or
//!   `// aimq-arith: counter -- <why>` are tracked in their declaring
//!   file; plain `+`/`-`/`*` (or compound) arithmetic touching them
//!   must become `saturating_*`/`checked_*` or carry
//!   `// aimq-arith: allow -- <invariant>`.
//!
//! Three wire-contract families guard what clients of the HTTP front
//! door actually see (the `wire` and `dataflow` modules):
//!
//! - **L11 wire-drift**: the JSON shape every `to_json()` produces is
//!   extracted statically (keys from object literals, `Json::Obj`
//!   construction marking dynamic shapes) into an inventory pinned at
//!   `results/WIRE_SCHEMA.json` (`cargo xtask wire --write`); stale
//!   pins, duplicate keys, and keys emitted under conditionals without
//!   `// aimq-wire: optional -- <why>` are errors.
//! - **L12 error-surface**: every watched fault-enum variant the
//!   `http` crate handles must be *named* there as `Enum::Variant`,
//!   and every `Response::error` machine code must be a string literal
//!   that appears — with a matching status — in the DESIGN.md
//!   `| machine code | status |` table (stale rows are errors too).
//! - **L13 degradation-flow**: intra-procedural def-use tracking over
//!   the token stream taints every constructed fault-enum value and
//!   errors unless it reaches a sink (return/`?`/match-arm/tail, a
//!   call or recorder argument, a tracked `let` whose use sinks, or
//!   `// aimq-fault: sink -- <where accounting lives>`).
//!
//! Diagnostics are rustc-style with file:line:col spans; per-line
//! suppressions use `// aimq-lint: allow(<rule>) -- <justification>`
//! and the justification is mandatory. `--json` emits the same
//! findings machine-readably (see the `json` module), and
//! `--explain <rule>` prints the registry entry. The pass is a
//! hand-rolled lexical scan (`source` module) because the offline
//! build environment cannot fetch `syn`.

pub mod callgraph;
pub mod concurrency;
pub mod dataflow;
pub mod effects;
pub mod json;
pub mod layering;
pub mod rules;
pub mod source;
pub mod structure;
pub mod wire;

pub use rules::{rule_info, Finding, RuleInfo, RuleSet, Severity, KNOWN_RULES, RULES};

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Library crates under the panic-freedom + float-ordering rules.
/// `http` joined with the network front door: a malformed request or a
/// dying socket must become a typed 400/transport error, never a panic
/// in a connection thread.
pub const PANIC_CRATES: &[&str] = &[
    "catalog", "storage", "afd", "sim", "rock", "core", "serve", "http",
];

/// Crates whose outputs feed sorted/ranked results and therefore must
/// not iterate hash containers or read the wall clock. `core` joined
/// the list when the probe planner grew a `BTreeMap`-keyed memo;
/// `serve` joined with the concurrent runtime, whose deadline and
/// overload behavior replays over `VirtualClock` ticks; `storage`
/// joined with the posting-list executor, whose row sets must come back
/// byte-identical run over run — the engine's answers are replayable
/// byte for byte, so any hash container or time source these crates
/// hold must be audited (and justified). `http` is deliberately
/// *absent*: sockets, read-timeout ticks, and the open-loop load
/// generator's pacing are wall-clock by nature — the determinism
/// boundary sits at `serve`, below the wire.
pub const DETERMINISM_CRATES: &[&str] = &["afd", "sim", "rock", "core", "serve", "storage"];

/// A rendered-ready diagnostic bound to a file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (`panic`, `indexing`, `float-ordering`, `hashmap`,
    /// `wallclock`, `lock-discipline`, `atomics-audit`, `layering`,
    /// `lint-allow`).
    pub rule: String,
    /// Error or warning.
    pub severity: Severity,
    /// Path relative to the lint root.
    pub path: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Description of the violation.
    pub message: String,
    /// The offending source line, for the span rendering.
    pub snippet: String,
    /// Remedy note (empty when not applicable).
    pub help: String,
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All diagnostics, in file-then-line order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diagnostics.len() - self.errors()
    }

    /// `true` when the run should exit nonzero.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }
}

/// Lint a workspace-shaped tree rooted at `root`.
///
/// Pass 1 walks every `.rs` file under `crates/<name>/src/` (except
/// `xtask` itself, whose docs quote directive syntax verbatim), runs
/// the per-file rules the crate's [`RuleSet`] selects, and retains the
/// structural facts. Pass 2 runs the workspace-wide checks over those
/// facts: the cross-file lock-ordering graph (L5) and the crate DAG
/// (L7), with pass-2 findings filtered through each file's own
/// suppressions.
pub fn lint_root(root: &Path) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    let (names, entries) = scan_workspace(root)?;

    for entry in &entries {
        let ruleset = RuleSet {
            panic_and_ordering: PANIC_CRATES.contains(&entry.crate_name.as_str()),
            determinism: DETERMINISM_CRATES.contains(&entry.crate_name.as_str()),
            concurrency: PANIC_CRATES.contains(&entry.crate_name.as_str()),
        };
        if ruleset.panic_and_ordering || ruleset.determinism {
            lint_scanned(
                &entry.scanned,
                &entry.analysis,
                &entry.lines,
                &entry.rel,
                ruleset,
                &mut report,
            );
        }
    }

    // Pass 2a: workspace lock-ordering graph over the concurrency-scoped
    // crates.
    let conc: Vec<(usize, &structure::FileAnalysis)> = entries
        .iter()
        .enumerate()
        .filter(|(_, e)| PANIC_CRATES.contains(&e.crate_name.as_str()))
        .map(|(i, e)| (i, &e.analysis))
        .collect();
    let mut late: Vec<(usize, Finding)> = concurrency::check_workspace(&conc);

    // Pass 2b: crate DAG from manifests + imports, over every aimq
    // crate (bins and data included).
    let manifests = layering::scan_manifests(root, &names)?;
    for mf in manifests.findings {
        report.diagnostics.push(Diagnostic {
            rule: mf.rule.to_string(),
            severity: Severity::Error,
            path: mf.path,
            line: mf.line,
            col: 1,
            message: mf.message,
            snippet: mf.snippet,
            help: mf.help.to_string(),
        });
    }
    let imports: Vec<(usize, &str, &structure::FileAnalysis)> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| (i, e.crate_name.as_str(), &e.analysis))
        .collect();
    late.extend(layering::check_imports(&imports, &manifests.declared));

    // Pass 2c: effect-system rules (L8 probe-effect over the shared
    // call graph, L9 result-discipline, L10 counter-arith) over every
    // crate — bins and eval included, which carry no per-file ruleset.
    let eff_files: Vec<effects::EffectsFile> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| effects::EffectsFile {
            idx: i,
            crate_name: e.crate_name.as_str(),
            scanned: &e.scanned,
            analysis: &e.analysis,
        })
        .collect();
    late.extend(effects::check_workspace(&eff_files).findings);

    // Pass 2d: wire-contract rules (L11 wire-drift shape extraction,
    // L12 error-surface) over every crate, plus the doc-anchored
    // checks against DESIGN.md and the pinned schema inventory.
    let wire_files: Vec<wire::WireFile> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| wire::WireFile {
            idx: i,
            crate_name: e.crate_name.as_str(),
            rel: e.rel.display().to_string(),
            scanned: &e.scanned,
        })
        .collect();
    let design_text = std::fs::read_to_string(root.join("DESIGN.md")).ok();
    let wire_report = wire::check_workspace(&wire_files, design_text.as_deref());
    late.extend(wire_report.findings);
    for df in &wire_report.design_findings {
        let design_lines: Vec<&str> = design_text.as_deref().unwrap_or("").lines().collect();
        report.diagnostics.push(Diagnostic {
            rule: "error-surface".to_string(),
            severity: Severity::Error,
            path: PathBuf::from("DESIGN.md"),
            line: df.line,
            col: 1,
            message: df.message.clone(),
            snippet: design_lines
                .get(df.line.saturating_sub(1))
                .map(|l| l.trim_end().to_string())
                .unwrap_or_default(),
            help: df.help.to_string(),
        });
    }
    // Pin freshness: the checked-in inventory must match what the
    // extractor sees. Trees with no `to_json` surface and no pin file
    // (most lint fixtures) carry no obligation.
    let pin_path = root.join("results").join("WIRE_SCHEMA.json");
    let pinned = std::fs::read_to_string(&pin_path).ok();
    if !wire_report.shapes.is_empty() || pinned.is_some() {
        let rendered = wire::render_inventory(&wire_report.shapes);
        let (stale, message) = match &pinned {
            None => (
                true,
                format!(
                    "results/WIRE_SCHEMA.json is missing but {} JSON shape(s) exist",
                    wire_report.shapes.len()
                ),
            ),
            Some(text) if *text != rendered => (
                true,
                "results/WIRE_SCHEMA.json is stale: the pinned JSON schema inventory does \
                 not match the shapes the `to_json` impls produce"
                    .to_string(),
            ),
            Some(_) => (false, String::new()),
        };
        if stale {
            report.diagnostics.push(Diagnostic {
                rule: "wire-drift".to_string(),
                severity: Severity::Error,
                path: PathBuf::from("results/WIRE_SCHEMA.json"),
                line: 1,
                col: 1,
                message,
                snippet: String::new(),
                help: "regenerate with `cargo xtask pin --write` (or `wire --write`) and \
                       review the diff like any other contract change"
                    .to_string(),
            });
        }
    }

    // Pass 2e: L13 degradation-flow def-use tracking, every crate.
    let flow_files: Vec<dataflow::DataflowFile> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| dataflow::DataflowFile {
            idx: i,
            scanned: &e.scanned,
        })
        .collect();
    late.extend(dataflow::check_workspace(&flow_files));

    for (idx, finding) in late {
        let entry = &entries[idx];
        if entry.scanned.is_allowed(finding.rule, finding.line) {
            continue;
        }
        report.diagnostics.push(Diagnostic {
            rule: finding.rule.to_string(),
            severity: finding.severity,
            path: entry.rel.clone(),
            line: finding.line,
            col: finding.col,
            message: finding.message,
            snippet: entry
                .lines
                .get(finding.line.saturating_sub(1))
                .cloned()
                .unwrap_or_default(),
            help: finding.help.to_string(),
        });
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    Ok(report)
}

/// One scanned workspace file retained for the cross-file passes.
struct Entry {
    rel: PathBuf,
    crate_name: String,
    scanned: source::ScannedFile,
    analysis: structure::FileAnalysis,
    lines: Vec<String>,
}

/// Scan every `.rs` file under `crates/<name>/src/` (except `xtask`
/// itself, whose docs quote directive syntax verbatim) into retained
/// lexical + structural facts. Returns the sorted crate names and the
/// file entries in (crate, path) order.
fn scan_workspace(root: &Path) -> std::io::Result<(Vec<String>, Vec<Entry>)> {
    let crates_dir = root.join("crates");
    let mut names: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    names.retain(|n| n != "xtask");

    let mut entries: Vec<Entry> = Vec::new();
    for name in &names {
        let src_dir = crates_dir.join(name).join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for file in files {
            let text = std::fs::read_to_string(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            let scanned = source::scan(&text);
            let analysis = structure::analyze(&scanned);
            let lines: Vec<String> = text.lines().map(|l| l.trim_end().to_string()).collect();
            entries.push(Entry {
                rel,
                crate_name: name.clone(),
                scanned,
                analysis,
                lines,
            });
        }
    }
    Ok((names, entries))
}

/// One sanctioned probing entry point, for `cargo xtask probes` and
/// the checked-in `results/PROBE_ENTRYPOINTS.txt` audit.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ProbeEntryPoint {
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// Function name.
    pub fn_name: String,
}

/// Workspace probe-effect summary: the direct `try_query` callers and
/// the per-crate probing sets the L8 fixpoint inferred.
#[derive(Debug, Default)]
pub struct ProbeSummary {
    /// Direct boundary callers outside the probe-free crates, sorted.
    pub entries: Vec<ProbeEntryPoint>,
    /// Probing (merged) function names per crate. The probe-free
    /// crates (`afd`, `sim`, `rock`, `catalog`) must map to empty sets.
    pub probing_by_crate: std::collections::BTreeMap<String, std::collections::BTreeSet<String>>,
}

/// Compute the L8 probe-effect summary for the workspace at `root`.
pub fn probe_summary(root: &Path) -> std::io::Result<ProbeSummary> {
    let (_, entries) = scan_workspace(root)?;
    let eff_files: Vec<effects::EffectsFile> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| effects::EffectsFile {
            idx: i,
            crate_name: e.crate_name.as_str(),
            scanned: &e.scanned,
            analysis: &e.analysis,
        })
        .collect();
    let report = effects::check_workspace(&eff_files);
    let mut out = ProbeSummary {
        probing_by_crate: report.probing_by_crate,
        ..ProbeSummary::default()
    };
    for entry in report.entries {
        out.entries.push(ProbeEntryPoint {
            path: entries[entry.idx].rel.clone(),
            fn_name: entry.fn_name,
        });
    }
    out.entries.sort();
    out.entries.dedup();
    Ok(out)
}

/// Render the wire-schema inventory for the workspace at `root` —
/// the exact text pinned at `results/WIRE_SCHEMA.json`.
pub fn wire_inventory(root: &Path) -> std::io::Result<String> {
    let (_, entries) = scan_workspace(root)?;
    let wire_files: Vec<wire::WireFile> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| wire::WireFile {
            idx: i,
            crate_name: e.crate_name.as_str(),
            rel: e.rel.display().to_string(),
            scanned: &e.scanned,
        })
        .collect();
    let report = wire::check_workspace(&wire_files, None);
    Ok(wire::render_inventory(&report.shapes))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint one file's text under `ruleset`, appending to `report`.
/// Standalone entry point (tests, single-file use); [`lint_root`]
/// drives the shared implementation directly so it can retain the
/// structural facts for the workspace passes.
pub fn lint_file(text: &str, rel_path: &Path, ruleset: RuleSet, report: &mut LintReport) {
    let scanned = source::scan(text);
    let analysis = structure::analyze(&scanned);
    let lines: Vec<String> = text.lines().map(|l| l.trim_end().to_string()).collect();
    lint_scanned(&scanned, &analysis, &lines, rel_path, ruleset, report);
}

/// Per-file pass over pre-scanned facts: directive hygiene, the
/// token-level rules (L1–L4), and the file-local halves of L5/L6.
fn lint_scanned(
    scanned: &source::ScannedFile,
    analysis: &structure::FileAnalysis,
    lines: &[String],
    rel_path: &Path,
    ruleset: RuleSet,
    report: &mut LintReport,
) {
    let snippet = |line: usize| -> String {
        lines
            .get(line.saturating_sub(1))
            .cloned()
            .unwrap_or_default()
    };

    // Malformed suppressions are themselves errors: an allow without a
    // justification is indistinguishable from a shrug.
    for (line, msg) in &scanned.bad_directives {
        report.diagnostics.push(Diagnostic {
            rule: "lint-allow".to_string(),
            severity: Severity::Error,
            path: rel_path.to_path_buf(),
            line: *line,
            col: 1,
            message: msg.clone(),
            snippet: snippet(*line),
            help: String::new(),
        });
    }
    // So are directives naming rules that do not exist: they silently
    // suppress nothing and rot.
    for allow in &scanned.allows {
        for rule in &allow.rules {
            if !KNOWN_RULES.contains(&rule.as_str()) {
                report.diagnostics.push(Diagnostic {
                    rule: "lint-allow".to_string(),
                    severity: Severity::Error,
                    path: rel_path.to_path_buf(),
                    line: allow.line,
                    col: 1,
                    message: format!(
                        "unknown rule `{rule}` in allow directive (known: {})",
                        KNOWN_RULES.join(", ")
                    ),
                    snippet: snippet(allow.line),
                    help: String::new(),
                });
            }
        }
    }

    let mut findings = rules::check(scanned, ruleset);
    if ruleset.concurrency {
        findings.extend(concurrency::check_file(analysis));
    }
    for finding in findings {
        if scanned.is_allowed(finding.rule, finding.line) {
            continue;
        }
        report.diagnostics.push(Diagnostic {
            rule: finding.rule.to_string(),
            severity: finding.severity,
            path: rel_path.to_path_buf(),
            line: finding.line,
            col: finding.col,
            message: finding.message,
            snippet: snippet(finding.line),
            help: finding.help.to_string(),
        });
    }
}

/// Render one diagnostic rustc-style.
pub fn render(diag: &Diagnostic) -> String {
    let label = match diag.severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
    };
    let mut out = String::new();
    let _ = writeln!(out, "{label}[aimq::{}]: {}", diag.rule, diag.message);
    let _ = writeln!(
        out,
        "  --> {}:{}:{}",
        diag.path.display(),
        diag.line,
        diag.col
    );
    let gutter = diag.line.to_string();
    let pad = " ".repeat(gutter.len());
    let _ = writeln!(out, "{pad} |");
    let _ = writeln!(out, "{gutter} | {}", diag.snippet);
    let caret_pad = " ".repeat(diag.col.saturating_sub(1));
    let _ = writeln!(out, "{pad} | {caret_pad}^");
    if !diag.help.is_empty() {
        let _ = writeln!(out, "{pad} = help: {}", diag.help);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_file_reports_and_suppresses() {
        let src = "\
fn risky(xs: &[f64]) -> f64 {
    let v = xs.first().unwrap();
    *v
}
fn excused(xs: &[f64]) -> f64 {
    // aimq-lint: allow(panic) -- the caller guarantees non-empty input
    *xs.first().unwrap()
}
";
        let mut report = LintReport::default();
        lint_file(
            src,
            Path::new("crates/afd/src/x.rs"),
            RuleSet {
                panic_and_ordering: true,
                determinism: true,
                concurrency: true,
            },
            &mut report,
        );
        assert_eq!(report.errors(), 1, "{:#?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].line, 2);
    }

    #[test]
    fn render_is_rustc_shaped() {
        let diag = Diagnostic {
            rule: "panic".into(),
            severity: Severity::Error,
            path: PathBuf::from("crates/afd/src/x.rs"),
            line: 2,
            col: 24,
            message: "`.unwrap()` in library code can panic".into(),
            snippet: "    let v = xs.first().unwrap();".into(),
            help: "propagate instead".into(),
        };
        let text = render(&diag);
        assert!(text.contains("error[aimq::panic]"));
        assert!(text.contains("--> crates/afd/src/x.rs:2:24"));
        assert!(text.contains("= help:"));
    }
}
