//! `cargo xtask` — repo-specific static analysis for the AIMQ
//! workspace.
//!
//! The headline command, `cargo xtask lint`, enforces four invariants
//! that ordinary type-checking cannot (see DESIGN.md, "Static analysis
//! & invariants"):
//!
//! - **L1 panic-freedom**: library crates route failures through the
//!   `AimqError` taxonomy instead of panicking.
//! - **L2 float-ordering safety**: similarity/importance scores are
//!   compared with `f64::total_cmp`/`OrderedScore`, never the
//!   NaN-unsafe `partial_cmp`.
//! - **L3 mining determinism**: the mining/ranking/answering crates
//!   (`afd`, `sim`, `rock`, `core`, `serve`) never use
//!   `HashMap`/`HashSet`, whose iteration order varies run to run.
//!   Insert-only membership sets that are never iterated are safe but
//!   still flagged: each surviving use carries an
//!   `aimq-lint: allow(hashmap)` justification recording the audit.
//! - **L4 wall-clock independence**: the same crates never call
//!   `std::thread::sleep` or `Instant::now()` — results and deadline
//!   behavior replay over `VirtualClock` ticks, so real time must not
//!   leak into them. Offline timing measurements (training-phase
//!   stopwatches) carry an `aimq-lint: allow(wallclock)` justification.
//!
//! Diagnostics are rustc-style with file:line:col spans; per-line
//! suppressions use `// aimq-lint: allow(<rule>) -- <justification>`
//! and the justification is mandatory. The pass is a hand-rolled
//! lexical scan (`source` module) because the offline build
//! environment cannot fetch `syn`.

pub mod rules;
pub mod source;

pub use rules::{Finding, RuleSet, Severity, KNOWN_RULES};

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Library crates under the panic-freedom + float-ordering rules.
pub const PANIC_CRATES: &[&str] = &["catalog", "storage", "afd", "sim", "rock", "core", "serve"];

/// Crates whose outputs feed sorted/ranked results and therefore must
/// not iterate hash containers or read the wall clock. `core` joined
/// the list when the probe planner grew a `BTreeMap`-keyed memo;
/// `serve` joined with the concurrent runtime, whose deadline and
/// overload behavior replays over `VirtualClock` ticks — the engine's
/// answers are replayable byte for byte, so any hash container or time
/// source these crates hold must be audited (and justified).
pub const DETERMINISM_CRATES: &[&str] = &["afd", "sim", "rock", "core", "serve"];

/// A rendered-ready diagnostic bound to a file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (`panic`, `indexing`, `float-ordering`, `hashmap`,
    /// `wallclock`, `lint-allow`).
    pub rule: String,
    /// Error or warning.
    pub severity: Severity,
    /// Path relative to the lint root.
    pub path: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Description of the violation.
    pub message: String,
    /// The offending source line, for the span rendering.
    pub snippet: String,
    /// Remedy note (empty when not applicable).
    pub help: String,
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All diagnostics, in file-then-line order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diagnostics.len() - self.errors()
    }

    /// `true` when the run should exit nonzero.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }
}

/// Lint a workspace-shaped tree rooted at `root`: every `.rs` file
/// under `crates/<name>/src/` for the crates the rules govern.
pub fn lint_root(root: &Path) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    let crates_dir = root.join("crates");
    let mut names: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    for name in names {
        let ruleset = RuleSet {
            panic_and_ordering: PANIC_CRATES.contains(&name.as_str()),
            determinism: DETERMINISM_CRATES.contains(&name.as_str()),
        };
        if !ruleset.panic_and_ordering && !ruleset.determinism {
            continue;
        }
        let src_dir = crates_dir.join(&name).join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for file in files {
            let text = std::fs::read_to_string(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            lint_file(&text, &rel, ruleset, &mut report);
        }
    }
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint one file's text under `ruleset`, appending to `report`.
pub fn lint_file(text: &str, rel_path: &Path, ruleset: RuleSet, report: &mut LintReport) {
    let scanned = source::scan(text);
    let lines: Vec<&str> = text.lines().collect();
    let snippet = |line: usize| -> String {
        lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim_end().to_string())
            .unwrap_or_default()
    };

    // Malformed suppressions are themselves errors: an allow without a
    // justification is indistinguishable from a shrug.
    for (line, msg) in &scanned.bad_directives {
        report.diagnostics.push(Diagnostic {
            rule: "lint-allow".to_string(),
            severity: Severity::Error,
            path: rel_path.to_path_buf(),
            line: *line,
            col: 1,
            message: msg.clone(),
            snippet: snippet(*line),
            help: String::new(),
        });
    }
    // So are directives naming rules that do not exist: they silently
    // suppress nothing and rot.
    for allow in &scanned.allows {
        for rule in &allow.rules {
            if !KNOWN_RULES.contains(&rule.as_str()) {
                report.diagnostics.push(Diagnostic {
                    rule: "lint-allow".to_string(),
                    severity: Severity::Error,
                    path: rel_path.to_path_buf(),
                    line: allow.line,
                    col: 1,
                    message: format!(
                        "unknown rule `{rule}` in allow directive (known: {})",
                        KNOWN_RULES.join(", ")
                    ),
                    snippet: snippet(allow.line),
                    help: String::new(),
                });
            }
        }
    }

    for finding in rules::check(&scanned, ruleset) {
        if scanned.is_allowed(finding.rule, finding.line) {
            continue;
        }
        report.diagnostics.push(Diagnostic {
            rule: finding.rule.to_string(),
            severity: finding.severity,
            path: rel_path.to_path_buf(),
            line: finding.line,
            col: finding.col,
            message: finding.message,
            snippet: snippet(finding.line),
            help: finding.help.to_string(),
        });
    }
}

/// Render one diagnostic rustc-style.
pub fn render(diag: &Diagnostic) -> String {
    let label = match diag.severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
    };
    let mut out = String::new();
    let _ = writeln!(out, "{label}[aimq::{}]: {}", diag.rule, diag.message);
    let _ = writeln!(
        out,
        "  --> {}:{}:{}",
        diag.path.display(),
        diag.line,
        diag.col
    );
    let gutter = diag.line.to_string();
    let pad = " ".repeat(gutter.len());
    let _ = writeln!(out, "{pad} |");
    let _ = writeln!(out, "{gutter} | {}", diag.snippet);
    let caret_pad = " ".repeat(diag.col.saturating_sub(1));
    let _ = writeln!(out, "{pad} | {caret_pad}^");
    if !diag.help.is_empty() {
        let _ = writeln!(out, "{pad} = help: {}", diag.help);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_file_reports_and_suppresses() {
        let src = "\
fn risky(xs: &[f64]) -> f64 {
    let v = xs.first().unwrap();
    *v
}
fn excused(xs: &[f64]) -> f64 {
    // aimq-lint: allow(panic) -- the caller guarantees non-empty input
    *xs.first().unwrap()
}
";
        let mut report = LintReport::default();
        lint_file(
            src,
            Path::new("crates/afd/src/x.rs"),
            RuleSet {
                panic_and_ordering: true,
                determinism: true,
            },
            &mut report,
        );
        assert_eq!(report.errors(), 1, "{:#?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].line, 2);
    }

    #[test]
    fn render_is_rustc_shaped() {
        let diag = Diagnostic {
            rule: "panic".into(),
            severity: Severity::Error,
            path: PathBuf::from("crates/afd/src/x.rs"),
            line: 2,
            col: 24,
            message: "`.unwrap()` in library code can panic".into(),
            snippet: "    let v = xs.first().unwrap();".into(),
            help: "propagate instead".into(),
        };
        let text = render(&diag);
        assert!(text.contains("error[aimq::panic]"));
        assert!(text.contains("--> crates/afd/src/x.rs:2:24"));
        assert!(text.contains("= help:"));
    }
}
