//! L13 `degradation-flow`: intra-procedural def-use tracking over the
//! token stream that taints every *constructed* fault-enum value and
//! errors unless it reaches a sink.
//!
//! The paper's degradation accounting only works if every fault the
//! system manufactures is either propagated (returned, `?`-raised,
//! produced by a match arm) or recorded (passed into a call — the
//! `AccessStats` / `DegradationReport` recorders are call sites like
//! any other). A `QueryError::Timeout` built and then dropped on the
//! floor is a silent hole in the degradation report, and it compiles
//! clean. This pass walks each function body (via
//! [`find_functions`](crate::structure)), finds `Enum::Variant`
//! *value* constructions for the fault enums, and demands a sink:
//!
//! - the construction's statement propagates (`return`, `?`, `=>`) or
//!   is the function's tail expression;
//! - the construction is an argument — inside an unclosed `(` whose
//!   head is an identifier (a call, method call, or `Err(..)`-style
//!   wrap) or inside a macro's `!(..)` / `![..]`;
//! - the value is bound by `let` and *some* later use of the binding
//!   in the same body propagates or participates in a call;
//! - the line carries `// aimq-fault: sink -- <where accounting
//!   lives>`, vouching that the accounting happens somewhere this
//!   lexical pass cannot see.
//!
//! Pattern positions (`match` arms, `if let`, `matches!`) are
//! destructuring, not construction, and are skipped. Stale
//! `aimq-fault:` annotations — ones whose target line constructs
//! nothing — are errors, so the escape hatch cannot outlive the code
//! it excused.

use std::collections::BTreeSet;

use crate::rules::{Finding, Severity};
use crate::source::{ScannedFile, Token};
use crate::structure::find_functions;

/// Fault enums whose constructions are tainted. `JsonError` is a
/// struct (parser-internal, always returned at its construction
/// sites), so the degradation pipeline tracks only these three.
pub const TRACKED_FAULT_ENUMS: &[&str] = &["QueryError", "ProbeError", "ServeError"];

const DROP_HELP: &str =
    "propagate the fault (`return`/`?`) or record it into the degradation accounting \
     (`AccessStats`, `DegradationReport`); if the accounting is real but invisible to this \
     lexical pass, annotate `// aimq-fault: sink -- <where accounting lives>`";

const STALE_HELP: &str =
    "remove the stale annotation, or re-point it at the line that constructs the fault value";

/// One file's input to the dataflow pass.
pub struct DataflowFile<'a> {
    /// Index the caller uses to map findings back to the file.
    pub idx: usize,
    /// Lexical scan (tokens, directives, test regions).
    pub scanned: &'a ScannedFile,
}

/// Run L13 over every non-test function body in the given files.
pub fn check_workspace(files: &[DataflowFile]) -> Vec<(usize, Finding)> {
    let mut findings = Vec::new();
    for file in files {
        check_file(file, &mut findings);
    }
    findings
}

fn check_file(file: &DataflowFile, findings: &mut Vec<(usize, Finding)>) {
    let toks = &file.scanned.tokens;
    let mut construction_lines: BTreeSet<usize> = BTreeSet::new();

    for span in find_functions(toks) {
        if file.scanned.in_test_region(toks[span.body_start].offset) {
            continue;
        }
        for k in span.body_start..span.body_end {
            let t = &toks[k];
            if !TRACKED_FAULT_ENUMS.contains(&t.text.as_str()) {
                continue;
            }
            let qualified = toks.get(k + 1).is_some_and(|n| n.text == ":")
                && toks.get(k + 2).is_some_and(|n| n.text == ":")
                && toks.get(k + 3).is_some_and(|n| n.is_ident);
            if !qualified {
                continue;
            }
            // Skip the path-qualifier case `storage::QueryError::..`
            // being double-counted: anchor on the enum ident only.
            if k >= 2 && toks[k - 1].text == ":" && toks[k - 2].text == ":" {
                continue;
            }
            // Consume a struct/tuple payload directly after the
            // variant so pattern probing starts past it.
            let mut end = k + 3;
            if let Some(next) = toks.get(end + 1) {
                if next.text == "{" {
                    end = balanced(toks, end + 1, "{", "}");
                } else if next.text == "(" {
                    end = balanced(toks, end + 1, "(", ")");
                }
            }
            if is_pattern(toks, end, span.body_end) {
                continue;
            }
            let stmt = statement_span(toks, span.body_start, span.body_end, k, end);
            if stmt_contains(toks, &stmt, "matches") {
                continue; // `matches!(e, QueryError::..)` is a predicate, not a build
            }
            construction_lines.insert(t.line);
            if file.scanned.fault_directives.iter().any(|d| d.target_line == t.line) {
                continue; // vouched sink
            }
            let variant = &toks[k + 3].text;
            if reaches_sink(toks, span.body_start, span.body_end, k, &stmt) {
                continue;
            }
            findings.push((
                file.idx,
                Finding {
                    rule: "degradation-flow",
                    severity: Severity::Error,
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{}::{variant}` is constructed here but never reaches a sink: not \
                         returned, not raised, and not passed into any call or recorder",
                        t.text
                    ),
                    help: DROP_HELP,
                },
            ));
        }
    }

    // Stale `aimq-fault:` annotations: the target line must construct
    // a tracked fault value (patterns and empty lines don't count).
    let starts = line_offsets(&file.scanned.text);
    for d in &file.scanned.fault_directives {
        let target_offset = starts
            .get(d.target_line.saturating_sub(1))
            .copied()
            .unwrap_or(usize::MAX);
        if file.scanned.in_test_region(target_offset) {
            continue;
        }
        if !construction_lines.contains(&d.target_line) {
            findings.push((
                file.idx,
                Finding {
                    rule: "degradation-flow",
                    severity: Severity::Error,
                    line: d.line,
                    col: 1,
                    message: format!(
                        "stale `aimq-fault: sink` annotation: line {} constructs no tracked \
                         fault value",
                        d.target_line
                    ),
                    help: STALE_HELP,
                },
            ));
        }
    }
}

/// Byte offset of the start of each 1-based line.
fn line_offsets(text: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Index of the delimiter matching `toks[open]`.
fn balanced(toks: &[Token], open: usize, open_text: &str, close_text: &str) -> usize {
    let mut depth = 0i32;
    for (m, t) in toks.iter().enumerate().skip(open) {
        if t.text == open_text {
            depth += 1;
        } else if t.text == close_text {
            depth -= 1;
            if depth == 0 {
                return m;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// A construction is in *pattern* position when, skipping the closers
/// of enclosing destructures (`Err(QueryError::Timeout)`), the next
/// token is a match arm arrow, an or-pattern bar, or a (`let`/`if
/// let`) binding `=`.
fn is_pattern(toks: &[Token], end: usize, body_end: usize) -> bool {
    let mut j = end + 1;
    while j < body_end && matches!(toks[j].text.as_str(), ")" | "]") {
        j += 1;
    }
    match toks.get(j).map(|t| t.text.as_str()) {
        Some("|") => true,
        Some("=") => {
            // `=>` is two tokens; a bare `=` after closers means the
            // construction sat on the left of a binding — a pattern.
            true
        }
        _ => false,
    }
}

/// Statement token span `[start, end)` around the construction, plus
/// whether it terminates with `;` (false ⇒ tail expression).
struct Stmt {
    start: usize,
    end: usize,
    terminated: bool,
}

fn statement_span(
    toks: &[Token],
    body_start: usize,
    body_end: usize,
    at: usize,
    payload_end: usize,
) -> Stmt {
    let mut depth = 0i32;
    let mut start = body_start + 1;
    let mut j = at;
    while j > body_start {
        j -= 1;
        match toks[j].text.as_str() {
            "}" => depth += 1,
            "{" => {
                if depth == 0 {
                    start = j + 1;
                    break;
                }
                depth -= 1;
            }
            ";" if depth == 0 => {
                start = j + 1;
                break;
            }
            _ => {}
        }
    }
    let mut depth = 0i32;
    let mut end = body_end;
    let mut terminated = false;
    let mut j = payload_end;
    while j + 1 < body_end {
        j += 1;
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                if depth == 0 {
                    end = j;
                    break;
                }
                depth -= 1;
            }
            ";" if depth == 0 => {
                end = j + 1;
                terminated = true;
                break;
            }
            "," if depth == 0 => {
                // Arm/argument boundary: the value's expression ends
                // here, but a comma is not a tail position — the
                // surrounding construct (tuple, array, arm) decides.
                end = j;
                terminated = true;
                break;
            }
            _ => {}
        }
    }
    Stmt { start, end, terminated }
}

fn stmt_contains(toks: &[Token], stmt: &Stmt, needle: &str) -> bool {
    toks[stmt.start..stmt.end].iter().any(|t| t.text == needle)
}

/// Does the tainted construction at `at` (statement `stmt`) reach a
/// sink inside `[body_start, body_end)`?
fn reaches_sink(
    toks: &[Token],
    body_start: usize,
    body_end: usize,
    at: usize,
    stmt: &Stmt,
) -> bool {
    // 1. The statement itself propagates.
    if !stmt.terminated {
        return true; // tail expression — the value IS the result
    }
    if toks[stmt.start..stmt.end]
        .iter()
        .any(|t| matches!(t.text.as_str(), "return" | "?"))
    {
        return true;
    }
    if stmt_has_arrow(toks, stmt) {
        return true; // match-arm result: the arm's value flows to the match
    }
    // 2. Construction sits in argument position of a call or macro.
    if in_call_args(toks, stmt.start, at) {
        return true;
    }
    // 3. `let NAME = <construction>;` — track uses of NAME.
    if let Some(name) = let_binding(toks, stmt, at) {
        for u in stmt.end..body_end {
            if !(toks[u].is_ident && toks[u].text == name) {
                continue;
            }
            let use_stmt = statement_span(toks, body_start, body_end, u, u);
            if !use_stmt.terminated
                || toks[use_stmt.start..use_stmt.end].iter().any(|t| {
                    matches!(t.text.as_str(), "return" | "?" | "(" | "!")
                })
                || stmt_has_arrow(toks, &use_stmt)
            {
                return true;
            }
        }
    }
    false
}

/// `=>` anywhere in the statement (tokenized as `=` `>`).
fn stmt_has_arrow(toks: &[Token], stmt: &Stmt) -> bool {
    (stmt.start..stmt.end.saturating_sub(1))
        .any(|j| toks[j].text == "=" && toks[j + 1].text == ">")
}

/// Walking backward from the construction to the statement start: an
/// unclosed `(` headed by an identifier or `!` means the value is an
/// argument (call, `Err(..)` wrap, method, or macro); an unclosed `[`
/// headed by `!` is a `vec![..]`-style macro.
fn in_call_args(toks: &[Token], stmt_start: usize, at: usize) -> bool {
    let mut paren = 0i32;
    let mut square = 0i32;
    let mut j = at;
    while j > stmt_start {
        j -= 1;
        match toks[j].text.as_str() {
            ")" => paren += 1,
            "]" => square += 1,
            "(" => {
                if paren == 0 {
                    if j > 0 && (toks[j - 1].is_ident || toks[j - 1].text == "!") {
                        return true;
                    }
                    continue; // grouping parens — keep walking out
                }
                paren -= 1;
            }
            "[" => {
                if square == 0 {
                    if j > 0 && toks[j - 1].text == "!" {
                        return true;
                    }
                    continue;
                }
                square -= 1;
            }
            _ => {}
        }
    }
    false
}

/// If the statement is `let NAME = ...` (with the construction on the
/// right of the `=`), return NAME.
fn let_binding(toks: &[Token], stmt: &Stmt, at: usize) -> Option<String> {
    if toks.get(stmt.start).map(|t| t.text.as_str()) != Some("let") {
        return None;
    }
    let mut j = stmt.start + 1;
    if toks.get(j).map(|t| t.text.as_str()) == Some("mut") {
        j += 1;
    }
    let name = toks.get(j).filter(|t| t.is_ident)?.text.clone();
    let eq = (j + 1..at).find(|&m| toks[m].text == "=" && toks[m + 1].text != "=")?;
    (eq < at).then_some(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;

    fn run(src: &str) -> Vec<String> {
        let scanned = scan(src);
        let files = [DataflowFile { idx: 0, scanned: &scanned }];
        check_workspace(&files)
            .into_iter()
            .map(|(_, f)| f.message)
            .collect()
    }

    #[test]
    fn dropped_construction_is_flagged() {
        let msgs = run(
            "fn f() {\n\
             let _e = QueryError::Timeout;\n\
             }\n",
        );
        assert_eq!(msgs.len(), 1, "{msgs:#?}");
        assert!(msgs[0].contains("`QueryError::Timeout` is constructed here"));
    }

    #[test]
    fn returned_raised_and_tail_constructions_sink() {
        let msgs = run(
            "fn a() -> Result<(), QueryError> { return Err(QueryError::Timeout); }\n\
             fn b() -> Result<(), QueryError> { source().map_err(|_| QueryError::Transient)?; Ok(()) }\n\
             fn c() -> QueryError { QueryError::Timeout }\n",
        );
        assert!(msgs.is_empty(), "{msgs:#?}");
    }

    #[test]
    fn call_and_macro_arguments_sink() {
        let msgs = run(
            "fn f(stats: &mut AccessStats) {\n\
             stats.record(ProbeError::Source { probe_index: 0, value: v(), error: e() });\n\
             let faults = vec![QueryError::Timeout, QueryError::Transient];\n\
             consume(faults);\n\
             }\n",
        );
        assert!(msgs.is_empty(), "{msgs:#?}");
    }

    #[test]
    fn match_arm_results_and_patterns_are_not_flagged() {
        let msgs = run(
            "fn f(kind: u8) -> QueryError {\n\
             match kind {\n\
             0 => QueryError::Timeout,\n\
             _ => QueryError::Transient,\n\
             }\n\
             }\n\
             fn g(e: &QueryError) -> bool {\n\
             matches!(e, QueryError::Timeout | QueryError::Transient)\n\
             }\n\
             fn h(r: Result<(), QueryError>) -> bool {\n\
             match r { Err(QueryError::Timeout) | Err(QueryError::Transient) => true, _ => false }\n\
             }\n",
        );
        assert!(msgs.is_empty(), "{msgs:#?}");
    }

    #[test]
    fn let_binding_tracks_to_a_later_sink() {
        let sunk = run(
            "fn f() -> Result<(), QueryError> {\n\
             let e = QueryError::RateLimited { retry_after: 2 };\n\
             log(&e);\n\
             Err(e)\n\
             }\n",
        );
        assert!(sunk.is_empty(), "{sunk:#?}");
        let dropped = run(
            "fn f() {\n\
             let e = QueryError::Timeout;\n\
             let _alias = e;\n\
             }\n",
        );
        assert_eq!(dropped.len(), 1, "{dropped:#?}");
    }

    #[test]
    fn fault_sink_annotation_excuses_and_goes_stale() {
        let excused = run(
            "fn f(slot: &mut Option<QueryError>) {\n\
             // aimq-fault: sink -- stored into the retry slot, drained by tick()\n\
             *slot = Some(QueryError::Timeout);\n\
             }\n",
        );
        assert!(excused.is_empty(), "{excused:#?}");
        let stale = run(
            "fn f() -> u32 {\n\
             // aimq-fault: sink -- nothing here\n\
             41 + 1\n\
             }\n",
        );
        assert_eq!(stale.len(), 1, "{stale:#?}");
        assert!(stale[0].contains("stale `aimq-fault: sink`"));
    }

    #[test]
    fn test_regions_are_skipped() {
        let msgs = run(
            "#[cfg(test)]\n\
             mod tests {\n\
             fn f() { let _e = QueryError::Timeout; }\n\
             }\n",
        );
        assert!(msgs.is_empty(), "{msgs:#?}");
    }
}
