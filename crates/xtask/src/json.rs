//! Machine-readable lint output: JSON emission for `--json`, a minimal
//! JSON reader for the `annotate` subcommand, and GitHub Actions
//! workflow-command generation (`::error file=…`) so findings render
//! inline on pull requests.
//!
//! Both directions are hand-rolled: the offline build environment has
//! no serde, and the schema is a single flat array of findings.

use crate::{LintReport, Severity};

/// Serialize a report as JSON: `{"errors": N, "warnings": N,
/// "findings": [{rule, severity, file, line, col, message, help}]}`.
pub fn to_json(report: &LintReport) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"errors\":{},\"warnings\":{},\"findings\":[",
        report.errors(),
        report.warnings()
    ));
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"severity\":{},\"file\":{},\"line\":{},\"col\":{},\
             \"message\":{},\"help\":{}}}",
            quote(&d.rule),
            quote(match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            }),
            quote(&d.path.display().to_string()),
            d.line,
            d.col,
            quote(&d.message),
            quote(&d.help),
        ));
    }
    out.push_str("]}");
    out
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value (just enough for the lint schema).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// null
    Null,
    /// true / false
    Bool(bool),
    /// Numbers (lint output only uses unsigned integers).
    Num(f64),
    /// String
    Str(String),
    /// Array
    Arr(Vec<Value>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer payload, if this is a number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as usize),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        other => Err(format!("unexpected {other:?} at byte {pos}")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = bytes.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("truncated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Re-sync to char boundaries for multibyte UTF-8.
                let mut len = 1;
                while *pos < bytes.len() && bytes[*pos] & 0xc0 == 0x80 {
                    *pos += 1;
                    len += 1;
                }
                let start = *pos - len;
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid UTF-8")?,
                );
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            other => return Err(format!("expected `,` or `]`, got {other:?} at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // {
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}"));
        }
        *pos += 1;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            other => return Err(format!("expected `,` or `}}`, got {other:?} at byte {pos}")),
        }
    }
}

/// Escape a workflow-command *value* (the message after `::…::`).
fn esc_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escape a workflow-command *property* (file=, title=).
fn esc_prop(s: &str) -> String {
    esc_data(s).replace(':', "%3A").replace(',', "%2C")
}

/// Render parsed `--json` output as GitHub Actions annotations, one
/// `::error`/`::warning` workflow command per finding.
pub fn annotations(doc: &Value) -> Result<String, String> {
    let findings = doc
        .get("findings")
        .and_then(|v| match v {
            Value::Arr(items) => Some(items.as_slice()),
            _ => None,
        })
        .ok_or("lint JSON has no `findings` array")?;
    let mut out = String::new();
    for f in findings {
        let field = |k: &str| {
            f.get(k)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("finding missing string field `{k}`"))
        };
        let num = |k: &str| {
            f.get(k)
                .and_then(Value::as_usize)
                .ok_or_else(|| format!("finding missing numeric field `{k}`"))
        };
        let command = match field("severity")? {
            "warning" => "warning",
            _ => "error",
        };
        out.push_str(&format!(
            "::{command} file={},line={},col={},title=aimq::{}::{}\n",
            esc_prop(field("file")?),
            num("line")?,
            num("col")?,
            esc_prop(field("rule")?),
            esc_data(field("message")?),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Diagnostic;
    use std::path::PathBuf;

    fn sample_report() -> LintReport {
        LintReport {
            diagnostics: vec![
                Diagnostic {
                    rule: "lock-discipline".into(),
                    severity: Severity::Error,
                    path: PathBuf::from("crates/serve/src/queue.rs"),
                    line: 40,
                    col: 12,
                    message: "guard held across `recv`, \"quoted\"".into(),
                    snippet: "    let s = lock(&self.state);".into(),
                    help: "drop the guard first".into(),
                },
                Diagnostic {
                    rule: "indexing".into(),
                    severity: Severity::Warning,
                    path: PathBuf::from("crates/core/src/engine.rs"),
                    line: 7,
                    col: 3,
                    message: "direct indexing".into(),
                    snippet: String::new(),
                    help: String::new(),
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let report = sample_report();
        let doc = parse(&to_json(&report)).expect("parse own output");
        assert_eq!(doc.get("errors").and_then(Value::as_usize), Some(1));
        assert_eq!(doc.get("warnings").and_then(Value::as_usize), Some(1));
        let Some(Value::Arr(findings)) = doc.get("findings") else {
            panic!("findings array missing: {doc:?}");
        };
        assert_eq!(findings.len(), 2);
        assert_eq!(
            findings[0].get("rule").and_then(Value::as_str),
            Some("lock-discipline")
        );
        assert_eq!(
            findings[0].get("message").and_then(Value::as_str),
            Some("guard held across `recv`, \"quoted\"")
        );
        assert_eq!(findings[1].get("line").and_then(Value::as_usize), Some(7));
    }

    #[test]
    fn annotations_escape_workflow_metacharacters() {
        let report = sample_report();
        let doc = parse(&to_json(&report)).expect("parse");
        let ann = annotations(&doc).expect("annotate");
        let lines: Vec<&str> = ann.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].starts_with("::error file=crates/serve/src/queue.rs,line=40,col=12,"),
            "{ann}"
        );
        assert!(lines[1].starts_with("::warning "), "{ann}");
        // Message text rides after the `::` separator unescaped except
        // for %, CR, LF.
        assert!(lines[0].contains("guard held across `recv`"), "{ann}");
    }

    #[test]
    fn parser_rejects_trailing_garbage_and_bad_escapes() {
        assert!(parse("{} extra").is_err());
        assert!(parse("\"\\q\"").is_err());
        assert!(parse("[1, 2").is_err());
        assert_eq!(
            parse("[1, \"two\", {\"k\": null}]").unwrap(),
            Value::Arr(vec![
                Value::Num(1.0),
                Value::Str("two".into()),
                Value::Obj(vec![("k".into(), Value::Null)]),
            ])
        );
    }
}
