//! The three AIMQ lint rules, matched over a [`ScannedFile`].
//!
//! | id | severity | scope | what it catches |
//! |---|---|---|---|
//! | `panic` | error | six library crates | `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `indexing` | warning | six library crates | direct `expr[...]` indexing/slicing |
//! | `float-ordering` | error | six library crates | `.partial_cmp(` calls on scores |
//! | `hashmap` | error | `afd`, `sim`, `rock`, `core` | any `HashMap`/`HashSet` use |
//!
//! `indexing` is warn-level by default — mirroring clippy's
//! allow-by-default `indexing_slicing` — because invariant-backed
//! indexing is pervasive in the hot paths; `--deny-warnings` promotes
//! it for audits.

use crate::source::ScannedFile;

/// Lint severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run.
    Error,
    /// Reported; fails only under `--deny-warnings`.
    Warning,
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier as used in `aimq-lint: allow(...)`.
    pub rule: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
    /// Suggested remedy, rendered as a `help:` note.
    pub help: &'static str,
}

/// Which rule families apply to a crate.
#[derive(Debug, Clone, Copy)]
pub struct RuleSet {
    /// L1 panic-freedom + L2 float ordering.
    pub panic_and_ordering: bool,
    /// L3 determinism (HashMap/HashSet ban).
    pub determinism: bool,
}

/// Keywords that can legitimately precede `[` without it being an
/// indexing expression (slice patterns, `for x in [..]`, etc.).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "match", "if", "while", "return", "mut", "ref", "move", "else", "static", "const",
    "as", "dyn", "impl", "where", "for", "loop", "break", "use", "pub", "fn", "enum", "struct",
    "type", "trait", "unsafe", "extern", "box", "await", "yield",
];

/// Run every applicable rule over `file`, honoring test regions and
/// suppressions. Suppressed findings are dropped; malformed directives
/// surface as `lint-allow` errors from [`crate::lint_file`].
pub fn check(file: &ScannedFile, rules: RuleSet) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &file.tokens;
    for k in 0..toks.len() {
        if file.in_test_region(toks[k].offset) {
            continue;
        }
        let t = &toks[k];
        let prev = k.checked_sub(1).map(|p| &toks[p]);
        let next = toks.get(k + 1);

        if rules.panic_and_ordering {
            // `.unwrap()` / `.expect(`
            if (t.text == "unwrap" || t.text == "expect")
                && prev.is_some_and(|p| p.text == ".")
                && next.is_some_and(|n| n.text == "(")
            {
                findings.push(Finding {
                    rule: "panic",
                    severity: Severity::Error,
                    line: t.line,
                    col: t.col,
                    message: format!("`.{}()` in library code can panic", t.text),
                    help: "propagate through the AimqError taxonomy (`?`, `ok_or`, `unwrap_or`) \
                           or justify with `// aimq-lint: allow(panic) -- <invariant>`",
                });
            }
            // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
            if matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && next.is_some_and(|n| n.text == "!")
                && !prev.is_some_and(|p| p.text == "." || p.text == ":")
            {
                findings.push(Finding {
                    rule: "panic",
                    severity: Severity::Error,
                    line: t.line,
                    col: t.col,
                    message: format!("`{}!` in library code", t.text),
                    help:
                        "return an AimqError variant (or debug_assert! for internal invariants); \
                           justify exceptions with `// aimq-lint: allow(panic) -- <invariant>`",
                });
            }
            // `.partial_cmp(` — NaN-unsafe comparison on similarity /
            // importance scores.
            if t.text == "partial_cmp"
                && prev.is_some_and(|p| p.text == ".")
                && next.is_some_and(|n| n.text == "(")
            {
                findings.push(Finding {
                    rule: "float-ordering",
                    severity: Severity::Error,
                    line: t.line,
                    col: t.col,
                    message: "`.partial_cmp()` on scores is NaN-unsafe and breaks total ranking"
                        .to_string(),
                    help: "use `f64::total_cmp`, `aimq_catalog::OrderedScore`, or justify with \
                           `// aimq-lint: allow(float-ordering) -- <why NaN cannot occur>`",
                });
            }
            // Direct indexing `expr[...]` (warn-level).
            if t.text == "["
                && prev.is_some_and(|p| {
                    (p.is_ident && !NON_INDEX_KEYWORDS.contains(&p.text.as_str()))
                        || p.text == ")"
                        || p.text == "]"
                })
            {
                findings.push(Finding {
                    rule: "indexing",
                    severity: Severity::Warning,
                    line: t.line,
                    col: t.col,
                    message: "direct indexing can panic on out-of-range input".to_string(),
                    help: "prefer `.get()`/`.get_mut()` with error propagation where the index \
                           is not invariant-backed",
                });
            }
        }

        if rules.determinism && (t.text == "HashMap" || t.text == "HashSet") && t.is_ident {
            findings.push(Finding {
                rule: "hashmap",
                severity: Severity::Error,
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` iteration order is nondeterministic; mining/ranking crates must be \
                     reproducible",
                    t.text
                ),
                help: "use BTreeMap/BTreeSet, or keep the map and justify with \
                       `// aimq-lint: allow(hashmap) -- <the keyed sort that restores order>`",
            });
        }
    }
    findings
}

/// Every rule id accepted inside `aimq-lint: allow(...)`.
pub const KNOWN_RULES: &[&str] = &["panic", "indexing", "float-ordering", "hashmap"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;

    const ALL: RuleSet = RuleSet {
        panic_and_ordering: true,
        determinism: true,
    };

    fn rules_hit(src: &str) -> Vec<&'static str> {
        check(&scan(src), ALL).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_and_expect_are_flagged() {
        assert_eq!(rules_hit("fn f() { x.unwrap(); }"), vec!["panic"]);
        assert_eq!(rules_hit("fn f() { x.expect(\"m\"); }"), vec!["panic"]);
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        assert!(rules_hit("fn f() { x.unwrap_or(0); x.unwrap_or_else(f); }").is_empty());
    }

    #[test]
    fn panic_macros_are_flagged() {
        assert_eq!(rules_hit("fn f() { panic!(\"boom\"); }"), vec!["panic"]);
        assert_eq!(rules_hit("fn f() { unreachable!() }"), vec!["panic"]);
    }

    #[test]
    fn partial_cmp_call_is_flagged_but_definition_is_not() {
        assert_eq!(
            rules_hit("fn f() { a.partial_cmp(&b); }"),
            vec!["float-ordering"]
        );
        assert!(rules_hit("fn partial_cmp(a: f64) {}").is_empty());
    }

    #[test]
    fn indexing_is_a_warning() {
        let f = check(&scan("fn f() { let y = xs[0]; }"), ALL);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "indexing");
        assert_eq!(f[0].severity, Severity::Warning);
    }

    #[test]
    fn slice_patterns_and_array_types_are_not_indexing() {
        assert!(rules_hit("fn f(xs: [f64; 3]) { let [a, b, c] = xs; }").is_empty());
        assert!(rules_hit("fn f() { for x in [1, 2] {} }").is_empty());
        assert!(rules_hit("fn f() { let v = vec![1, 2]; }").is_empty());
    }

    #[test]
    fn hashmap_flagged_only_under_determinism() {
        let src = "use std::collections::HashMap;";
        assert_eq!(rules_hit(src), vec!["hashmap"]);
        let only_panic = RuleSet {
            panic_and_ordering: true,
            determinism: false,
        };
        assert!(check(&scan(src), only_panic).is_empty());
    }

    #[test]
    fn test_module_code_is_exempt() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}";
        assert!(rules_hit(src).is_empty());
    }
}
