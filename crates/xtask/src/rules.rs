//! The AIMQ lint rules, matched over a [`ScannedFile`].
//!
//! | id | severity | scope | what it catches |
//! |---|---|---|---|
//! | `panic` | error | eight library crates | `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `indexing` | warning | eight library crates | direct `expr[...]` indexing/slicing |
//! | `float-ordering` | error | eight library crates | `.partial_cmp(` calls on scores |
//! | `hashmap` | error | `afd`, `sim`, `rock`, `core`, `serve` | any `HashMap`/`HashSet` use |
//! | `wallclock` | error | `afd`, `sim`, `rock`, `core`, `serve` | `thread::sleep(`, `Instant::now()`, `SystemTime::now()`, `.elapsed()` |
//! | `lock-discipline` | error | eight library crates | unannotated lock fields, unresolvable/nested acquisitions that close ordering cycles, guards held across blocking calls |
//! | `atomics-audit` | error | eight library crates | atomic fields without a role annotation, `Relaxed` outside `counter` roles, unpaired Acquire/Release |
//! | `layering` | error | all aimq crates | upward or undeclared cross-crate dependencies and imports |
//! | `probe-effect` | error | all aimq crates | inferred probing paths in probe-free crates, probes under a live guard, unannotated or stale probing entry points |
//! | `result-discipline` | error | all aimq crates | `let _ =`, terminal `.ok();`, bare calls discarding fault-carrying `Result`s, wildcard `_ =>` arms over fault enums |
//! | `counter-arith` | error | all aimq crates | unchecked `+`/`-`/`*` arithmetic touching tracked budget/counter fields |
//! | `wire-drift` | error | all aimq crates | stale `results/WIRE_SCHEMA.json`, duplicate JSON keys, unannotated conditional keys in `to_json` bodies |
//! | `error-surface` | error | all aimq crates | fault-enum variants never named at the HTTP boundary, machine codes missing from (or drifted against) the DESIGN.md status-code table |
//! | `degradation-flow` | error | all aimq crates | constructed fault-enum values that never reach a sink (return, `?`, call/recorder, tail position) |
//! | `lint-allow` | error | everywhere linted | malformed, unjustified, or unknown-rule suppression directives |
//!
//! `indexing` is warn-level by default — mirroring clippy's
//! allow-by-default `indexing_slicing` — because invariant-backed
//! indexing is pervasive in the hot paths; `--deny-warnings` promotes
//! it for audits.
//!
//! `wallclock` (L4) exists because the serving runtime's tests replay
//! deadlines and backoff schedules over `VirtualClock` ticks; a stray
//! `thread::sleep`, `Instant::now()`, `SystemTime::now()`, or
//! `.elapsed()` call in determinism-scoped code makes those replays
//! timing-dependent. Method calls named `now`/`sleep` on other
//! receivers (e.g. `clock.now()`) are not flagged — only the qualified
//! `Instant::now` / `SystemTime::now` / `thread::sleep` forms plus the
//! `.elapsed()` method, which only time sources provide.
//!
//! The structure-aware families L5 `lock-discipline` and L6
//! `atomics-audit` live in [`crate::concurrency`] (facts from
//! [`crate::structure`]); L7 `layering` lives in [`crate::layering`].
//! They are listed here so suppression, `--explain`, and the doc table
//! stay in one registry.

use crate::source::ScannedFile;

/// Lint severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run.
    Error,
    /// Reported; fails only under `--deny-warnings`.
    Warning,
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier as used in `aimq-lint: allow(...)`.
    pub rule: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
    /// Suggested remedy, rendered as a `help:` note.
    pub help: &'static str,
}

/// Which rule families apply to a crate.
#[derive(Debug, Clone, Copy)]
pub struct RuleSet {
    /// L1 panic-freedom + L2 float ordering.
    pub panic_and_ordering: bool,
    /// L3 determinism (HashMap/HashSet ban) + L4 wall-clock ban
    /// (`thread::sleep` / `Instant::now`): both guard the same property
    /// — replayability of results — so they share a scope.
    pub determinism: bool,
    /// L5 lock-discipline + L6 atomics-audit (structure-aware checks in
    /// [`crate::concurrency`]). Shares the L1 scope: any library crate
    /// may grow shared state.
    pub concurrency: bool,
}

/// Keywords that can legitimately precede `[` without it being an
/// indexing expression (slice patterns, `for x in [..]`, etc.).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "match", "if", "while", "return", "mut", "ref", "move", "else", "static", "const",
    "as", "dyn", "impl", "where", "for", "loop", "break", "use", "pub", "fn", "enum", "struct",
    "type", "trait", "unsafe", "extern", "box", "await", "yield",
];

/// Run every applicable rule over `file`, honoring test regions and
/// suppressions. Suppressed findings are dropped; malformed directives
/// surface as `lint-allow` errors from [`crate::lint_file`].
pub fn check(file: &ScannedFile, rules: RuleSet) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &file.tokens;
    for k in 0..toks.len() {
        if file.in_test_region(toks[k].offset) {
            continue;
        }
        let t = &toks[k];
        let prev = k.checked_sub(1).map(|p| &toks[p]);
        let next = toks.get(k + 1);

        if rules.panic_and_ordering {
            // `.unwrap()` / `.expect(`
            if (t.text == "unwrap" || t.text == "expect")
                && prev.is_some_and(|p| p.text == ".")
                && next.is_some_and(|n| n.text == "(")
            {
                findings.push(Finding {
                    rule: "panic",
                    severity: Severity::Error,
                    line: t.line,
                    col: t.col,
                    message: format!("`.{}()` in library code can panic", t.text),
                    help: "propagate through the AimqError taxonomy (`?`, `ok_or`, `unwrap_or`) \
                           or justify with `// aimq-lint: allow(panic) -- <invariant>`",
                });
            }
            // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
            if matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && next.is_some_and(|n| n.text == "!")
                && !prev.is_some_and(|p| p.text == "." || p.text == ":")
            {
                findings.push(Finding {
                    rule: "panic",
                    severity: Severity::Error,
                    line: t.line,
                    col: t.col,
                    message: format!("`{}!` in library code", t.text),
                    help:
                        "return an AimqError variant (or debug_assert! for internal invariants); \
                           justify exceptions with `// aimq-lint: allow(panic) -- <invariant>`",
                });
            }
            // `.partial_cmp(` — NaN-unsafe comparison on similarity /
            // importance scores.
            if t.text == "partial_cmp"
                && prev.is_some_and(|p| p.text == ".")
                && next.is_some_and(|n| n.text == "(")
            {
                findings.push(Finding {
                    rule: "float-ordering",
                    severity: Severity::Error,
                    line: t.line,
                    col: t.col,
                    message: "`.partial_cmp()` on scores is NaN-unsafe and breaks total ranking"
                        .to_string(),
                    help: "use `f64::total_cmp`, `aimq_catalog::OrderedScore`, or justify with \
                           `// aimq-lint: allow(float-ordering) -- <why NaN cannot occur>`",
                });
            }
            // Direct indexing `expr[...]` (warn-level). A lifetime ident
            // before the bracket (`&'a [u8]`) is a slice type, not an
            // indexing expression.
            if t.text == "["
                && prev.is_some_and(|p| {
                    (p.is_ident && !NON_INDEX_KEYWORDS.contains(&p.text.as_str()))
                        || p.text == ")"
                        || p.text == "]"
                })
                && !(prev.is_some_and(|p| p.is_ident)
                    && k.checked_sub(2).is_some_and(|p2| toks[p2].text == "'"))
            {
                findings.push(Finding {
                    rule: "indexing",
                    severity: Severity::Warning,
                    line: t.line,
                    col: t.col,
                    message: "direct indexing can panic on out-of-range input".to_string(),
                    help: "prefer `.get()`/`.get_mut()` with error propagation where the index \
                           is not invariant-backed",
                });
            }
        }

        if rules.determinism {
            // L4: `Instant::now(` / `thread::sleep(` — wall-clock reads
            // and real sleeps make replay timing-dependent. Only the
            // path-qualified form is flagged: the tokenizer emits `::`
            // as two `:` tokens, so the shape is
            // `<qualifier> : : <name> (`. Method calls like
            // `clock.now()` have a `.` before the name and don't match.
            let qualified_by = |q: &str| {
                k.checked_sub(3).is_some_and(|i| {
                    toks.get(i).is_some_and(|t3| t3.text == q && t3.is_ident)
                        && toks.get(i + 1).is_some_and(|c| c.text == ":")
                        && toks.get(i + 2).is_some_and(|c| c.text == ":")
                })
            };
            if t.text == "now"
                && next.is_some_and(|n| n.text == "(")
                && (qualified_by("Instant") || qualified_by("SystemTime"))
            {
                findings.push(Finding {
                    rule: "wallclock",
                    severity: Severity::Error,
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{}::now()` reads the wall clock in a determinism-scoped crate",
                        if qualified_by("Instant") {
                            "Instant"
                        } else {
                            "SystemTime"
                        }
                    ),
                    help: "thread a `VirtualClock` (or tick counter) through instead, or justify \
                           with `// aimq-lint: allow(wallclock) -- <why timing never affects \
                           results>`",
                });
            }
            // `.elapsed()` — only time sources (`Instant`, `SystemTime`)
            // provide it, so any receiver is a wall-clock read.
            if t.text == "elapsed"
                && prev.is_some_and(|p| p.text == ".")
                && next.is_some_and(|n| n.text == "(")
            {
                findings.push(Finding {
                    rule: "wallclock",
                    severity: Severity::Error,
                    line: t.line,
                    col: t.col,
                    message: "`.elapsed()` measures real time in a determinism-scoped crate"
                        .to_string(),
                    help: "count `VirtualClock` ticks instead, or justify with \
                           `// aimq-lint: allow(wallclock) -- <why timing never affects \
                           results>`",
                });
            }
            if t.text == "sleep" && next.is_some_and(|n| n.text == "(") && qualified_by("thread") {
                findings.push(Finding {
                    rule: "wallclock",
                    severity: Severity::Error,
                    line: t.line,
                    col: t.col,
                    message: "`thread::sleep()` blocks on real time in a determinism-scoped crate"
                        .to_string(),
                    help: "advance a `VirtualClock` or park on a `Condvar` with an explicit \
                           signal; justify exceptions with \
                           `// aimq-lint: allow(wallclock) -- <justification>`",
                });
            }
        }

        if rules.determinism && (t.text == "HashMap" || t.text == "HashSet") && t.is_ident {
            findings.push(Finding {
                rule: "hashmap",
                severity: Severity::Error,
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` iteration order is nondeterministic; mining/ranking crates must be \
                     reproducible",
                    t.text
                ),
                help: "use BTreeMap/BTreeSet, or keep the map and justify with \
                       `// aimq-lint: allow(hashmap) -- <the keyed sort that restores order>`",
            });
        }
    }
    findings
}

/// Every rule id accepted inside `aimq-lint: allow(...)`.
pub const KNOWN_RULES: &[&str] = &[
    "panic",
    "indexing",
    "float-ordering",
    "hashmap",
    "wallclock",
    "lock-discipline",
    "atomics-audit",
    "layering",
    "probe-effect",
    "result-discipline",
    "counter-arith",
    "wire-drift",
    "error-surface",
    "degradation-flow",
];

/// One registry entry backing `cargo xtask lint --explain <rule>` and
/// the doc-drift self-test over the module-doc table above.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule id as it appears in findings and `allow(...)` lists.
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line description (what it catches).
    pub summary: &'static str,
    /// Why the rule exists in this workspace.
    pub rationale: &'static str,
    /// How to fix or justify a finding.
    pub remedy: &'static str,
}

/// The full rule registry: every id that can appear in a diagnostic,
/// including the `lint-allow` meta-rule for malformed suppressions.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "panic",
        severity: Severity::Error,
        summary: "`.unwrap()`, `.expect(`, and panicking macros in library crates",
        rationale: "the engine answers imprecise queries over unreliable web sources; a panic \
                    in library code turns one malformed page or empty probe into a crash of \
                    the whole mining or serving run. Failures must flow through the AimqError \
                    taxonomy so callers can degrade gracefully.",
        remedy: "propagate with `?`, `ok_or`, or `unwrap_or`; for true invariants, justify \
                 with `// aimq-lint: allow(panic) -- <the invariant>`.",
    },
    RuleInfo {
        id: "indexing",
        severity: Severity::Warning,
        summary: "direct `expr[...]` indexing or slicing",
        rationale: "out-of-range indexing panics; most AIMQ hot paths index by invariant \
                    (attribute counts fixed at catalog build), so this stays warn-level, but \
                    audits promote it with --deny-warnings.",
        remedy: "prefer `.get()`/`.get_mut()` with error propagation where the index is not \
                 invariant-backed.",
    },
    RuleInfo {
        id: "float-ordering",
        severity: Severity::Error,
        summary: "`.partial_cmp(` on similarity/importance scores",
        rationale: "NaN makes `partial_cmp` return None, and `unwrap_or(Equal)` silently \
                    reshuffles rankings — the paper's whole output is a ranked list, so \
                    ordering must be total.",
        remedy: "use `f64::total_cmp` or `aimq_catalog::OrderedScore`; justify exceptions \
                 with `// aimq-lint: allow(float-ordering) -- <why NaN cannot occur>`.",
    },
    RuleInfo {
        id: "hashmap",
        severity: Severity::Error,
        summary: "`HashMap`/`HashSet` in mining/ranking/answering crates",
        rationale: "hash iteration order varies run to run; AFD mining, similarity tables, \
                    and answer ranking must be byte-for-byte reproducible.",
        remedy: "use BTreeMap/BTreeSet, or keep the map and justify with \
                 `// aimq-lint: allow(hashmap) -- <the keyed sort that restores order>`.",
    },
    RuleInfo {
        id: "wallclock",
        severity: Severity::Error,
        summary: "`thread::sleep`, `Instant::now()`, `SystemTime::now()`, or `.elapsed()` in \
                  determinism-scoped crates",
        rationale: "deadline and backoff behavior replays over VirtualClock ticks in tests; \
                    real time leaking into those crates makes replays timing-dependent and \
                    flaky.",
        remedy: "thread a `VirtualClock` or tick counter through; justify offline stopwatches \
                 with `// aimq-lint: allow(wallclock) -- <why timing never affects results>`.",
    },
    RuleInfo {
        id: "lock-discipline",
        severity: Severity::Error,
        summary: "lock fields without a family, unresolvable or cycle-closing acquisitions, \
                  and guards held across blocking calls",
        rationale: "the concurrent runtime shares striped caches, admission queues, and \
                    breaker state across workers; deadlocks from inconsistent acquisition \
                    order or probes under a guard only surface under load, so the ordering \
                    graph is checked statically across the whole workspace.",
        remedy: "declare `// aimq-lock: family(<name>) -- <why>` on each owned Mutex, mark \
                 indirect acquisitions with `// aimq-lock: use(<name>)`, keep one global \
                 acquisition order, and scope guards so they drop before blocking calls.",
    },
    RuleInfo {
        id: "atomics-audit",
        severity: Severity::Error,
        summary: "atomic fields without a role, `Relaxed` outside counter roles, and \
                  unpaired Acquire/Release",
        rationale: "~40 `Ordering::Relaxed` sites entered with the concurrent runtime; \
                    relaxed ops are correct for statistics counters but silently wrong for \
                    flags and seqlock payloads, and the difference is invisible in review \
                    without a declared intent.",
        remedy: "annotate each atomic with `// aimq-atomic: counter|flag|seqlock -- <why>`; \
                 flags pair Release stores with Acquire loads; seqlock payloads stay Relaxed \
                 only under a version-word fence in the same function.",
    },
    RuleInfo {
        id: "layering",
        severity: Severity::Error,
        summary: "cross-crate dependencies or imports that go up the crate DAG, or that \
                  Cargo.toml never declared",
        rationale: "the workspace layers catalog → storage → {afd, sim} → rock → core → \
                    serve → {http, cli, eval, bench}; an upward import (storage reaching \
                    into serve, or serve reaching into http) couples probe plumbing to \
                    policy and blocks reuse of the lower layers.",
        remedy: "move the shared type down (usually into catalog or storage), or justify \
                 with `# aimq-lint: allow(layering) -- <why>` on the Cargo.toml line / \
                 `// aimq-lint: allow(layering) -- <why>` on the import.",
    },
    RuleInfo {
        id: "probe-effect",
        severity: Severity::Error,
        summary: "inferred probing paths in probe-free crates, probes made under a live lock \
                  guard, and unannotated or stale probing entry points",
        rationale: "every probe to an autonomous source must flow through the budgeted, \
                    degradation-aware `WebDatabase::try_query` boundary; the mining and \
                    statistics crates assume a consistent source snapshot, so a call chain \
                    from `afd`/`sim`/`rock`/`catalog` to the boundary — inferred by a \
                    workspace may-call fixpoint — breaks the paper's sampling model, and a \
                    probe under a lock guard serializes every worker behind source latency.",
        remedy: "route source I/O through the storage layer; annotate each direct boundary \
                 caller with `// aimq-probe: entry -- <where budget accounting lives>`; drop \
                 guards before probing; justify residues with \
                 `// aimq-lint: allow(probe-effect) -- <why>`.",
    },
    RuleInfo {
        id: "result-discipline",
        severity: Severity::Error,
        summary: "silently discarded fallible results (`let _ =`, terminal `.ok();`, bare \
                  call statements) and wildcard `_ =>` arms over fault enums",
        rationale: "the fault taxonomy (`QueryError`, `ProbeError`, `ServeError`) exists so \
                    degradation is explicit; a swallowed error or a wildcard arm absorbs a \
                    fault the engine was designed to account for, and a newly added fault \
                    variant should not compile until every match decides what it means.",
        remedy: "propagate with `?`, handle with `match`/`if let Err`, count the event in \
                 stats, and name every enum variant; justify intentional drops with \
                 `// aimq-lint: allow(result-discipline) -- <why>`.",
    },
    RuleInfo {
        id: "counter-arith",
        severity: Severity::Error,
        summary: "unchecked `+`/`-`/`*` (or compound) arithmetic in statements touching \
                  tracked budget/counter fields",
        rationale: "probe budgets, cache capacities, and statistics counters are the units \
                    the engine's degradation contract is written in; debug builds panic on \
                    overflow but release builds wrap silently, turning an exhausted budget \
                    into a fresh one.",
        remedy: "track fields with `// aimq-atomic: counter` or `// aimq-arith: counter -- \
                 <what it counts>`, use `saturating_*`/`checked_*` arithmetic on them, and \
                 justify bounded sites with `// aimq-arith: allow -- <invariant>`.",
    },
    RuleInfo {
        id: "wire-drift",
        severity: Severity::Error,
        summary: "stale `results/WIRE_SCHEMA.json`, duplicate keys in one JSON object \
                  literal, and keys emitted under conditionals without an \
                  `aimq-wire: optional` annotation",
        rationale: "clients of the HTTP front door parse the JSON the `to_json()` impls \
                    emit; a renamed key, a duplicated key whose survivor is an accident of \
                    construction order, or a key that silently disappears in one match arm \
                    all compile clean — the pinned schema inventory turns each into a lint \
                    failure with a reviewable diff.",
        remedy: "regenerate the inventory with `cargo xtask pin --write` (or `wire \
                 --write`) and commit the diff; rename/remove duplicate keys; annotate \
                 intentionally conditional keys with `// aimq-wire: optional -- <when \
                 clients see the key absent>`.",
    },
    RuleInfo {
        id: "error-surface",
        severity: Severity::Error,
        summary: "fault-enum variants never named at the HTTP mapping boundary, and \
                  `Response::error` machine codes that drift from the DESIGN.md \
                  status-code table",
        rationale: "the fault taxonomy is only explainable if every variant has a decided \
                    wire mapping and every machine code clients can see is documented with \
                    its status; a rewritten match that absorbs a variant, or an ad-hoc \
                    code invented at one call site, silently changes the public error \
                    surface.",
        remedy: "name every watched variant as `Enum::Variant` in the http crate's \
                 mapping code, pass machine codes as string literals, and keep the \
                 DESIGN.md `| machine code | status |` table in sync (add new codes, \
                 delete stale rows).",
    },
    RuleInfo {
        id: "degradation-flow",
        severity: Severity::Error,
        summary: "constructed fault-enum values (`QueryError`, `ProbeError`, \
                  `ServeError`) that never reach a sink",
        rationale: "the paper's degradation accounting treats the explanation as part of \
                    the answer; a fault value built and then dropped is a probe failure \
                    the `DegradationReport` never hears about, and it compiles clean \
                    because dropping a value is not an error in Rust.",
        remedy: "return or `?`-raise the value, pass it into a recorder \
                 (`AccessStats`, `DegradationReport`) or any call, or annotate \
                 `// aimq-fault: sink -- <where the accounting lives>` when the sink is \
                 real but invisible to the lexical pass.",
    },
    RuleInfo {
        id: "lint-allow",
        severity: Severity::Error,
        summary: "malformed, unjustified, or unknown-rule suppression directives",
        rationale: "an allow without a justification is indistinguishable from a shrug, and \
                    an allow naming a rule that does not exist suppresses nothing while \
                    looking load-bearing.",
        remedy: "write `// aimq-lint: allow(<known-rule>) -- <justification>` with a \
                 non-empty justification after the `--`.",
    },
];

/// Look up a rule by id (for `--explain`).
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;

    const ALL: RuleSet = RuleSet {
        panic_and_ordering: true,
        determinism: true,
        concurrency: true,
    };

    fn rules_hit(src: &str) -> Vec<&'static str> {
        check(&scan(src), ALL).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_and_expect_are_flagged() {
        assert_eq!(rules_hit("fn f() { x.unwrap(); }"), vec!["panic"]);
        assert_eq!(rules_hit("fn f() { x.expect(\"m\"); }"), vec!["panic"]);
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        assert!(rules_hit("fn f() { x.unwrap_or(0); x.unwrap_or_else(f); }").is_empty());
    }

    #[test]
    fn panic_macros_are_flagged() {
        assert_eq!(rules_hit("fn f() { panic!(\"boom\"); }"), vec!["panic"]);
        assert_eq!(rules_hit("fn f() { unreachable!() }"), vec!["panic"]);
    }

    #[test]
    fn partial_cmp_call_is_flagged_but_definition_is_not() {
        assert_eq!(
            rules_hit("fn f() { a.partial_cmp(&b); }"),
            vec!["float-ordering"]
        );
        assert!(rules_hit("fn partial_cmp(a: f64) {}").is_empty());
    }

    #[test]
    fn indexing_is_a_warning() {
        let f = check(&scan("fn f() { let y = xs[0]; }"), ALL);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "indexing");
        assert_eq!(f[0].severity, Severity::Warning);
    }

    #[test]
    fn slice_patterns_and_array_types_are_not_indexing() {
        assert!(rules_hit("fn f(xs: [f64; 3]) { let [a, b, c] = xs; }").is_empty());
        assert!(rules_hit("fn f() { for x in [1, 2] {} }").is_empty());
        assert!(rules_hit("fn f() { let v = vec![1, 2]; }").is_empty());
        // Slice types behind a lifetime are types, not indexing.
        assert!(rules_hit("fn f<'a>(buf: &'a [u8]) -> &'a [u8] { buf }").is_empty());
    }

    #[test]
    fn hashmap_flagged_only_under_determinism() {
        let src = "use std::collections::HashMap;";
        assert_eq!(rules_hit(src), vec!["hashmap"]);
        let only_panic = RuleSet {
            panic_and_ordering: true,
            determinism: false,
            concurrency: false,
        };
        assert!(check(&scan(src), only_panic).is_empty());
    }

    #[test]
    fn wallclock_flags_qualified_sleep_and_now() {
        assert_eq!(
            rules_hit("fn f(d: Duration) { std::thread::sleep(d); }"),
            vec!["wallclock"]
        );
        assert_eq!(
            rules_hit("fn f(d: Duration) { thread::sleep(d); }"),
            vec!["wallclock"]
        );
        assert_eq!(
            rules_hit("fn f() { let t = Instant::now(); }"),
            vec!["wallclock"]
        );
        assert_eq!(
            rules_hit("fn f() { let t = std::time::Instant::now(); }"),
            vec!["wallclock"]
        );
    }

    #[test]
    fn wallclock_ignores_method_calls_and_other_clocks() {
        assert!(rules_hit("fn f(clock: &VirtualClock) { let t = clock.now(); }").is_empty());
        assert!(rules_hit("fn f() { let t = VirtualClock::now(&c); }").is_empty());
        assert!(rules_hit("fn f(w: &Worker) { w.sleep(ticks); }").is_empty());
        // Only determinism-scoped crates see the rule at all.
        let only_panic = RuleSet {
            panic_and_ordering: true,
            determinism: false,
            concurrency: false,
        };
        assert!(check(&scan("fn f() { Instant::now(); }"), only_panic).is_empty());
    }

    #[test]
    fn wallclock_flags_systemtime_and_elapsed() {
        assert_eq!(
            rules_hit("fn f() { let t = SystemTime::now(); }"),
            vec!["wallclock"]
        );
        assert_eq!(
            rules_hit("fn f(start: Instant) { let d = start.elapsed(); }"),
            vec!["wallclock"]
        );
        // `elapsed` as a plain name (field, fn def) is not a call.
        assert!(rules_hit("fn elapsed(x: u64) -> u64 { x }").is_empty());
        assert!(rules_hit("struct S { elapsed: u64 }").is_empty());
    }

    #[test]
    fn registry_covers_known_rules_and_doc_table() {
        // Every suppressible rule has a registry entry, and the
        // registry's extra ids are exactly the non-suppressible
        // meta-rules.
        for id in KNOWN_RULES {
            assert!(
                rule_info(id).is_some(),
                "KNOWN_RULES id `{id}` not in RULES"
            );
        }
        let extra: Vec<&str> = RULES
            .iter()
            .map(|r| r.id)
            .filter(|id| !KNOWN_RULES.contains(id))
            .collect();
        assert_eq!(extra, vec!["lint-allow"], "unexpected registry-only rules");
        // Doc-drift guard: the module-doc table lists every registered
        // rule id as a `| `id` |` row.
        let doc = include_str!("rules.rs");
        for rule in RULES {
            let row = format!("//! | `{}` |", rule.id);
            assert!(
                doc.contains(&row),
                "rules.rs module-doc table is missing a row for `{}`",
                rule.id
            );
        }
    }

    #[test]
    fn test_module_code_is_exempt() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}";
        assert!(rules_hit(src).is_empty());
    }
}
