//! Structure-aware analysis over the flat token stream.
//!
//! The L5–L7 rule families need more than token matching: L5 must know
//! *which* lock guards are live at a call site, L6 must attribute an
//! atomic operation to the field it mutates, and L7 must see a file's
//! cross-crate imports. This module recovers just enough structure from
//! the [`ScannedFile`] token stream — brace-matched function bodies,
//! guard scopes, receiver chains — without a real parser (the offline
//! container cannot fetch `syn`).
//!
//! The model is deliberately lexical and conservative:
//!
//! - A **lock field** is an owned `Mutex<...>` in a field/let position
//!   (`name: Mutex<..>`, possibly through `Arc`/`Vec`/`[..]` wrappers).
//!   Borrowed `&Mutex<T>` parameters and `Mutex::new(..)` paths are not
//!   field declarations.
//! - An **acquisition** is `lock(..)` / `lock_stats(..)` (the
//!   workspace's poison-recovering helpers) or a `.lock()` method call.
//!   The guard lives until the end of the enclosing block — or, for an
//!   unbound temporary, the end of its statement — or an explicit
//!   `drop(guard)`.
//! - A **blocking call** under a live guard (probe forwarding,
//!   `Condvar::wait`, channel `recv`, sleeps, zero-arg `.join()`) is a
//!   violation, except the condvar idiom where the guard itself is the
//!   `wait(..)` argument.
//! - An **atomic op** is `.load(..)`/`.store(..)`/`fetch_*`/CAS with a
//!   qualified `Ordering::<variant>` argument; the field is resolved
//!   from the receiver chain, then from the surrounding statement, then
//!   from an inline `aimq-atomic:` directive.

use crate::source::{AtomicRole, LockAnnotation, ScannedFile, Token};

/// Free functions treated as lock acquisitions (the workspace's
/// poison-recovering helpers in `storage::web` and `serve`).
pub const ACQUIRE_FNS: &[&str] = &["lock", "lock_stats"];

/// Calls that may block or perform probe I/O; holding any lock guard
/// across one of these is an L5 violation.
pub const BLOCKING_CALLS: &[&str] = &[
    "try_query",
    "query",
    "wait",
    "wait_timeout",
    "recv",
    "recv_timeout",
    "park",
    "sleep",
];

const LOCK_TYPES: &[&str] = &["Mutex", "RwLock"];

const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Memory-ordering variants (discriminates `std::sync::atomic::Ordering`
/// from `std::cmp::Ordering`, whose variants are Less/Equal/Greater).
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Generic wrappers a field type may route through between the field
/// name and the lock/atomic type token.
const TYPE_WRAPPERS: &[&str] = &["Arc", "Vec", "Box", "Option", "VecDeque", "Cell", "RefCell"];

/// Keywords that precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "fn", "move", "in", "as", "else",
    "break", "continue", "unsafe", "ref", "mut", "use", "pub", "impl", "where", "dyn",
];

/// An owned `Mutex`/`RwLock` field (or binding) declaration.
#[derive(Debug, Clone)]
pub struct LockField {
    /// Field name.
    pub name: String,
    /// Declared family (from `aimq-lock: family(..)`), if any.
    pub family: Option<String>,
    /// 1-based line of the field name.
    pub line: usize,
    /// 1-based column of the type token.
    pub col: usize,
}

/// An atomic field (or binding) declaration.
#[derive(Debug, Clone)]
pub struct AtomicField {
    /// Field name.
    pub name: String,
    /// Declared role (from `aimq-atomic: ..`), if any.
    pub role: Option<AtomicRole>,
    /// 1-based line of the field name.
    pub line: usize,
    /// 1-based column of the type token.
    pub col: usize,
}

/// One lock acquisition site inside a function.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Resolved family; `None` when no annotation or field matched.
    pub family: Option<String>,
    /// Receiver text for diagnostics (`self.state`, `stripe`, ...).
    pub receiver: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Families of guards already live at this site.
    pub held: Vec<String>,
}

/// A call made while one or more guards are live.
#[derive(Debug, Clone)]
pub struct HeldCall {
    /// Callee identifier.
    pub callee: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Families of guards live across the call.
    pub held: Vec<String>,
}

/// A blocking call made while a guard is live.
#[derive(Debug, Clone)]
pub struct BlockedHold {
    /// The blocking callee (`try_query`, `wait`, ...).
    pub callee: String,
    /// Family of the guard held across it.
    pub family: String,
    /// 1-based line of the blocking call.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Line the offending guard was acquired on.
    pub acquired_line: usize,
}

/// One atomic operation with explicit ordering arguments.
#[derive(Debug, Clone)]
pub struct AtomicOp {
    /// Resolved field, when attribution succeeded.
    pub field: Option<String>,
    /// Role governing this op (field role, or inline directive).
    pub role: Option<AtomicRole>,
    /// Method name (`load`, `store`, `fetch_add`, ...).
    pub method: String,
    /// `Ordering::` variants appearing in the argument list.
    pub orderings: Vec<String>,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Everything the walk learned about one function.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Lock acquisitions, in source order.
    pub acquisitions: Vec<Acquisition>,
    /// Calls made while holding at least one resolved guard.
    pub held_calls: Vec<HeldCall>,
    /// Blocking calls under a live guard.
    pub blocking: Vec<BlockedHold>,
    /// Every callee identifier (deduplicated) — call-graph input.
    pub calls: Vec<String>,
    /// Atomic operations with explicit orderings.
    pub atomic_ops: Vec<AtomicOp>,
    /// `true` when the body contains an Acquire/Release/AcqRel/SeqCst
    /// atomic op or fence (licenses seqlock-role `Relaxed` sites).
    pub has_sync_op: bool,
}

/// A `use aimq_*` / `aimq_*::` reference outside test code.
#[derive(Debug, Clone)]
pub struct Import {
    /// Library identifier (`aimq`, `aimq_storage`, ...).
    pub lib: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Per-file structural facts consumed by the L5/L6/L7 checkers.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Owned lock declarations.
    pub lock_fields: Vec<LockField>,
    /// Atomic field declarations.
    pub atomic_fields: Vec<AtomicField>,
    /// Non-test functions, in source order.
    pub functions: Vec<FnFacts>,
    /// Non-test cross-crate imports.
    pub imports: Vec<Import>,
}

/// Analyze one scanned file.
pub fn analyze(file: &ScannedFile) -> FileAnalysis {
    let lock_fields = find_fields(file, LOCK_TYPES)
        .into_iter()
        .map(|(name, line, col)| LockField {
            family: family_for(file, line),
            name,
            line,
            col,
        })
        .collect::<Vec<_>>();
    let atomic_fields = find_fields(file, ATOMIC_TYPES)
        .into_iter()
        .map(|(name, line, col)| AtomicField {
            role: role_for(file, line),
            name,
            line,
            col,
        })
        .collect::<Vec<_>>();
    let functions = find_functions(&file.tokens)
        .into_iter()
        .filter(|f| !file.in_test_region(file.tokens[f.body_start].offset))
        .map(|f| walk_fn(file, &f, &lock_fields, &atomic_fields))
        .collect();
    FileAnalysis {
        imports: find_imports(file),
        lock_fields,
        atomic_fields,
        functions,
    }
}

fn family_for(file: &ScannedFile, line: usize) -> Option<String> {
    file.lock_directives.iter().find_map(|d| {
        if d.target_line != line {
            return None;
        }
        match &d.annotation {
            LockAnnotation::Family(name) => Some(name.clone()),
            LockAnnotation::Use(_) => None,
        }
    })
}

fn use_family_for(file: &ScannedFile, line: usize) -> Option<String> {
    file.lock_directives.iter().find_map(|d| {
        if d.target_line != line {
            return None;
        }
        match &d.annotation {
            LockAnnotation::Use(name) => Some(name.clone()),
            LockAnnotation::Family(_) => None,
        }
    })
}

fn role_for(file: &ScannedFile, line: usize) -> Option<AtomicRole> {
    file.atomic_directives
        .iter()
        .find(|d| d.target_line == line)
        .map(|d| d.role)
}

/// Find owned field/binding declarations of one of `types`: the type
/// token must not be a path qualifier (`Mutex::new`), must not be
/// borrowed (`&Mutex<T>`), and walking back over generic wrappers must
/// land on `name :`.
fn find_fields(file: &ScannedFile, types: &[&str]) -> Vec<(String, usize, usize)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for (idx, t) in toks.iter().enumerate() {
        if !t.is_ident || !types.contains(&t.text.as_str()) || file.in_test_region(t.offset) {
            continue;
        }
        if toks.get(idx + 1).is_some_and(|n| n.text == ":") {
            continue; // `Mutex::new(..)` — a path, not a declaration
        }
        if idx == 0 {
            continue;
        }
        if toks[idx - 1].text == "&" {
            continue; // borrowed parameter, ownership lives elsewhere
        }
        let mut j = idx - 1;
        while j > 0
            && (toks[j].text == "<"
                || toks[j].text == "["
                || TYPE_WRAPPERS.contains(&toks[j].text.as_str()))
        {
            j -= 1;
        }
        if j >= 1 && toks[j].text == ":" && toks[j - 1].is_ident && toks[j - 1].text != ":" {
            // `name : [wrappers] Type` — but `a::b` emits `:`+`:`, so a
            // second colon before the name position means a path.
            if j >= 2 && toks[j - 2].text == ":" {
                continue;
            }
            out.push((toks[j - 1].text.clone(), toks[j - 1].line, t.col));
        }
    }
    out
}

/// A function's name plus the token span of its brace-matched body —
/// shared with the wire-contract (`wire`) and dataflow (`dataflow`)
/// passes, which walk bodies on their own terms.
pub(crate) struct FnSpan {
    pub(crate) name: String,
    pub(crate) line: usize,
    /// Token index of the body `{`.
    pub(crate) body_start: usize,
    /// Token index one past the matching `}`.
    pub(crate) body_end: usize,
}

pub(crate) fn find_functions(toks: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut k = 0;
    while k < toks.len() {
        if toks[k].text != "fn" || !toks.get(k + 1).is_some_and(|n| n.is_ident) {
            k += 1;
            continue;
        }
        let name = toks[k + 1].text.clone();
        let line = toks[k].line;
        // Scan to the body `{` at paren depth 0; a `;` first means a
        // trait method declaration without a body.
        let mut j = k + 2;
        let mut paren = 0usize;
        let mut body_start = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => paren += 1,
                ")" => paren = paren.saturating_sub(1),
                "{" if paren == 0 => {
                    body_start = Some(j);
                    break;
                }
                ";" if paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(start) = body_start else {
            k = j + 1;
            continue;
        };
        let mut depth = 0usize;
        let mut end = toks.len();
        let mut m = start;
        while m < toks.len() {
            match toks[m].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end = m + 1;
                        break;
                    }
                }
                _ => {}
            }
            m += 1;
        }
        out.push(FnSpan {
            name,
            line,
            body_start: start,
            body_end: end,
        });
        // Resume past the body: nested items are analyzed in the
        // context of the enclosing function, not re-walked.
        k = end;
    }
    out
}

#[derive(Debug)]
struct Guard {
    family: Option<String>,
    binding: Option<String>,
    /// Brace depth the guard's scope was opened at.
    depth: usize,
    /// Unbound temporary: dies at the end of its statement.
    temp: bool,
    line: usize,
}

fn walk_fn(
    file: &ScannedFile,
    span: &FnSpan,
    lock_fields: &[LockField],
    atomic_fields: &[AtomicField],
) -> FnFacts {
    let toks = &file.tokens;
    let mut facts = FnFacts {
        name: span.name.clone(),
        line: span.line,
        ..FnFacts::default()
    };
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 1usize;
    let mut i = span.body_start + 1;
    while i < span.body_end.saturating_sub(1) {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                guards.retain(|g| g.depth < depth);
                depth = depth.saturating_sub(1);
            }
            ";" => guards.retain(|g| !(g.temp && g.depth == depth)),
            _ => {}
        }
        // `drop(guard)` ends the guard's life explicitly.
        if t.text == "drop" && toks.get(i + 1).is_some_and(|n| n.text == "(") {
            if let Some(arg) = toks.get(i + 2) {
                if arg.is_ident && toks.get(i + 3).is_some_and(|n| n.text == ")") {
                    guards.retain(|g| g.binding.as_deref() != Some(arg.text.as_str()));
                }
            }
            i += 1;
            continue;
        }

        let is_call = t.is_ident
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
            && !t.text.starts_with(char::is_uppercase);
        if !is_call {
            i += 1;
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].text == ".";
        let is_fn_def = i > 0 && toks[i - 1].text == "fn";

        // Lock acquisition: helper call or `.lock()` method.
        let is_acquire = !is_fn_def
            && ((ACQUIRE_FNS.contains(&t.text.as_str()) && !prev_dot)
                || (t.text == "lock" && prev_dot));
        if is_acquire {
            let receiver_idents = if prev_dot {
                receiver_chain(toks, i - 1)
            } else {
                idents_in_parens(toks, i + 1)
            };
            let family = resolve_family(
                file,
                toks,
                i,
                &receiver_idents,
                lock_fields,
                span.body_start,
            );
            let held: Vec<String> = guards.iter().filter_map(|g| g.family.clone()).collect();
            facts.acquisitions.push(Acquisition {
                family: family.clone(),
                receiver: receiver_idents.join("."),
                line: t.line,
                col: t.col,
                held,
            });
            let (binding, temp) = binding_of(toks, i, span.body_start);
            guards.push(Guard {
                family,
                binding,
                depth,
                temp,
                line: t.line,
            });
            i += 1;
            continue;
        }

        // Blocking call while a guard is live. The condvar idiom
        // `cv.wait(guard)` consumes and re-issues the guard, so a guard
        // passed as an argument to wait/wait_timeout is exempt; a
        // *different* live guard held across the wait is still flagged.
        let is_blocking = !is_fn_def
            && (BLOCKING_CALLS.contains(&t.text.as_str())
                || (t.text == "join"
                    && prev_dot
                    && toks.get(i + 2).is_some_and(|n| n.text == ")")));
        if is_blocking {
            let args = idents_in_parens(toks, i + 1);
            let waits = t.text == "wait" || t.text == "wait_timeout";
            for g in &guards {
                let Some(family) = &g.family else { continue };
                let handed_off = waits && g.binding.as_ref().is_some_and(|b| args.contains(b));
                if !handed_off {
                    facts.blocking.push(BlockedHold {
                        callee: t.text.clone(),
                        family: family.clone(),
                        line: t.line,
                        col: t.col,
                        acquired_line: g.line,
                    });
                }
            }
        }

        // Atomic operation with explicit orderings.
        if prev_dot && ATOMIC_METHODS.contains(&t.text.as_str()) {
            let orderings = orderings_in_parens(toks, i + 1);
            if !orderings.is_empty() {
                let (field, role) = resolve_atomic(file, toks, i, atomic_fields);
                if orderings.iter().any(|o| o != "Relaxed") {
                    facts.has_sync_op = true;
                }
                facts.atomic_ops.push(AtomicOp {
                    field,
                    role,
                    method: t.text.clone(),
                    orderings,
                    line: t.line,
                    col: t.col,
                });
            }
        }
        if t.text == "fence" && !prev_dot {
            let orderings = orderings_in_parens(toks, i + 1);
            if orderings.iter().any(|o| o != "Relaxed") {
                facts.has_sync_op = true;
            }
        }

        // Call-graph input for the interprocedural lock pass.
        if !is_fn_def {
            if !facts.calls.iter().any(|c| c == &t.text) {
                facts.calls.push(t.text.clone());
            }
            let held: Vec<String> = guards.iter().filter_map(|g| g.family.clone()).collect();
            if !held.is_empty() {
                facts.held_calls.push(HeldCall {
                    callee: t.text.clone(),
                    line: t.line,
                    col: t.col,
                    held,
                });
            }
        }
        i += 1;
    }
    facts
}

/// Idents of the dotted receiver chain ending at the `.` at `dot`:
/// `self.state.lock()` → `["state", "self"]` (bracketed index args are
/// skipped, their contents excluded).
fn receiver_chain(toks: &[Token], dot: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut j = dot;
    loop {
        if j == 0 {
            break;
        }
        j -= 1;
        match toks[j].text.as_str() {
            "]" => {
                let mut depth = 1;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match toks[j].text.as_str() {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        _ => {}
                    }
                }
            }
            ")" => {
                let mut depth = 1;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match toks[j].text.as_str() {
                        ")" => depth += 1,
                        "(" => depth -= 1,
                        _ => {}
                    }
                }
            }
            _ if toks[j].is_ident => idents.push(toks[j].text.clone()),
            _ => break,
        }
        if j == 0 || toks[j - 1].text != "." {
            break;
        }
        j -= 1; // consume the `.` and continue down the chain
    }
    idents
}

/// All idents inside the balanced parens opening at `open`.
fn idents_in_parens(toks: &[Token], open: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut depth = 0usize;
    for t in &toks[open..] {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ if t.is_ident => idents.push(t.text.clone()),
            _ => {}
        }
    }
    idents
}

/// `Ordering::<variant>` tokens inside the balanced parens at `open`.
fn orderings_in_parens(toks: &[Token], open: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut k = open;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "Ordering" => {
                if toks.get(k + 1).is_some_and(|c| c.text == ":")
                    && toks.get(k + 2).is_some_and(|c| c.text == ":")
                    && toks
                        .get(k + 3)
                        .is_some_and(|v| ATOMIC_ORDERINGS.contains(&v.text.as_str()))
                {
                    out.push(toks[k + 3].text.clone());
                    k += 3;
                }
            }
            _ => {}
        }
        k += 1;
    }
    out
}

/// Statement token range around `i`, bounded by `;`/`{`/`}` (and `,`
/// when `comma_bounds`, for struct-literal fields).
fn stmt_range(toks: &[Token], i: usize, floor: usize, comma_bounds: bool) -> (usize, usize) {
    let boundary = |text: &str| matches!(text, ";" | "{" | "}") || (comma_bounds && text == ",");
    let mut start = i;
    while start > floor + 1 && !boundary(&toks[start - 1].text) {
        start -= 1;
    }
    let mut end = i;
    while end + 1 < toks.len() && !boundary(&toks[end + 1].text) {
        end += 1;
    }
    (start, end)
}

/// Resolve the lock family of the acquisition at token `i`.
///
/// Order: inline `aimq-lock: use(..)` directive on the line, receiver
/// idents against annotated fields, statement idents against annotated
/// fields, then the receiver's `let`/`for` binding statement. Multiple
/// matches resolve only when they agree on one family.
fn resolve_family(
    file: &ScannedFile,
    toks: &[Token],
    i: usize,
    receiver_idents: &[String],
    lock_fields: &[LockField],
    fn_start: usize,
) -> Option<String> {
    if let Some(name) = use_family_for(file, toks[i].line) {
        return Some(name);
    }
    let family_of = |idents: &[String]| -> Option<String> {
        let mut found: Option<String> = None;
        for f in lock_fields {
            if !idents.iter().any(|r| r == &f.name) {
                continue;
            }
            let fam = f.family.clone()?;
            match &found {
                Some(existing) if *existing != fam => return None,
                _ => found = Some(fam),
            }
        }
        found
    };
    if let Some(fam) = family_of(receiver_idents) {
        return Some(fam);
    }
    let (s, e) = stmt_range(toks, i, fn_start, false);
    let stmt_idents: Vec<String> = toks[s..=e]
        .iter()
        .filter(|t| t.is_ident)
        .map(|t| t.text.clone())
        .collect();
    if let Some(fam) = family_of(&stmt_idents) {
        return Some(fam);
    }
    // Binding scan: `let recv = ...` / `for recv in ...` earlier in the
    // function, using that statement's idents.
    for recv in receiver_idents {
        let mut j = i;
        while j > fn_start {
            j -= 1;
            if toks[j].text != *recv || !toks[j].is_ident {
                continue;
            }
            let bound = j >= 1
                && (toks[j - 1].text == "let"
                    || toks[j - 1].text == "for"
                    || (toks[j - 1].text == "mut" && j >= 2 && toks[j - 2].text == "let"));
            if !bound {
                continue;
            }
            let (bs, be) = stmt_range(toks, j, fn_start, false);
            let idents: Vec<String> = toks[bs..=be]
                .iter()
                .filter(|t| t.is_ident)
                .map(|t| t.text.clone())
                .collect();
            if let Some(fam) = family_of(&idents) {
                return Some(fam);
            }
            break;
        }
    }
    None
}

/// Is the acquisition at token `i` bound by a `let`? Returns the
/// binding name (guard lives to end of block) or marks a temporary
/// (guard dies at the statement's `;`).
fn binding_of(toks: &[Token], i: usize, fn_start: usize) -> (Option<String>, bool) {
    let (s, _) = stmt_range(toks, i, fn_start, false);
    if toks[s].text == "let" {
        let mut k = s + 1;
        if toks.get(k).is_some_and(|t| t.text == "mut") {
            k += 1;
        }
        if let Some(name) = toks.get(k).filter(|t| t.is_ident) {
            return (Some(name.text.clone()), false);
        }
    }
    (None, true)
}

/// Resolve the atomic op at token `i` to a field and role.
fn resolve_atomic(
    file: &ScannedFile,
    toks: &[Token],
    i: usize,
    atomic_fields: &[AtomicField],
) -> (Option<String>, Option<AtomicRole>) {
    // Inline role directive on the op's line wins outright.
    if let Some(role) = role_for(file, toks[i].line) {
        return (None, Some(role));
    }
    let pick = |idents: &[String]| -> Option<(String, Option<AtomicRole>)> {
        let matches: Vec<&AtomicField> = atomic_fields
            .iter()
            .filter(|f| idents.iter().any(|r| r == &f.name))
            .collect();
        let first = matches.first()?;
        // Several fields in scope resolve only when their roles agree.
        if matches.iter().any(|f| f.role != first.role) {
            return None;
        }
        Some((first.name.clone(), first.role))
    };
    let chain = receiver_chain(toks, i - 1);
    if let Some((field, role)) = pick(&chain) {
        return (Some(field), role);
    }
    let (s, e) = stmt_range(toks, i, 0, true);
    let stmt_idents: Vec<String> = toks[s..=e]
        .iter()
        .filter(|t| t.is_ident)
        .map(|t| t.text.clone())
        .collect();
    if let Some((field, role)) = pick(&stmt_idents) {
        return (Some(field), role);
    }
    (None, None)
}

/// Collect `aimq*` crate references outside test code: `use aimq_x` or
/// `aimq_x::...`, one record per (lib, line).
fn find_imports(file: &ScannedFile) -> Vec<Import> {
    let toks = &file.tokens;
    let mut out: Vec<Import> = Vec::new();
    for (idx, t) in toks.iter().enumerate() {
        if !t.is_ident
            || !(t.text == "aimq" || t.text.starts_with("aimq_"))
            || file.in_test_region(t.offset)
        {
            continue;
        }
        let qualifies = (toks.get(idx + 1).is_some_and(|c| c.text == ":")
            && toks.get(idx + 2).is_some_and(|c| c.text == ":"))
            || (idx > 0 && toks[idx - 1].text == "use");
        if !qualifies {
            continue;
        }
        if out.iter().any(|im| im.lib == t.text && im.line == t.line) {
            continue;
        }
        out.push(Import {
            lib: t.text.clone(),
            line: t.line,
            col: t.col,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;

    #[test]
    fn lock_fields_are_found_through_wrappers() {
        let src = "\
struct Cache {\n\
    // aimq-lock: family(cache-stripe) -- guards one stripe\n\
    stripes: Arc<Vec<Mutex<CacheState>>>,\n\
}\n\
use std::sync::{Condvar, Mutex};\n\
fn helper(mutex: &Mutex<u32>) {}\n\
fn make() { let m = Mutex::new(0); }\n";
        let a = analyze(&scan(src));
        assert_eq!(a.lock_fields.len(), 1, "{:#?}", a.lock_fields);
        assert_eq!(a.lock_fields[0].name, "stripes");
        assert_eq!(a.lock_fields[0].family.as_deref(), Some("cache-stripe"));
    }

    #[test]
    fn atomic_array_fields_are_found() {
        let src = "\
struct Cell {\n\
    // aimq-atomic: seqlock -- version word\n\
    version: AtomicU64,\n\
    slots: [AtomicU64; 9],\n\
}\n";
        let a = analyze(&scan(src));
        let names: Vec<&str> = a.atomic_fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["version", "slots"]);
        assert_eq!(a.atomic_fields[0].role, Some(AtomicRole::Seqlock));
        assert_eq!(a.atomic_fields[1].role, None);
    }

    #[test]
    fn guard_dies_at_block_end_before_blocking_call() {
        let src = "\
struct S {\n\
    // aimq-lock: family(meta) -- guards the metadata\n\
    state: Mutex<u32>,\n\
}\n\
impl S {\n\
    fn ok(&self) {\n\
        { let s = lock(&self.state); }\n\
        self.inner.try_query(q);\n\
    }\n\
    fn bad(&self) {\n\
        let s = lock(&self.state);\n\
        self.inner.try_query(q);\n\
    }\n\
}\n";
        let a = analyze(&scan(src));
        let ok = a.functions.iter().find(|f| f.name == "ok").unwrap();
        assert!(ok.blocking.is_empty(), "{:#?}", ok.blocking);
        let bad = a.functions.iter().find(|f| f.name == "bad").unwrap();
        assert_eq!(bad.blocking.len(), 1);
        assert_eq!(bad.blocking[0].family, "meta");
        assert_eq!(bad.blocking[0].callee, "try_query");
    }

    #[test]
    fn drop_and_condvar_wait_release_the_guard() {
        let src = "\
struct Q {\n\
    // aimq-lock: family(queue) -- guards items\n\
    state: Mutex<u32>,\n\
}\n\
impl Q {\n\
    fn pop(&self) {\n\
        let mut state = lock(&self.state);\n\
        state = self.cv.wait(state);\n\
        drop(state);\n\
        self.inner.try_query(q);\n\
    }\n\
}\n";
        let a = analyze(&scan(src));
        let f = &a.functions[0];
        assert!(f.blocking.is_empty(), "{:#?}", f.blocking);
    }

    #[test]
    fn nested_acquisition_records_held_families() {
        let src = "\
struct S {\n\
    // aimq-lock: family(a) -- first\n\
    left: Mutex<u32>,\n\
    // aimq-lock: family(b) -- second\n\
    right: Mutex<u32>,\n\
}\n\
impl S {\n\
    fn both(&self) {\n\
        let l = lock(&self.left);\n\
        let r = lock(&self.right);\n\
    }\n\
}\n";
        let a = analyze(&scan(src));
        let f = &a.functions[0];
        assert_eq!(f.acquisitions.len(), 2);
        assert!(f.acquisitions[0].held.is_empty());
        assert_eq!(f.acquisitions[1].held, vec!["a".to_string()]);
        assert_eq!(f.acquisitions[1].family.as_deref(), Some("b"));
    }

    #[test]
    fn use_directive_resolves_indirect_receivers() {
        let src = "\
struct S {\n\
    // aimq-lock: family(stripe) -- shard lock\n\
    stripes: Vec<Mutex<u32>>,\n\
}\n\
impl S {\n\
    fn via_local(&self) {\n\
        let stripe = self.pick();\n\
        let s = lock_stats(stripe); // aimq-lock: use(stripe)\n\
    }\n\
    fn via_loop(&self) {\n\
        for stripe in self.stripes.iter() {\n\
            let s = lock_stats(stripe);\n\
        }\n\
    }\n\
}\n";
        let a = analyze(&scan(src));
        let direct = &a.functions[0].acquisitions[0];
        assert_eq!(direct.family.as_deref(), Some("stripe"));
        let looped = &a.functions[1].acquisitions[0];
        assert_eq!(looped.family.as_deref(), Some("stripe"), "{looped:#?}");
    }

    #[test]
    fn atomic_ops_resolve_fields_and_orderings() {
        let src = "\
struct C {\n\
    // aimq-atomic: counter -- monotone tally\n\
    hits: AtomicU64,\n\
}\n\
impl C {\n\
    fn bump(&self) {\n\
        self.hits.fetch_add(1, Ordering::Relaxed);\n\
    }\n\
    fn read(&self) -> u64 {\n\
        self.hits.load(Ordering::Acquire)\n\
    }\n\
}\n";
        let a = analyze(&scan(src));
        let bump = &a.functions[0].atomic_ops[0];
        assert_eq!(bump.field.as_deref(), Some("hits"));
        assert_eq!(bump.role, Some(AtomicRole::Counter));
        assert_eq!(bump.orderings, vec!["Relaxed"]);
        assert!(!a.functions[0].has_sync_op);
        assert!(a.functions[1].has_sync_op);
    }

    #[test]
    fn imports_are_collected_outside_tests() {
        let src = "\
use aimq_storage::WebDatabase;\n\
fn f(db: &dyn aimq_storage::WebDatabase) { aimq::answer(db); }\n\
#[cfg(test)]\n\
mod tests { use aimq_serve::QueryServer; }\n";
        let a = analyze(&scan(src));
        let libs: Vec<&str> = a.imports.iter().map(|i| i.lib.as_str()).collect();
        assert_eq!(libs, vec!["aimq_storage", "aimq_storage", "aimq"]);
    }
}
