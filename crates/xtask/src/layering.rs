//! L7 `layering`: enforce the crate DAG from `Cargo.toml` dependency
//! declarations and `use aimq_*` imports.
//!
//! The workspace layers as
//! `catalog → storage → {afd, sim} → rock → core → {serve, cli, eval,
//! bench}` (with `data` a leaf over catalog/storage). Each crate may
//! depend only on crates strictly below it; anything else — an upward
//! dependency in `Cargo.toml`, or a source import the manifest never
//! declared — is an architecture violation, caught here before it
//! ossifies.
//!
//! Manifest findings support a trailing
//! `# aimq-lint: allow(layering) -- <why>` comment on the dependency
//! line; source-import findings use the ordinary `// aimq-lint:`
//! suppression, applied by the caller.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::rules::{Finding, Severity};
use crate::structure::FileAnalysis;

const LAYER_HELP: &str = "the crate DAG is catalog → storage → {afd, sim} → rock → core → \
                          serve → {http, cli, eval, bench}; depend only downward, or justify \
                          with `aimq-lint: allow(layering) -- <why>` on the offending line";

/// Crate directories and the directories each may depend on. Crates
/// absent from this table (e.g. lint fixtures with unknown names) are
/// exempt from the DAG; `xtask` is excluded from linting entirely.
pub const ALLOWED_DEPS: &[(&str, &[&str])] = &[
    ("catalog", &[]),
    ("storage", &["catalog"]),
    ("data", &["catalog", "storage"]),
    ("afd", &["catalog", "storage"]),
    ("sim", &["catalog", "storage", "afd"]),
    ("rock", &["catalog", "storage", "afd", "sim"]),
    ("core", &["catalog", "storage", "afd", "sim", "rock"]),
    (
        "serve",
        &["catalog", "storage", "afd", "sim", "rock", "core"],
    ),
    (
        "http",
        &["catalog", "storage", "afd", "sim", "rock", "core", "serve"],
    ),
    (
        "eval",
        &[
            "catalog", "storage", "data", "afd", "sim", "rock", "core", "serve",
        ],
    ),
    (
        "cli",
        &[
            "catalog", "storage", "data", "afd", "sim", "rock", "core", "serve", "http", "eval",
        ],
    ),
    (
        "bench",
        &[
            "catalog", "storage", "data", "afd", "sim", "rock", "core", "serve", "http", "eval",
        ],
    ),
];

fn allowed_for(dir: &str) -> Option<&'static [&'static str]> {
    ALLOWED_DEPS
        .iter()
        .find(|(name, _)| *name == dir)
        .map(|(_, deps)| *deps)
}

/// Crate directory for a package/lib identifier: the `core` directory
/// ships the `aimq` package (lib ident `aimq`); every other crate is
/// `aimq-<dir>` (lib ident `aimq_<dir>`).
fn dir_of(ident: &str) -> Option<String> {
    if ident == "aimq" {
        return Some("core".to_string());
    }
    ident
        .strip_prefix("aimq-")
        .or_else(|| ident.strip_prefix("aimq_"))
        .map(|rest| rest.replace('-', "_"))
}

/// A finding against a `Cargo.toml` (which has no token stream, so
/// suppression is resolved here rather than by the caller).
#[derive(Debug)]
pub struct ManifestFinding {
    /// Path relative to the lint root.
    pub path: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
    /// The offending manifest line, for span rendering.
    pub snippet: String,
    /// Remedy note.
    pub help: &'static str,
    /// `lint-allow` (malformed directive) vs `layering`.
    pub rule: &'static str,
}

/// Result of scanning every crate manifest under `root/crates/`.
#[derive(Debug, Default)]
pub struct ManifestInfo {
    /// Crate dir → dirs its `[dependencies]` declare (aimq crates only).
    pub declared: BTreeMap<String, BTreeSet<String>>,
    /// Unsuppressed manifest findings.
    pub findings: Vec<ManifestFinding>,
}

/// Parse a trailing `# aimq-lint: allow(layering) -- why` comment.
/// `None`: no directive. `Some(Ok(()))`: valid layering allow.
/// `Some(Err(msg))`: malformed or mismatched directive.
fn toml_allow(line: &str) -> Option<Result<(), String>> {
    let idx = line.find("aimq-lint:")?;
    let rest = line[idx + "aimq-lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Some(Err(
            "malformed `aimq-lint:` directive: expected `allow(<rules>) -- <justification>`"
                .to_string(),
        ));
    };
    let Some(close) = rest.find(')') else {
        return Some(Err("unclosed `allow(` in lint directive".to_string()));
    };
    let rules: Vec<&str> = rest[..close]
        .split(',')
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .collect();
    let tail = rest[close + 1..].trim_start();
    let justified = tail
        .strip_prefix("--")
        .is_some_and(|j| !j.trim().is_empty());
    if !justified {
        return Some(Err(
            "allow directive is missing its `-- <justification>`".to_string()
        ));
    }
    if rules.iter().any(|r| *r == "layering") {
        Some(Ok(()))
    } else {
        Some(Err(format!(
            "allow directive on a dependency line names {:?}, not `layering`",
            rules
        )))
    }
}

/// Scan `crates/<name>/Cargo.toml` for each crate: record declared
/// aimq dependencies and flag declarations the DAG forbids.
pub fn scan_manifests(root: &Path, crate_names: &[String]) -> std::io::Result<ManifestInfo> {
    let mut info = ManifestInfo::default();
    for name in crate_names {
        let manifest = root.join("crates").join(name).join("Cargo.toml");
        let declared = info.declared.entry(name.clone()).or_default();
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            continue; // fixture crates may have no manifest
        };
        let rel = manifest
            .strip_prefix(root)
            .unwrap_or(&manifest)
            .to_path_buf();
        let allowed = allowed_for(name);
        let mut in_deps = false;
        for (lineno, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.starts_with('[') {
                in_deps = trimmed == "[dependencies]";
                continue;
            }
            if !in_deps {
                continue;
            }
            // `aimq-catalog = { workspace = true }` and the dotted form
            // `aimq-catalog.workspace = true` both key on the package.
            let Some(key) = trimmed
                .split('=')
                .next()
                .and_then(|k| k.split('.').next())
                .map(str::trim)
            else {
                continue;
            };
            let Some(dep_dir) = dir_of(key) else {
                continue; // not an aimq crate (std-only workspace anyway)
            };
            declared.insert(dep_dir.clone());
            let Some(allowed) = allowed else { continue };
            if allowed.contains(&dep_dir.as_str()) {
                continue;
            }
            match toml_allow(line) {
                Some(Ok(())) => {}
                Some(Err(msg)) => info.findings.push(ManifestFinding {
                    path: rel.clone(),
                    line: lineno + 1,
                    message: msg,
                    snippet: line.trim_end().to_string(),
                    help: "",
                    rule: "lint-allow",
                }),
                None => info.findings.push(ManifestFinding {
                    path: rel.clone(),
                    line: lineno + 1,
                    message: format!(
                        "crate `{name}` declares a dependency on `{key}`, above it in the \
                         crate DAG"
                    ),
                    snippet: line.trim_end().to_string(),
                    help: LAYER_HELP,
                    rule: "layering",
                }),
            }
        }
    }
    Ok(info)
}

/// Check source imports against the DAG and the declared dependency
/// sets. `files` pairs (file index, owning crate dir, facts); findings
/// come back with the file index so the caller can apply that file's
/// line suppressions.
pub fn check_imports(
    files: &[(usize, &str, &FileAnalysis)],
    declared: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<(usize, Finding)> {
    let mut findings = Vec::new();
    for (idx, crate_dir, analysis) in files {
        let Some(allowed) = allowed_for(crate_dir) else {
            continue;
        };
        for import in &analysis.imports {
            let Some(dep_dir) = dir_of(&import.lib) else {
                continue;
            };
            if dep_dir == *crate_dir {
                continue;
            }
            let is_declared = declared
                .get(*crate_dir)
                .is_some_and(|d| d.contains(&dep_dir));
            if !allowed.contains(&dep_dir.as_str()) {
                findings.push((
                    *idx,
                    Finding {
                        rule: "layering",
                        severity: Severity::Error,
                        line: import.line,
                        col: import.col,
                        message: format!(
                            "crate `{crate_dir}` imports `{}`, above it in the crate DAG",
                            import.lib
                        ),
                        help: LAYER_HELP,
                    },
                ));
            } else if !is_declared {
                findings.push((
                    *idx,
                    Finding {
                        rule: "layering",
                        severity: Severity::Error,
                        line: import.line,
                        col: import.col,
                        message: format!(
                            "crate `{crate_dir}` imports `{}` but its Cargo.toml does not \
                             declare that dependency",
                            import.lib
                        ),
                        help: LAYER_HELP,
                    },
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;
    use crate::structure::analyze;

    #[test]
    fn dir_mapping_handles_the_core_alias() {
        assert_eq!(dir_of("aimq").as_deref(), Some("core"));
        assert_eq!(dir_of("aimq-storage").as_deref(), Some("storage"));
        assert_eq!(dir_of("aimq_storage").as_deref(), Some("storage"));
        assert_eq!(dir_of("serde"), None);
    }

    #[test]
    fn toml_allow_requires_layering_and_justification() {
        assert!(toml_allow("aimq-serve = {} # aimq-lint: allow(layering) -- test-only").is_some());
        assert_eq!(
            toml_allow("aimq-serve = {} # aimq-lint: allow(layering) -- test-only"),
            Some(Ok(()))
        );
        assert!(matches!(
            toml_allow("aimq-serve = {} # aimq-lint: allow(layering)"),
            Some(Err(_))
        ));
        assert!(matches!(
            toml_allow("aimq-serve = {} # aimq-lint: allow(panic) -- nope"),
            Some(Err(_))
        ));
        assert_eq!(toml_allow("aimq-serve = { path = \"../serve\" }"), None);
    }

    #[test]
    fn upward_import_is_flagged_and_downward_is_clean() {
        let up = analyze(&scan("use aimq_serve::QueryServer;\n"));
        let down = analyze(&scan("use aimq_catalog::Attribute;\n"));
        let mut declared = BTreeMap::new();
        declared.insert(
            "storage".to_string(),
            ["catalog".to_string(), "serve".to_string()]
                .into_iter()
                .collect::<BTreeSet<_>>(),
        );
        let files = vec![(0usize, "storage", &up), (1usize, "storage", &down)];
        let findings = check_imports(&files, &declared);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].0, 0);
        assert!(findings[0].1.message.contains("above it in the crate DAG"));
    }

    #[test]
    fn undeclared_lateral_import_is_flagged() {
        let lateral = analyze(&scan("use aimq_catalog::Attribute;\n"));
        let declared = BTreeMap::new(); // nothing declared
        let files = vec![(0usize, "storage", &lateral)];
        let findings = check_imports(&files, &declared);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].1.message.contains("does not declare"));
    }
}
