//! L5 `lock-discipline` and L6 `atomics-audit` checks over the
//! structural facts produced by [`crate::structure::analyze`].
//!
//! Per-file pass ([`check_file`]): unannotated lock/atomic fields,
//! unresolvable acquisitions and atomic ops, same-family re-acquisition,
//! guards held across blocking calls, `Relaxed` misuse per atomic role,
//! and Acquire/Release pairing (per-field for `flag` roles, grouped for
//! `seqlock` protocols where a version word carries the fences for its
//! payload slots).
//!
//! Workspace pass ([`check_workspace`]): a may-acquire fixpoint over
//! the shared [`crate::callgraph`] module computes which lock families
//! each function may transitively acquire; every nested acquisition —
//! direct or through a call made with a guard live — becomes an
//! ordering edge between families, and any edge that closes a cycle
//! (including self-loops through helper calls) is a deadlock-potential
//! finding at the site that closes it.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, CALLEE_BLOCKLIST};
use crate::rules::{Finding, Severity};
use crate::source::AtomicRole;
use crate::structure::{AtomicOp, FileAnalysis};

const LOCK_HELP: &str = "declare a family with `// aimq-lock: family(<name>) -- <why>` on the \
                         field, mark indirect acquisitions with `// aimq-lock: use(<name>)`, or \
                         justify with `// aimq-lint: allow(lock-discipline) -- <why>`";

const ORDER_HELP: &str = "pick one global acquisition order for these families and release the \
                          outer guard first, or justify with \
                          `// aimq-lint: allow(lock-discipline) -- <why this cannot deadlock>`";

const BLOCKING_HELP: &str = "drop (or scope) the guard before the blocking call — clone what you \
                             need out of the critical section — or justify with \
                             `// aimq-lint: allow(lock-discipline) -- <why the wait is bounded>`";

const ROLE_HELP: &str = "annotate the field with `// aimq-atomic: counter|flag|seqlock -- <why>` \
                         (counter: statistics tolerant of reorder; flag: publishes a decision; \
                         seqlock: version-word protocol)";

const RELAXED_HELP: &str = "flags publish decisions across threads: use `Ordering::Release` on \
                            the store and `Ordering::Acquire` on the load, or re-role the field \
                            as `counter` if no other memory depends on it";

/// Does one of the op's orderings synchronize on the acquire side?
fn acquire_side(op: &AtomicOp) -> bool {
    op.orderings
        .iter()
        .any(|o| matches!(o.as_str(), "Acquire" | "AcqRel" | "SeqCst"))
}

/// Does one of the op's orderings synchronize on the release side?
fn release_side(op: &AtomicOp) -> bool {
    op.orderings
        .iter()
        .any(|o| matches!(o.as_str(), "Release" | "AcqRel" | "SeqCst"))
}

fn all_relaxed(op: &AtomicOp) -> bool {
    op.orderings.iter().all(|o| o == "Relaxed")
}

/// Per-file L5 + L6 findings.
pub fn check_file(analysis: &FileAnalysis) -> Vec<Finding> {
    let mut findings = Vec::new();

    // L5: every owned lock must belong to a named family.
    for field in &analysis.lock_fields {
        if field.family.is_none() {
            findings.push(Finding {
                rule: "lock-discipline",
                severity: Severity::Error,
                line: field.line,
                col: field.col,
                message: format!("lock field `{}` has no lock-family annotation", field.name),
                help: LOCK_HELP,
            });
        }
    }
    for f in &analysis.functions {
        for acq in &f.acquisitions {
            match &acq.family {
                None => findings.push(Finding {
                    rule: "lock-discipline",
                    severity: Severity::Error,
                    line: acq.line,
                    col: acq.col,
                    message: format!(
                        "cannot attribute this lock acquisition{} to a declared family",
                        if acq.receiver.is_empty() {
                            String::new()
                        } else {
                            format!(" (receiver `{}`)", acq.receiver)
                        }
                    ),
                    help: LOCK_HELP,
                }),
                Some(fam) if acq.held.iter().any(|h| h == fam) => findings.push(Finding {
                    rule: "lock-discipline",
                    severity: Severity::Error,
                    line: acq.line,
                    col: acq.col,
                    message: format!(
                        "re-acquiring lock family `{fam}` while a `{fam}` guard is already live \
                         in `{}` deadlocks (std Mutex is not reentrant)",
                        f.name
                    ),
                    help: ORDER_HELP,
                }),
                Some(_) => {}
            }
        }
        for b in &f.blocking {
            findings.push(Finding {
                rule: "lock-discipline",
                severity: Severity::Error,
                line: b.line,
                col: b.col,
                message: format!(
                    "`{}` guard (acquired on line {}) is held across blocking call `{}` in `{}`",
                    b.family, b.acquired_line, b.callee, f.name
                ),
                help: BLOCKING_HELP,
            });
        }
    }

    // L6: every atomic field needs a role; orderings must fit the role.
    for field in &analysis.atomic_fields {
        if field.role.is_none() {
            findings.push(Finding {
                rule: "atomics-audit",
                severity: Severity::Error,
                line: field.line,
                col: field.col,
                message: format!("atomic field `{}` has no role annotation", field.name),
                help: ROLE_HELP,
            });
        }
    }
    for f in &analysis.functions {
        for op in &f.atomic_ops {
            match op.role {
                None => findings.push(Finding {
                    rule: "atomics-audit",
                    severity: Severity::Error,
                    line: op.line,
                    col: op.col,
                    message: format!(
                        "cannot attribute `.{}()` to a role-annotated atomic field",
                        op.method
                    ),
                    help: ROLE_HELP,
                }),
                Some(AtomicRole::Counter) => {}
                Some(AtomicRole::Flag) if all_relaxed(op) => findings.push(Finding {
                    rule: "atomics-audit",
                    severity: Severity::Error,
                    line: op.line,
                    col: op.col,
                    message: format!(
                        "`Ordering::Relaxed` on flag-role atomic{}: the flag synchronizes \
                         nothing",
                        op.field
                            .as_deref()
                            .map(|n| format!(" `{n}`"))
                            .unwrap_or_default()
                    ),
                    help: RELAXED_HELP,
                }),
                Some(AtomicRole::Seqlock) if all_relaxed(op) && !f.has_sync_op => {
                    findings.push(Finding {
                        rule: "atomics-audit",
                        severity: Severity::Error,
                        line: op.line,
                        col: op.col,
                        message: format!(
                            "seqlock-role `Relaxed` op in `{}`, which performs no \
                             Acquire/Release op or fence to order it",
                            f.name
                        ),
                        help: "seqlock payload ops may be Relaxed only when the enclosing \
                               function orders them with a version-word Acquire/Release op or \
                               an explicit fence",
                    });
                }
                Some(AtomicRole::Flag) | Some(AtomicRole::Seqlock) => {}
            }
        }
    }

    // L6 pairing. Flags pair per field: a Release store no thread
    // Acquire-loads (or vice versa) synchronizes nothing.
    let ops_of = |name: &str| -> Vec<&AtomicOp> {
        analysis
            .functions
            .iter()
            .flat_map(|f| f.atomic_ops.iter())
            .filter(|op| op.field.as_deref() == Some(name))
            .collect()
    };
    for field in &analysis.atomic_fields {
        if field.role != Some(AtomicRole::Flag) {
            continue;
        }
        let ops = ops_of(&field.name);
        if ops.is_empty() {
            continue;
        }
        let has_acq = ops.iter().any(|op| acquire_side(op));
        let has_rel = ops.iter().any(|op| release_side(op));
        if !(has_acq && has_rel) {
            findings.push(Finding {
                rule: "atomics-audit",
                severity: Severity::Error,
                line: field.line,
                col: field.col,
                message: format!(
                    "flag-role atomic `{}` has {} in this file — Acquire/Release must pair to \
                     publish anything",
                    field.name,
                    if has_rel {
                        "Release stores but no Acquire-side load"
                    } else {
                        "Acquire loads but no Release-side store"
                    }
                ),
                help: RELAXED_HELP,
            });
        }
    }
    // Seqlocks pair as a group: the version word supplies the fences
    // for the payload slots, so the file's seqlock ops jointly need
    // both sides.
    let seq_fields: Vec<&str> = analysis
        .atomic_fields
        .iter()
        .filter(|f| f.role == Some(AtomicRole::Seqlock))
        .map(|f| f.name.as_str())
        .collect();
    if !seq_fields.is_empty() {
        let seq_ops: Vec<&AtomicOp> = analysis
            .functions
            .iter()
            .flat_map(|f| f.atomic_ops.iter())
            .filter(|op| op.role == Some(AtomicRole::Seqlock))
            .collect();
        if !seq_ops.is_empty() {
            let has_acq = seq_ops.iter().any(|op| acquire_side(op));
            let has_rel = seq_ops.iter().any(|op| release_side(op));
            if !(has_acq && has_rel) {
                let first = analysis
                    .atomic_fields
                    .iter()
                    .find(|f| f.role == Some(AtomicRole::Seqlock))
                    .expect("non-empty seq_fields implies a seqlock field");
                findings.push(Finding {
                    rule: "atomics-audit",
                    severity: Severity::Error,
                    line: first.line,
                    col: first.col,
                    message: format!(
                        "seqlock group ({}) lacks {} — writers must Release the version bump \
                         and readers must Acquire it",
                        seq_fields.join(", "),
                        if has_rel {
                            "an Acquire-side read"
                        } else {
                            "a Release-side write"
                        }
                    ),
                    help: "see `storage::web::StatsCell` for the canonical version-word protocol",
                });
            }
        }
    }

    findings
}

/// One lock-ordering edge: family `from` is held while `to` is
/// acquired, at `(file_idx, line, col)`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Edge {
    from: String,
    to: String,
    file_idx: usize,
    line: usize,
    col: usize,
    /// Callee the nested acquisition routes through, when indirect.
    via: Option<String>,
}

/// Workspace-wide L5 pass. `analyses` pairs each file's index with its
/// facts; returned findings carry the index of the file they occur in
/// so the caller can apply that file's suppressions.
pub fn check_workspace(analyses: &[(usize, &FileAnalysis)]) -> Vec<(usize, Finding)> {
    // Seeds: families each (name-merged) function directly acquires;
    // the shared call-graph fixpoint closes them into the families a
    // call may transitively acquire.
    let mut seeds: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (_, analysis) in analyses {
        for f in &analysis.functions {
            seeds
                .entry(f.name.clone())
                .or_default()
                .extend(f.acquisitions.iter().filter_map(|a| a.family.clone()));
        }
    }
    let graph = CallGraph::build(analyses.iter().map(|(_, a)| *a));
    let may = graph.reach_facts(&seeds);

    // Collect ordering edges: direct nested acquisitions and calls that
    // may acquire while a guard is live.
    let mut edges: Vec<Edge> = Vec::new();
    let mut push_edge = |e: Edge| {
        if !edges.contains(&e) {
            edges.push(e);
        }
    };
    for (idx, analysis) in analyses {
        for f in &analysis.functions {
            for acq in &f.acquisitions {
                let Some(to) = &acq.family else { continue };
                for from in &acq.held {
                    // Same-family re-acquisition is a per-file finding;
                    // cross-family nesting is an ordering edge.
                    if from != to {
                        push_edge(Edge {
                            from: from.clone(),
                            to: to.clone(),
                            file_idx: *idx,
                            line: acq.line,
                            col: acq.col,
                            via: None,
                        });
                    }
                }
            }
            for call in &f.held_calls {
                if CALLEE_BLOCKLIST.contains(&call.callee.as_str()) {
                    continue;
                }
                let Some(fams) = may.get(call.callee.as_str()) else {
                    continue;
                };
                for to in fams {
                    for from in &call.held {
                        push_edge(Edge {
                            from: from.clone(),
                            to: to.clone(),
                            file_idx: *idx,
                            line: call.line,
                            col: call.col,
                            via: Some(call.callee.clone()),
                        });
                    }
                }
            }
        }
    }

    // An edge A→B is a deadlock hazard when B already reaches A (a
    // cycle, including A==B through a call). Report the edge that
    // closes the cycle, at its site, so each participant can be fixed
    // or justified where it occurs.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    let reaches = |start: &str, target: &str| -> bool {
        if start == target {
            return true;
        }
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(node) = stack.pop() {
            if !seen.insert(node) {
                continue;
            }
            if let Some(nexts) = adj.get(node) {
                for n in nexts {
                    if *n == target {
                        return true;
                    }
                    stack.push(n);
                }
            }
        }
        false
    };
    let mut findings = Vec::new();
    for e in &edges {
        if !reaches(&e.to, &e.from) {
            continue;
        }
        let via = e
            .via
            .as_deref()
            .map(|c| format!(" (via call to `{c}`)"))
            .unwrap_or_default();
        findings.push((
            e.file_idx,
            Finding {
                rule: "lock-discipline",
                severity: Severity::Error,
                line: e.line,
                col: e.col,
                message: format!(
                    "acquiring lock family `{}`{via} while holding `{}` closes an \
                     acquisition-order cycle (deadlock potential)",
                    e.to, e.from
                ),
                help: ORDER_HELP,
            },
        ));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;
    use crate::structure::analyze;

    fn rules_hit(src: &str) -> Vec<String> {
        check_file(&analyze(&scan(src)))
            .into_iter()
            .map(|f| f.message)
            .collect()
    }

    #[test]
    fn unannotated_lock_and_atomic_fields_are_flagged() {
        let msgs = rules_hit("struct S { state: Mutex<u32>, hits: AtomicU64 }");
        assert_eq!(msgs.len(), 2, "{msgs:#?}");
        assert!(msgs[0].contains("`state` has no lock-family"));
        assert!(msgs[1].contains("`hits` has no role"));
    }

    #[test]
    fn relaxed_flag_op_is_flagged_and_counter_is_not() {
        let src = "\
struct S {\n\
    // aimq-atomic: flag -- publishes shutdown\n\
    done: AtomicBool,\n\
    // aimq-atomic: counter -- statistics\n\
    hits: AtomicU64,\n\
}\n\
impl S {\n\
    fn f(&self) {\n\
        self.done.store(true, Ordering::Relaxed);\n\
        self.hits.fetch_add(1, Ordering::Relaxed);\n\
    }\n\
    fn g(&self) -> bool { self.done.load(Ordering::Acquire) }\n\
}\n";
        let msgs = rules_hit(src);
        // The Relaxed store trips the role rule AND breaks pairing
        // (Acquire load with no Release store).
        assert_eq!(msgs.len(), 2, "{msgs:#?}");
        assert!(msgs[0].contains("flag-role atomic `done`"), "{msgs:#?}");
        assert!(msgs[1].contains("no Release-side store"), "{msgs:#?}");
    }

    #[test]
    fn paired_flag_is_clean() {
        let src = "\
struct S {\n\
    // aimq-atomic: flag -- publishes shutdown\n\
    done: AtomicBool,\n\
}\n\
impl S {\n\
    fn set(&self) { self.done.store(true, Ordering::Release); }\n\
    fn get(&self) -> bool { self.done.load(Ordering::Acquire) }\n\
}\n";
        assert!(rules_hit(src).is_empty(), "{:#?}", rules_hit(src));
    }

    #[test]
    fn seqlock_version_word_licenses_relaxed_slots() {
        let src = "\
struct Cell {\n\
    // aimq-atomic: seqlock -- version word\n\
    version: AtomicU64,\n\
    // aimq-atomic: seqlock -- payload ordered by version\n\
    slot: AtomicU64,\n\
}\n\
impl Cell {\n\
    fn write(&self, d: u64) {\n\
        let v = self.version.load(Ordering::Relaxed);\n\
        self.slot.fetch_add(d, Ordering::Relaxed);\n\
        self.version.store(v + 2, Ordering::Release);\n\
    }\n\
    fn read(&self) -> u64 {\n\
        let v = self.version.load(Ordering::Acquire);\n\
        self.slot.load(Ordering::Relaxed)\n\
    }\n\
}\n";
        assert!(rules_hit(src).is_empty(), "{:#?}", rules_hit(src));
    }

    #[test]
    fn lone_relaxed_seqlock_op_is_flagged() {
        let src = "\
struct Cell {\n\
    // aimq-atomic: seqlock -- version word\n\
    version: AtomicU64,\n\
}\n\
impl Cell {\n\
    fn peek(&self) -> u64 { self.version.load(Ordering::Relaxed) }\n\
    fn bump(&self) { self.version.store(1, Ordering::Release); }\n\
    fn read(&self) -> u64 { self.version.load(Ordering::Acquire) }\n\
}\n";
        let msgs = rules_hit(src);
        assert_eq!(msgs.len(), 1, "{msgs:#?}");
        assert!(msgs[0].contains("no Acquire/Release op or fence"));
    }

    #[test]
    fn same_family_reacquisition_is_flagged() {
        let src = "\
struct S {\n\
    // aimq-lock: family(meta) -- guards metadata\n\
    state: Mutex<u32>,\n\
}\n\
impl S {\n\
    fn f(&self) {\n\
        let a = lock(&self.state);\n\
        let b = lock(&self.state);\n\
    }\n\
}\n";
        let msgs = rules_hit(src);
        assert_eq!(msgs.len(), 1, "{msgs:#?}");
        assert!(msgs[0].contains("re-acquiring lock family `meta`"));
    }

    fn analyses(srcs: &[&str]) -> Vec<FileAnalysis> {
        srcs.iter().map(|s| analyze(&scan(s))).collect()
    }

    #[test]
    fn cross_file_acquisition_order_cycle_is_detected() {
        // File 0 takes a then b; file 1 takes b then a.
        let a_then_b = "\
struct S {\n\
    // aimq-lock: family(a) -- left\n\
    left: Mutex<u32>,\n\
    // aimq-lock: family(b) -- right\n\
    right: Mutex<u32>,\n\
}\n\
impl S {\n\
    fn fwd(&self) { let l = lock(&self.left); let r = lock(&self.right); }\n\
}\n";
        let b_then_a = "\
struct T {\n\
    // aimq-lock: family(b) -- right\n\
    right: Mutex<u32>,\n\
    // aimq-lock: family(a) -- left\n\
    left: Mutex<u32>,\n\
}\n\
impl T {\n\
    fn rev(&self) { let r = lock(&self.right); let l = lock(&self.left); }\n\
}\n";
        let files = analyses(&[a_then_b, b_then_a]);
        let refs: Vec<(usize, &FileAnalysis)> =
            files.iter().enumerate().map(|(i, a)| (i, a)).collect();
        let found = check_workspace(&refs);
        assert_eq!(found.len(), 2, "{found:#?}");
        assert!(found.iter().any(|(i, _)| *i == 0));
        assert!(found.iter().any(|(i, _)| *i == 1));
        assert!(found[0].1.message.contains("acquisition-order cycle"));
    }

    #[test]
    fn consistent_order_is_clean_and_indirect_cycles_are_caught() {
        let consistent = "\
struct S {\n\
    // aimq-lock: family(a) -- left\n\
    left: Mutex<u32>,\n\
    // aimq-lock: family(b) -- right\n\
    right: Mutex<u32>,\n\
}\n\
impl S {\n\
    fn one(&self) { let l = lock(&self.left); let r = lock(&self.right); }\n\
    fn two(&self) { let l = lock(&self.left); let r = lock(&self.right); }\n\
}\n";
        let files = analyses(&[consistent]);
        let refs: Vec<(usize, &FileAnalysis)> =
            files.iter().enumerate().map(|(i, a)| (i, a)).collect();
        assert!(check_workspace(&refs).is_empty());

        // Indirect: `helper` acquires b; `outer` calls it holding a,
        // while `other` acquires a holding b.
        let indirect = "\
struct S {\n\
    // aimq-lock: family(a) -- left\n\
    left: Mutex<u32>,\n\
    // aimq-lock: family(b) -- right\n\
    right: Mutex<u32>,\n\
}\n\
impl S {\n\
    fn helper(&self) { let r = lock(&self.right); }\n\
    fn outer(&self) { let l = lock(&self.left); self.helper(); }\n\
    fn other(&self) { let r = lock(&self.right); let l = lock(&self.left); }\n\
}\n";
        let files = analyses(&[indirect]);
        let refs: Vec<(usize, &FileAnalysis)> =
            files.iter().enumerate().map(|(i, a)| (i, a)).collect();
        let found = check_workspace(&refs);
        assert!(
            found
                .iter()
                .any(|(_, f)| f.message.contains("via call to `helper`")),
            "{found:#?}"
        );
    }

    #[test]
    fn blocking_call_under_guard_is_flagged() {
        let src = "\
struct S {\n\
    // aimq-lock: family(meta) -- guards metadata\n\
    state: Mutex<u32>,\n\
}\n\
impl S {\n\
    fn f(&self) {\n\
        let s = lock(&self.state);\n\
        self.inner.try_query(q);\n\
    }\n\
}\n";
        let msgs = rules_hit(src);
        assert_eq!(msgs.len(), 1, "{msgs:#?}");
        assert!(msgs[0].contains("held across blocking call `try_query`"));
    }
}
