//! Workspace call-graph construction and reachability fixpoints.
//!
//! Both interprocedural rule families — L5 `lock-discipline` (which
//! lock families may a call transitively acquire?) and L8
//! `probe-effect` (which functions may transitively reach the
//! `WebDatabase::try_query` boundary?) — need the same machinery: merge
//! same-name functions across files into one summary (trait impls union
//! their effects — conservative but sound for both analyses), then
//! iterate caller ← callee propagation to a fixpoint. This module holds
//! that shared core so the two rules cannot drift apart.
//!
//! The graph is name-based, not path-based: a hand-rolled lexical scan
//! cannot resolve method receivers, so `inner.try_query(..)` and
//! `ResilientWebDb::try_query` collapse into one node. The
//! [`CALLEE_BLOCKLIST`] keeps std-alike method names from fabricating
//! edges through that aliasing.

use std::collections::{BTreeMap, BTreeSet};

use crate::structure::FileAnalysis;

/// Callee names too generic to resolve through the workspace call
/// graph: std-alike methods (`len`, `clear`, `insert`, ...) that would
/// otherwise alias unrelated workspace functions and fabricate edges
/// (e.g. `pages.len()` under a stripe guard aliasing `CachedWebDb::len`,
/// which acquires the same stripe family).
pub const CALLEE_BLOCKLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "drop",
    "fmt",
    "len",
    "is_empty",
    "clear",
    "next",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
    "iter",
    "iter_mut",
    "contains",
    "contains_key",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "from",
    "into",
    "index",
    "min",
    "max",
    "map",
    "and_then",
    "filter",
    "collect",
    "sum",
    "extend",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
];

/// Merged-by-name call edges: function name → the (blocklist-filtered)
/// callee names appearing in any same-named function body, workspace
/// wide.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// fn name → callees.
    pub calls: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Build the merged graph over every analyzed file.
    pub fn build<'a, I>(analyses: I) -> CallGraph
    where
        I: IntoIterator<Item = &'a FileAnalysis>,
    {
        let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for analysis in analyses {
            for f in &analysis.functions {
                let set = calls.entry(f.name.clone()).or_default();
                set.extend(
                    f.calls
                        .iter()
                        .filter(|c| !CALLEE_BLOCKLIST.contains(&c.as_str()))
                        .cloned(),
                );
            }
        }
        CallGraph { calls }
    }

    /// Least fixpoint of a fact lattice over the graph: starting from
    /// `seeds` (per-function base facts), propagate callee facts into
    /// callers until nothing changes. Returns the closed fact map —
    /// the facts a call to each function may transitively exercise.
    ///
    /// L5 instantiates facts as lock-family names (may-acquire); any
    /// set-valued effect works.
    pub fn reach_facts(
        &self,
        seeds: &BTreeMap<String, BTreeSet<String>>,
    ) -> BTreeMap<String, BTreeSet<String>> {
        let mut facts: BTreeMap<String, BTreeSet<String>> = self
            .calls
            .keys()
            .map(|name| (name.clone(), seeds.get(name).cloned().unwrap_or_default()))
            .collect();
        loop {
            let mut changed = false;
            let additions: Vec<(String, BTreeSet<String>)> = self
                .calls
                .iter()
                .map(|(name, callees)| {
                    let mut add = BTreeSet::new();
                    for callee in callees {
                        if let Some(fs) = facts.get(callee.as_str()) {
                            add.extend(fs.iter().cloned());
                        }
                    }
                    (name.clone(), add)
                })
                .collect();
            for (name, add) in additions {
                if let Some(set) = facts.get_mut(&name) {
                    for fact in add {
                        changed |= set.insert(fact);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        facts
    }

    /// Boolean reachability: every function that can transitively call
    /// one of `targets` (direct call included). Target names that are
    /// themselves defined functions are *not* implicitly members — only
    /// functions whose call chains reach a target are returned.
    pub fn reaches_callee(&self, targets: &BTreeSet<&str>) -> BTreeSet<String> {
        let mut reaching: BTreeSet<String> = BTreeSet::new();
        loop {
            let mut changed = false;
            for (name, callees) in &self.calls {
                if reaching.contains(name) {
                    continue;
                }
                let hits = callees
                    .iter()
                    .any(|c| targets.contains(c.as_str()) || reaching.contains(c));
                if hits {
                    reaching.insert(name.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        reaching
    }

    /// A shortest witness chain `from → ... → <target>` through the
    /// graph, for diagnostics. Deterministic (BTree order BFS); `None`
    /// when `from` does not reach any target.
    pub fn witness(&self, from: &str, targets: &BTreeSet<&str>) -> Option<Vec<String>> {
        if targets.contains(from) {
            return Some(vec![from.to_string()]);
        }
        let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<&str> = std::collections::VecDeque::new();
        queue.push_back(from);
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        seen.insert(from);
        while let Some(node) = queue.pop_front() {
            let Some(callees) = self.calls.get(node) else {
                continue;
            };
            for callee in callees {
                if targets.contains(callee.as_str()) {
                    // Reconstruct from → ... → node, then the target.
                    let mut chain = vec![callee.clone(), node.to_string()];
                    let mut cur = node;
                    while let Some(p) = prev.get(cur) {
                        chain.push((*p).to_string());
                        cur = p;
                    }
                    chain.reverse();
                    return Some(chain);
                }
                if seen.insert(callee.as_str()) {
                    prev.insert(callee.as_str(), node);
                    queue.push_back(callee.as_str());
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;
    use crate::structure::analyze;

    fn graph(srcs: &[&str]) -> CallGraph {
        let analyses: Vec<_> = srcs.iter().map(|s| analyze(&scan(s))).collect();
        CallGraph::build(analyses.iter())
    }

    #[test]
    fn same_name_functions_merge_across_files() {
        let g = graph(&[
            "fn work(&self) { self.helper(); }",
            "fn work(&self) { other(); }",
        ]);
        let callees = g.calls.get("work").unwrap();
        assert!(callees.contains("helper") && callees.contains("other"));
    }

    #[test]
    fn blocklisted_callees_are_dropped() {
        let g = graph(&["fn f(xs: &[u8]) { xs.len(); real_helper(); }"]);
        let callees = g.calls.get("f").unwrap();
        assert!(!callees.contains("len"));
        assert!(callees.contains("real_helper"));
    }

    #[test]
    fn reach_facts_closes_over_chains() {
        let g = graph(&["fn leaf() { acquire_a(); }\nfn mid() { leaf(); }\nfn top() { mid(); }"]);
        let mut seeds: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        seeds.insert("leaf".into(), ["a".to_string()].into_iter().collect());
        let facts = g.reach_facts(&seeds);
        assert!(facts.get("top").unwrap().contains("a"));
        assert!(facts.get("mid").unwrap().contains("a"));
    }

    #[test]
    fn reaches_callee_is_transitive_and_witnessed() {
        let g = graph(&[
            "fn probe(db: &D) { db.try_query(q); }\nfn refresh(db: &D) { probe(db); }\nfn local(x: u64) -> u64 { bump(x) }",
        ]);
        let targets: BTreeSet<&str> = ["try_query"].into_iter().collect();
        let reaching = g.reaches_callee(&targets);
        assert!(reaching.contains("probe"));
        assert!(reaching.contains("refresh"));
        assert!(!reaching.contains("local"));
        let chain = g.witness("refresh", &targets).unwrap();
        assert_eq!(chain, vec!["refresh", "probe", "try_query"]);
    }
}
