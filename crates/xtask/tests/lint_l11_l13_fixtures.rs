//! End-to-end runs of the wire-contract rules (L11–L13) over
//! workspace-shaped fixture trees under `tests/fixtures/lint/`. Each
//! violation fixture has two passing twins: an `_allow` tree in which
//! every finding is suppressed through the sanctioned escape hatch
//! (`aimq-wire: optional`, `aimq-fault: sink`, `aimq-lint: allow`),
//! and a `_fixed` tree in which the code is restructured so no
//! finding exists at all.

use std::path::{Path, PathBuf};

use xtask::{lint_root, LintReport, Severity};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/lint")
        .join(name)
}

fn lint(name: &str) -> LintReport {
    lint_root(&fixture(name)).unwrap_or_else(|e| panic!("linting fixture `{name}`: {e}"))
}

fn errors(report: &LintReport) -> Vec<(&str, &str)> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| (d.rule.as_str(), d.message.as_str()))
        .collect()
}

fn assert_clean(name: &str) {
    let report = lint(name);
    assert_eq!(
        report.errors(),
        0,
        "passing twin `{name}` must be clean: {:#?}",
        report.diagnostics
    );
}

#[test]
fn l11_duplicate_conditional_stale_and_missing_pin_are_detected() {
    let report = lint("l11_drift");
    let errs = errors(&report);
    assert_eq!(errs.len(), 4, "{:#?}", report.diagnostics);
    assert!(errs.iter().all(|(rule, _)| *rule == "wire-drift"));
    assert!(errs
        .iter()
        .any(|(_, msg)| msg.contains("duplicate key `hits`") && msg.contains("`Snapshot`")));
    assert!(errs.iter().any(
        |(_, msg)| msg.contains("key `detail`") && msg.contains("under a conditional")
    ));
    assert!(errs
        .iter()
        .any(|(_, msg)| msg.contains("stale `aimq-wire: optional` annotation")));
    // The pin diagnostic lands on the artifact path itself.
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("results/WIRE_SCHEMA.json is missing")
            && d.path.to_string_lossy().contains("WIRE_SCHEMA")));
}

#[test]
fn l11_drift_suppressed_twin_is_clean() {
    assert_clean("l11_drift_allow");
}

#[test]
fn l11_drift_fixed_twin_is_clean() {
    assert_clean("l11_drift_fixed");
}

#[test]
fn l12_missing_variant_code_drift_and_stale_row_are_detected() {
    let report = lint("l12_surface");
    let errs = errors(&report);
    assert_eq!(errs.len(), 4, "{:#?}", report.diagnostics);
    assert!(errs.iter().all(|(rule, _)| *rule == "error-surface"));
    assert!(errs.iter().any(|(_, msg)| {
        msg.contains("`ServeError::BadRequest` is never named at the HTTP mapping boundary")
    }));
    assert!(errs.iter().any(|(_, msg)| {
        msg.contains("`overloaded` is documented as status 429") && msg.contains("sends 500")
    }));
    assert!(errs
        .iter()
        .any(|(_, msg)| msg.contains("`mystery` is not in the DESIGN.md status-code table")));
    // The stale table row is reported against DESIGN.md itself.
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("stale status-code table row")
            && d.message.contains("`bad_request`")
            && d.path.to_string_lossy().ends_with("DESIGN.md")));
}

#[test]
fn l12_surface_suppressed_twin_is_clean() {
    assert_clean("l12_surface_allow");
}

#[test]
fn l12_surface_fixed_twin_is_clean() {
    assert_clean("l12_surface_fixed");
}

#[test]
fn l13_dropped_fault_and_stale_sink_annotation_are_detected() {
    let report = lint("l13_flow");
    let errs = errors(&report);
    assert_eq!(errs.len(), 2, "{:#?}", report.diagnostics);
    assert!(errs.iter().all(|(rule, _)| *rule == "degradation-flow"));
    assert!(errs.iter().any(|(_, msg)| {
        msg.contains("`QueryError::Timeout` is constructed here but never reaches a sink")
    }));
    assert!(errs
        .iter()
        .any(|(_, msg)| msg.contains("stale `aimq-fault: sink` annotation")));
}

#[test]
fn l13_flow_suppressed_twin_is_clean() {
    assert_clean("l13_flow_allow");
}

#[test]
fn l13_flow_fixed_twin_is_clean() {
    assert_clean("l13_flow_fixed");
}

#[test]
fn explain_covers_the_wire_contract_rules() {
    for rule in ["wire-drift", "error-surface", "degradation-flow"] {
        let info =
            xtask::rule_info(rule).unwrap_or_else(|| panic!("`--explain {rule}` must resolve"));
        assert_eq!(info.id, rule);
        assert!(!info.summary.is_empty() && !info.rationale.is_empty() && !info.remedy.is_empty());
    }
}
