//! Suppressed twin of `l12_surface`, fault-enum side: unchanged —
//! the suppressions all live at the boundary.

pub enum ServeError {
    Overloaded,
    ShuttingDown,
    BadRequest,
}
