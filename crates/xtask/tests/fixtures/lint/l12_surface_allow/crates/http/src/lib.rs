//! Suppressed twin of `l12_surface`: every boundary finding is
//! individually excused, and the DESIGN.md table carries no stale
//! rows (findings on DESIGN.md itself cannot be suppressed).

// aimq-lint: allow(error-surface) -- fixture: `BadRequest` is mapped by a macro this pass cannot see
pub fn respond(err: ServeError) -> Response {
    match err {
        ServeError::Overloaded => Response::error(500, "overloaded", "throttled"), // aimq-lint: allow(error-surface) -- fixture: 500 until the throttle ships
        ServeError::ShuttingDown => Response::error(503, "shutting_down", "draining"),
    }
}

pub fn reject() -> Response {
    Response::error(404, "mystery", "no such thing") // aimq-lint: allow(error-surface) -- fixture: experimental code, undocumented on purpose
}
